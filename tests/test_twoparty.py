"""Two-party model: wire codec, channel, provider, owner, full sessions."""

from __future__ import annotations

import pytest

from repro.baselines import make_records
from repro.errors import ConfigurationError, PageDeletedError, ProtocolError
from repro.sim.clock import VirtualClock
from repro.twoparty import (
    ServiceProvider,
    SimulatedChannel,
    TwoPartySession,
)
from repro.twoparty import messages as wire

FRAME = 32


class TestMessageCodec:
    def _roundtrip(self, message):
        return wire.decode(wire.encode(message, FRAME), FRAME)

    def test_upload(self):
        message = wire.Upload(7, (bytes(FRAME), b"\x01" * FRAME))
        assert self._roundtrip(message) == message

    def test_upload_ack(self):
        assert self._roundtrip(wire.UploadAck()) == wire.UploadAck()

    def test_read_request(self):
        message = wire.ReadRequest(16, 8, 99)
        assert self._roundtrip(message) == message

    def test_read_response(self):
        message = wire.ReadResponse((bytes(FRAME),) * 3, b"\x02" * FRAME)
        assert self._roundtrip(message) == message

    def test_write_request(self):
        message = wire.WriteRequest(8, (bytes(FRAME),) * 2, 40, b"\x03" * FRAME)
        assert self._roundtrip(message) == message

    def test_write_ack_and_error(self):
        assert self._roundtrip(wire.WriteAck()) == wire.WriteAck()
        assert self._roundtrip(wire.ErrorReply("boom")) == wire.ErrorReply("boom")

    def test_wrong_frame_size_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            wire.encode(wire.Upload(0, (bytes(FRAME - 1),)), FRAME)

    def test_empty_message(self):
        with pytest.raises(ProtocolError):
            wire.decode(b"", FRAME)

    def test_unknown_opcode(self):
        with pytest.raises(ProtocolError):
            wire.decode(b"\xee", FRAME)

    def test_truncated_frames(self):
        encoded = wire.encode(wire.Upload(0, (bytes(FRAME),) * 2), FRAME)
        with pytest.raises(ProtocolError):
            wire.decode(encoded[:-1], FRAME)

    def test_trailing_garbage(self):
        encoded = wire.encode(wire.WriteAck(), FRAME)
        with pytest.raises(ProtocolError):
            wire.decode(encoded + b"\x00", FRAME)

    def test_bad_read_request_length(self):
        with pytest.raises(ProtocolError):
            wire.decode(b"\x03" + bytes(10), FRAME)


class TestChannel:
    def test_charges_rtt_and_bytes(self):
        clock = VirtualClock()
        channel = SimulatedChannel(clock, lambda req: b"R" * 100,
                                   rtt=0.05, bandwidth=1000)
        channel.call(b"Q" * 100)
        # 0.05 RTT + 200 bytes / 1000 B/s = 0.25 s.
        assert clock.now == pytest.approx(0.25)

    def test_counters(self):
        channel = SimulatedChannel(VirtualClock(), lambda req: b"xy")
        channel.call(b"abc")
        channel.call(b"d")
        assert channel.counters.get("round_trips") == 2
        assert channel.total_bytes == (3 + 1) + (2 + 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulatedChannel(VirtualClock(), lambda r: r, rtt=-1)
        with pytest.raises(ConfigurationError):
            SimulatedChannel(VirtualClock(), lambda r: r, bandwidth=0)


class TestProvider:
    def _provider(self):
        return ServiceProvider(num_locations=16, frame_size=FRAME,
                               clock=VirtualClock())

    def test_upload_then_read(self):
        provider = self._provider()
        frames = tuple(bytes([i]) * FRAME for i in range(16))
        provider.serve(wire.encode(wire.Upload(0, frames), FRAME))
        response = provider.serve(
            wire.encode(wire.ReadRequest(0, 4, 10), FRAME)
        )
        reply = wire.decode(response, FRAME)
        assert isinstance(reply, wire.ReadResponse)
        assert reply.frames == frames[0:4]
        assert reply.extra_frame == frames[10]

    def test_write_request(self):
        provider = self._provider()
        provider.serve(wire.encode(wire.Upload(0, tuple(bytes(FRAME) for _ in range(16))), FRAME))
        new_frames = tuple(b"\x07" * FRAME for _ in range(4))
        response = provider.serve(
            wire.encode(wire.WriteRequest(4, new_frames, 12, b"\x08" * FRAME), FRAME)
        )
        assert isinstance(wire.decode(response, FRAME), wire.WriteAck)
        assert provider.disk.peek(5) == b"\x07" * FRAME
        assert provider.disk.peek(12) == b"\x08" * FRAME

    def test_malformed_request_yields_error_reply(self):
        provider = self._provider()
        reply = wire.decode(provider.serve(b"\xee\x00"), FRAME)
        assert isinstance(reply, wire.ErrorReply)

    def test_out_of_bounds_yields_error_reply(self):
        provider = self._provider()
        reply = wire.decode(
            provider.serve(wire.encode(wire.ReadRequest(0, 99, 0), FRAME)), FRAME
        )
        assert isinstance(reply, wire.ErrorReply)
        assert "StorageError" in reply.message

    def test_unhandled_message_type(self):
        provider = self._provider()
        reply = wire.decode(
            provider.serve(wire.encode(wire.WriteAck(), FRAME)), FRAME
        )
        assert isinstance(reply, wire.ErrorReply)


class TestSession:
    @pytest.fixture(scope="class")
    def session(self):
        return TwoPartySession.create(
            make_records(60, 16),
            cache_capacity=8,
            target_c=2.0,
            page_capacity=16,
            reserve_fraction=0.2,
            seed=99,
        )

    def test_queries_correct(self, session):
        records = make_records(60, 16)
        for page_id in (0, 13, 59):
            assert session.query(page_id) == records[page_id]

    def test_two_round_trips_per_query(self, session):
        before = session.channel.counters.get("round_trips")
        session.query(5)
        assert session.channel.counters.get("round_trips") == before + 2

    def test_latency_includes_rtt(self, session):
        series = session.measure_queries([1, 2, 3])
        # Two round trips of 50 ms RTT each = at least 100 ms.
        assert series.minimum() >= 0.1

    def test_latency_constant(self, session):
        series = session.measure_queries([4, 4, 5, 6, 4])
        assert series.coefficient_of_variation() < 1e-9

    def test_updates_and_inserts(self, session):
        session.update(7, b"owner-edit")
        assert session.query(7) == b"owner-edit"
        new_id = session.insert(b"outsourced")
        assert session.query(new_id) == b"outsourced"

    def test_delete(self, session):
        session.delete(11)
        with pytest.raises(PageDeletedError):
            session.query(11)

    def test_provider_sees_uniform_access_counts(self, session):
        """Every provider-visible request is one block read + one extra read
        + the matching writes — sizes never vary with the operation."""
        k = session.owner.params.block_size
        read_counts = {
            e.count for e in session.provider_trace if e.op == "read"
        }
        assert read_counts == {k, 1}

    def test_owner_storage_accounting(self, session):
        assert session.owner.owner_storage_bytes() > 0

    def test_empty_records_rejected(self):
        with pytest.raises(ConfigurationError):
            TwoPartySession.create([], cache_capacity=4)
