"""Shared helpers for the test suite (importable, unlike conftest)."""

from __future__ import annotations

from repro import PirDatabase
from repro.baselines import make_records


def make_db(
    num_records: int = 40,
    cache_capacity: int = 8,
    target_c: float = 2.0,
    page_capacity: int = 16,
    seed: int = 1,
    **options,
) -> PirDatabase:
    """Build a small database over deterministic records."""
    return PirDatabase.create(
        make_records(num_records, min(16, page_capacity)),
        cache_capacity=cache_capacity,
        target_c=target_c,
        page_capacity=page_capacity,
        seed=seed,
        **options,
    )
