"""Owner suspend/resume in the two-party model."""

from __future__ import annotations

import pytest

from repro.baselines import make_records
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    PageDeletedError,
    ProtocolError,
)
from repro.twoparty import DataOwner, SimulatedChannel, TwoPartySession

RECORDS = make_records(40, 16)


def _session(seed=70):
    return TwoPartySession.create(
        RECORDS, cache_capacity=6, block_size=5, page_capacity=16,
        reserve_fraction=0.2, seed=seed,
    )


def _reconnect_factory(session):
    """A channel factory that reattaches to the session's live provider."""

    def factory(clock, frame_size, num_locations):
        return SimulatedChannel(clock, session.provider.serve,
                                rtt=0.05, bandwidth=2.33e6)

    return factory


class TestResume:
    def test_resume_preserves_all_state(self):
        session = _session()
        session.update(4, b"before-seal")
        session.delete(9)
        for i in range(25):
            if i != 9:
                session.query(i)
        sealed = session.owner.seal_state()
        pointer_at_seal = session.owner.engine.next_block_index
        resumed = DataOwner.resume(sealed, _reconnect_factory(session), seed=1)
        assert resumed.engine.next_block_index == pointer_at_seal
        assert resumed.query(4) == b"before-seal"
        with pytest.raises(PageDeletedError):
            resumed.query(9)
        for i in range(40):
            if i not in (9,):
                expected = b"before-seal" if i == 4 else RECORDS[i]
                assert resumed.query(i) == expected

    def test_resumed_owner_keeps_operating(self):
        session = _session(seed=71)
        session.query(0)
        sealed = session.owner.seal_state()
        resumed = DataOwner.resume(sealed, _reconnect_factory(session), seed=2)
        resumed.update(1, b"post-resume")
        assert resumed.query(1) == b"post-resume"
        new_id = resumed.insert(b"added-after")
        assert resumed.query(new_id) == b"added-after"

    def test_wrong_key_rejected(self):
        session = _session(seed=72)
        sealed = session.owner.seal_state()
        with pytest.raises(AuthenticationError):
            DataOwner.resume(sealed, _reconnect_factory(session),
                             master_key=b"not-the-key", seed=3)

    def test_truncated_state_rejected(self):
        session = _session(seed=73)
        sealed = session.owner.seal_state()
        with pytest.raises((ProtocolError, Exception)):
            DataOwner.resume(sealed[:3], _reconnect_factory(session), seed=4)

    def test_seal_during_rotation_refused(self):
        session = _session(seed=74)
        session.owner.engine.begin_key_rotation(b"new-key")
        with pytest.raises(ConfigurationError, match="rotation"):
            session.owner.seal_state()
