"""Engine edge cases and semantic corners worth pinning explicitly."""

from __future__ import annotations

import pytest

from repro.baselines import make_records
from repro.errors import ConfigurationError, PageDeletedError, PageNotFoundError
from repro.storage.trace import shapes_identical

from tests.helpers import make_db


class TestUpdateSemantics:
    def test_update_revives_a_deleted_page(self):
        """§4.3 'the original page is replaced with the new version' —
        modification is an upsert: writing to a deleted id brings it back."""
        db = make_db(seed=950)
        db.delete(5)
        assert db.cop.page_map.is_deleted(5)
        db.update(5, b"revived")
        assert not db.cop.page_map.is_deleted(5)
        assert db.query(5) == b"revived"

    def test_update_of_reserve_page_is_an_insert_by_id(self):
        """Reserve ids are addressable: updating one takes it out of the
        free pool (equivalent to an insert that chose its own id)."""
        db = make_db(num_records=40, reserve_fraction=0.2, seed=951)
        reserve_id = db.params.num_user_pages  # first padding page
        free_before = db.cop.page_map.free_count
        db.update(reserve_id, b"claimed")
        assert db.query(reserve_id) == b"claimed"
        assert db.cop.page_map.free_count == free_before - 1

    def test_oversized_payload_rejected_before_any_disk_access(self):
        db = make_db(page_capacity=16, seed=952)
        accesses = len(db.trace)
        with pytest.raises(ConfigurationError):
            db.update(0, b"x" * 17)
        with pytest.raises(ConfigurationError):
            db.insert(b"y" * 17)
        assert len(db.trace) == accesses  # fail-fast, no trace side effects

    def test_exactly_full_payload_accepted(self):
        db = make_db(page_capacity=16, seed=953)
        db.update(0, b"z" * 16)
        assert db.query(0) == b"z" * 16


class TestDummyAndReserveQueries:
    def test_query_of_reserve_id_runs_then_raises(self):
        db = make_db(num_records=40, reserve_fraction=0.2, seed=954)
        reserve_id = db.params.num_user_pages
        before = db.engine.request_count
        with pytest.raises(PageDeletedError):
            db.query(reserve_id)
        assert db.engine.request_count == before + 1

    def test_query_of_cache_resident_dummy(self):
        """Ids [N, N+m) start inside the cache; querying one is a cache hit
        on a deleted page — full request, then the deleted error."""
        db = make_db(num_records=40, reserve_fraction=0.2, seed=955)
        cache_id = db.params.num_locations  # first cache-resident dummy
        with pytest.raises(PageDeletedError):
            db.query(cache_id)
        assert shapes_identical(db.trace, 0)

    def test_query_beyond_total_pages(self):
        db = make_db(seed=956)
        with pytest.raises(PageNotFoundError):
            db.query(db.params.total_pages)


class TestSoak:
    def test_long_mixed_soak_run(self):
        """A few thousand requests over a mid-size database: the invariants
        and data stay intact and the trace never changes shape."""
        from repro.crypto.rng import SecureRandom
        from repro.workload import preset_stream, replay_trace

        db = make_db(num_records=256, cache_capacity=16, page_capacity=16,
                     reserve_fraction=0.2, cipher_backend="null",
                     seed=957)
        rng = SecureRandom(958)
        stream = preset_stream("B", 256, 2500, rng)
        replay_trace(db, stream)
        assert db.engine.request_count == 2500
        db.consistency_check()
        assert shapes_identical(db.trace, 0)
        # Everything that was never written is still its original payload.
        records = make_records(256, 16)
        written = {
            op.page_id for op in stream if op.kind == "update"
        }
        for page_id in range(0, 256, 17):
            if page_id not in written:
                assert db.query(page_id) == records[page_id]
