"""Tracer span nesting, timing, fault behaviour and the no-op fast path."""

from __future__ import annotations

import time

import pytest

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.core.journal import MemoryJournal
from repro.errors import ConfigurationError, TransientStorageError
from repro.faults.injector import FaultInjector, transient_writes
from repro.faults.wrappers import FaultyDiskStore
from repro.obs.tracer import (
    DETAIL_FINE,
    NULL_TRACER,
    Tracer,
    _NOOP,
)
from repro.sim.clock import VirtualClock
from repro.storage.disk import DiskStore


def make_db(tracer, seed=11, **kwargs):
    kwargs.setdefault("journal", MemoryJournal())
    return PirDatabase.create(
        make_records(48, 16), cache_capacity=4, block_size=4,
        page_capacity=16, seed=seed, tracer=tracer, **kwargs
    )


class TestSpanBasics:
    def test_nesting_depth_and_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                with tracer.span("leaf") as leaf:
                    pass
        assert outer.depth == 0 and outer.parent_index is None
        assert inner.depth == 1 and inner.parent_index == outer.index
        assert leaf.depth == 2 and leaf.parent_index == inner.index
        assert tracer.active_depth == 0
        assert [s.name for s in tracer.spans] == ["leaf", "inner", "outer"]

    def test_wall_and_virtual_timing(self):
        clock = VirtualClock()
        tracer = Tracer()
        tracer.bind_clock(clock)
        with tracer.span("charged") as span:
            clock.advance(1.5)
        assert span.virtual_seconds == pytest.approx(1.5)
        assert span.wall_seconds >= 0.0
        assert tracer.total("charged").virtual_seconds == pytest.approx(1.5)

    def test_bind_clock_accepts_callable(self):
        ticks = iter([10.0, 17.0])
        tracer = Tracer()
        tracer.bind_clock(lambda: next(ticks))
        with tracer.span("x") as span:
            pass
        assert span.virtual_seconds == pytest.approx(7.0)

    def test_error_recorded_and_stack_unwound(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.active_depth == 0
        assert tracer.total("inner").errors == 1
        assert tracer.total("outer").errors == 1

    def test_unwound_children_are_closed(self):
        # A child left open (no context-manager close, e.g. an exception
        # path that skips __exit__) is closed by its parent's close.
        tracer = Tracer()
        outer = tracer.span("outer")
        outer.__enter__()
        orphan = tracer.span("orphan")
        orphan.__enter__()
        outer.__exit__(None, None, None)
        assert tracer.active_depth == 0
        assert tracer.total("orphan").errors == 1
        assert orphan.error == "UnwoundParent"

    def test_totals_aggregate_counts_bytes(self):
        tracer = Tracer()
        for size in (10, 20, 30):
            with tracer.span("io", nbytes=size):
                pass
        total = tracer.total("io")
        assert total.count == 3
        assert total.nbytes == 60
        assert total.errors == 0

    def test_max_spans_bounds_memory_not_totals(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("x"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped_spans == 3
        assert tracer.total("x").count == 5

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.spans == []
        assert tracer.phase_totals() == {}

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            Tracer(detail="bogus")
        with pytest.raises(ConfigurationError):
            Tracer(max_spans=-1)

    def test_slowdown_busy_waits(self):
        tracer = Tracer()
        tracer.slowdown["slow"] = 3.0
        with tracer.span("slow") as span:
            time.sleep(0.005)
        assert span.wall_seconds >= 0.014  # ~3x the slept 5ms

    def test_disabled_returns_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is _NOOP
        assert tracer.fine_span("anything") is _NOOP
        with tracer.span("anything"):
            pass
        assert tracer.spans == []
        assert tracer.phase_totals() == {}

    def test_fine_spans_filtered_at_phase_detail(self):
        phase = Tracer()
        assert phase.fine_span("crypto.mac_verify") is _NOOP
        assert not phase.fine
        fine = Tracer(detail=DETAIL_FINE)
        assert fine.fine
        with fine.fine_span("crypto.mac_verify"):
            pass
        assert fine.total("crypto.mac_verify").count == 1


class TestEngineIntegration:
    def test_query_produces_phase_taxonomy(self):
        tracer = Tracer()
        db = make_db(tracer)
        db.query(0)
        names = set(tracer.phase_totals())
        assert {"request", "pagemap.lookup", "disk.read", "decrypt",
                "cache.op", "reencrypt", "journal.seal", "write_back",
                "disk.write", "link.ingest", "link.egress"} <= names
        request = tracer.total("request")
        assert request.count == 1 and request.errors == 0
        assert tracer.active_depth == 0

    def test_fine_detail_emits_crypto_spans(self):
        tracer = Tracer(detail=DETAIL_FINE)
        db = make_db(tracer)
        db.query(1)
        k = db.params.block_size
        # Block fetch and write-back each enter the suite once with the
        # whole k+1-frame batch (instead of 2(k+1) per-frame calls).
        decrypt = tracer.total("crypto.decrypt_batch")
        assert decrypt.count == 1
        assert decrypt.nbytes == (k + 1) * db.cop.frame_size
        encrypt = tracer.total("crypto.encrypt_batch")
        assert encrypt.count == 1
        assert encrypt.nbytes == (k + 1) * db.cop.plaintext_page_size
        # The journal intent record still seals through the per-frame path.
        assert tracer.total("crypto.encrypt").count == 1

    def test_spans_close_when_write_back_faults(self):
        injector = FaultInjector(seed=5)

        def factory(num_locations, frame_size, timing, clock, trace):
            inner = DiskStore(num_locations, frame_size, timing, clock, trace)
            return FaultyDiskStore(inner, injector)

        tracer = Tracer()
        db = make_db(tracer, disk_factory=factory)
        # Arm after setup so the database population writes pass through.
        injector.add(transient_writes(times=1))
        with pytest.raises(TransientStorageError):
            db.query(0)
        # The fault propagated through write_back and request; every span
        # must still have closed, with the error recorded on the way out.
        assert tracer.active_depth == 0
        assert tracer.total("write_back").errors == 1
        assert tracer.total("request").errors == 1
        # The engine heals the pending write-back on the next request and
        # the tracer keeps balancing.
        db.query(0)
        assert tracer.active_depth == 0
        assert tracer.total("write_back").count >= 2
        assert db.engine.counters.get("recovery.rolled_forward") == 1

    def test_disk_spans_fire_through_faulty_wrapper(self):
        # A wrapper exposing ``.inner`` must not swallow disk spans: the
        # factory branch of PirDatabase.create walks the chain and hands
        # the tracer to the store that performs the actual I/O.
        injector = FaultInjector(seed=5)  # no plans: pure pass-through

        def factory(num_locations, frame_size, timing, clock, trace):
            inner = DiskStore(num_locations, frame_size, timing, clock, trace)
            return FaultyDiskStore(inner, injector)

        wrapped_tracer = Tracer()
        wrapped = make_db(wrapped_tracer, disk_factory=factory)
        wrapped.query(0)

        plain_tracer = Tracer()
        plain = make_db(plain_tracer)
        plain.query(0)

        for phase in ("disk.read", "disk.write"):
            assert wrapped_tracer.total(phase).count == \
                plain_tracer.total(phase).count
            assert wrapped_tracer.total(phase).count >= 1

    def test_null_tracer_is_default_and_silent(self):
        db = PirDatabase.create(
            make_records(48, 16), cache_capacity=4, block_size=4,
            page_capacity=16, seed=11,
        )
        assert db.engine.tracer is NULL_TRACER
        db.query(0)
        assert NULL_TRACER.spans == []


class TestDisabledOverhead:
    def test_noop_span_overhead_under_four_percent(self):
        """Structural overhead bound for the disabled tracer.

        Measures (a) the cost of one no-op instrumentation site and (b)
        the spans-per-query count of the real engine, and asserts their
        product is under 4% of the measured per-query time.  (The bound
        was 2% before the batched crypto pipeline roughly halved the
        per-query wall time; the absolute overhead — a dozen no-op
        context managers, ~2-3us — is unchanged.)  This is
        deliberately *not* an A/B wall-clock comparison of two engine
        runs — those are dominated by allocator/cache noise at this
        scale and flake; the structural product is stable because both
        factors are measured on this machine in this process.
        """
        db = make_db(Tracer(enabled=False), seed=13)
        queries = 60
        start = time.perf_counter()
        for index in range(queries):
            db.query(index % 48)
        per_query = (time.perf_counter() - start) / queries

        traced = Tracer()
        traced_db = make_db(traced, seed=13)
        for index in range(queries):
            traced_db.query(index % 48)
        spans_per_query = sum(
            total.count for total in traced.phase_totals().values()
        ) / queries

        disabled = Tracer(enabled=False)
        rounds = 200_000
        start = time.perf_counter()
        for _ in range(rounds):
            with disabled.span("x"):
                pass
        per_site = (time.perf_counter() - start) / rounds

        overhead = spans_per_query * per_site
        assert overhead < 0.04 * per_query, (
            f"disabled-tracer overhead {overhead * 1e6:.2f}us/query is "
            f">= 4% of the {per_query * 1e6:.0f}us query time "
            f"({spans_per_query:.0f} sites x {per_site * 1e9:.0f}ns)"
        )
