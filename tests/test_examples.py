"""Every shipped example must run cleanly end to end."""

from __future__ import annotations

import os
import runpy
import sys

import pytest

_EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
_EXAMPLES = sorted(
    name for name in os.listdir(_EXAMPLES_DIR) if name.endswith(".py")
)


def test_examples_exist():
    assert len(_EXAMPLES) >= 5


@pytest.mark.parametrize("script", _EXAMPLES)
def test_example_runs(script, capsys):
    path = os.path.join(_EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
