"""SecureRandom determinism/uniformity and CipherSuite framing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import SecureRandom
from repro.crypto.suite import BACKENDS, FRAME_OVERHEAD, CipherSuite
from repro.errors import AuthenticationError, CryptoError


class TestSecureRandom:
    def test_seed_determinism(self):
        a, b = SecureRandom(42), SecureRandom(42)
        assert [a.randrange(1000) for _ in range(20)] == [
            b.randrange(1000) for _ in range(20)
        ]

    def test_different_seeds_diverge(self):
        a, b = SecureRandom(1), SecureRandom(2)
        assert [a.randrange(10**9) for _ in range(4)] != [
            b.randrange(10**9) for _ in range(4)
        ]

    def test_randrange_bounds(self):
        rng = SecureRandom(3)
        for upper in (1, 2, 3, 7, 256, 257, 10**12):
            for _ in range(50):
                assert 0 <= rng.randrange(upper) < upper

    def test_randrange_uniform_coverage(self):
        rng = SecureRandom(4)
        counts = [0] * 8
        for _ in range(8000):
            counts[rng.randrange(8)] += 1
        # Expected 1000 each; loose 4-sigma band.
        assert all(850 < c < 1150 for c in counts), counts

    def test_randint_inclusive(self):
        rng = SecureRandom(5)
        values = {rng.randint(3, 5) for _ in range(200)}
        assert values == {3, 4, 5}

    def test_random_unit_interval(self):
        rng = SecureRandom(6)
        samples = [rng.random() for _ in range(500)]
        assert all(0 <= x < 1 for x in samples)
        assert 0.4 < sum(samples) / len(samples) < 0.6

    def test_shuffle_is_permutation(self):
        rng = SecureRandom(7)
        items = list(range(100))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_sample_distinct(self):
        rng = SecureRandom(8)
        picked = rng.sample(range(50), 20)
        assert len(set(picked)) == 20
        assert all(0 <= x < 50 for x in picked)

    def test_token_length_and_determinism(self):
        assert len(SecureRandom(9).token(100)) == 100
        assert SecureRandom(9).token(33) == SecureRandom(9).token(33)

    def test_spawn_independent_but_deterministic(self):
        parent1, parent2 = SecureRandom(10), SecureRandom(10)
        child1, child2 = parent1.spawn("x"), parent2.spawn("x")
        assert child1.token(16) == child2.token(16)
        assert parent1.spawn("x").token(16) != parent1.spawn("y").token(16)

    def test_spawn_does_not_disturb_parent(self):
        a, b = SecureRandom(11), SecureRandom(11)
        a.spawn("anything")
        assert a.token(16) == b.token(16)

    def test_choice(self):
        rng = SecureRandom(12)
        assert rng.choice([42]) == 42
        assert rng.choice("abc") in "abc"

    def test_errors(self):
        rng = SecureRandom(13)
        with pytest.raises(CryptoError):
            rng.randrange(0)
        with pytest.raises(CryptoError):
            rng.randint(5, 4)
        with pytest.raises(CryptoError):
            rng.sample([1, 2], 3)
        with pytest.raises(CryptoError):
            rng.choice([])
        with pytest.raises(CryptoError):
            rng.token(-1)
        with pytest.raises(CryptoError):
            SecureRandom(-1)

    @settings(max_examples=50, deadline=None)
    @given(upper=st.integers(min_value=1, max_value=2**64))
    def test_randrange_property(self, upper):
        assert 0 <= SecureRandom(99).randrange(upper) < upper


class TestCipherSuite:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_roundtrip(self, backend):
        suite = CipherSuite(b"master", backend=backend, rng=SecureRandom(1))
        for payload in (b"", b"x", b"hello world" * 20):
            assert suite.decrypt_page(suite.encrypt_page(payload)) == payload

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_frame_size(self, backend):
        suite = CipherSuite(b"master", backend=backend, rng=SecureRandom(2))
        frame = suite.encrypt_page(bytes(100))
        assert len(frame) == 100 + FRAME_OVERHEAD == suite.frame_size(100)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tamper_detection(self, backend):
        suite = CipherSuite(b"master", backend=backend, rng=SecureRandom(3))
        frame = bytearray(suite.encrypt_page(b"secret page content"))
        frame[len(frame) // 2] ^= 0x40
        with pytest.raises(AuthenticationError):
            suite.decrypt_page(bytes(frame))

    def test_truncated_frame(self):
        suite = CipherSuite(b"master", rng=SecureRandom(4))
        with pytest.raises(CryptoError):
            suite.decrypt_page(bytes(FRAME_OVERHEAD - 1))

    def test_fresh_nonce_per_encryption(self):
        suite = CipherSuite(b"master", backend="blake2", rng=SecureRandom(5))
        frames = {suite.encrypt_page(b"same plaintext") for _ in range(50)}
        assert len(frames) == 50  # unlinkable re-encryptions

    def test_cross_key_rejection(self):
        one = CipherSuite(b"key-one", backend="blake2", rng=SecureRandom(6))
        two = CipherSuite(b"key-two", backend="blake2", rng=SecureRandom(7))
        with pytest.raises(AuthenticationError):
            two.decrypt_page(one.encrypt_page(b"hello"))

    def test_aes_and_blake2_interop_is_refused(self):
        """Different backends produce incompatible ciphertexts (same MAC key,
        so decryption succeeds only if the keystream matches)."""
        aes = CipherSuite(b"master", backend="aes", rng=SecureRandom(8))
        blake = CipherSuite(b"master", backend="blake2", rng=SecureRandom(8))
        frame = aes.encrypt_page(b"payload-123")
        # Same MAC key means the frame authenticates, but plaintext differs.
        assert blake.decrypt_page(frame) != b"payload-123"

    def test_explicit_nonce_is_testable(self):
        suite = CipherSuite(b"master", backend="blake2", rng=SecureRandom(9))
        nonce = bytes(12)
        assert suite.encrypt_page(b"abc", nonce) == suite.encrypt_page(b"abc", nonce)

    def test_unknown_backend(self):
        with pytest.raises(CryptoError):
            CipherSuite(b"m", backend="rot13")

    def test_bad_explicit_nonce(self):
        suite = CipherSuite(b"m", rng=SecureRandom(10))
        with pytest.raises(CryptoError):
            suite.encrypt_page(b"x", nonce=bytes(5))

    def test_frame_size_rejects_negative(self):
        with pytest.raises(CryptoError):
            CipherSuite(b"m").frame_size(-1)

    @settings(max_examples=25, deadline=None)
    @given(payload=st.binary(max_size=300))
    def test_roundtrip_property(self, payload):
        suite = CipherSuite(b"prop", backend="blake2", rng=SecureRandom(11))
        assert suite.decrypt_page(suite.encrypt_page(payload)) == payload


class TestBatchPipeline:
    """encrypt_pages/decrypt_pages: one suite entry per batch, same bytes."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_encrypt_matches_serial(self, backend):
        plaintexts = [bytes([i]) * (20 + i) for i in range(5)]
        serial = CipherSuite(b"master", backend=backend, rng=SecureRandom(40))
        batch = CipherSuite(b"master", backend=backend, rng=SecureRandom(40))
        expected = [serial.encrypt_page(p) for p in plaintexts]
        assert batch.encrypt_pages(plaintexts) == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_roundtrip(self, backend):
        suite = CipherSuite(b"master", backend=backend, rng=SecureRandom(41))
        plaintexts = [f"page-{i}".encode() * (i + 1) for i in range(7)]
        frames = suite.encrypt_pages(plaintexts)
        assert suite.decrypt_pages(frames) == plaintexts
        # Batch-sealed frames also open through the per-frame path.
        assert [suite.decrypt_page(f) for f in frames] == plaintexts

    def test_batch_mac_failure_reports_all_bad_indices(self):
        suite = CipherSuite(b"master", backend="blake2", rng=SecureRandom(42))
        frames = suite.encrypt_pages([b"a" * 24, b"b" * 24, b"c" * 24])
        frames[0] = frames[0][:-1] + bytes([frames[0][-1] ^ 1])
        frames[2] = frames[2][:-1] + bytes([frames[2][-1] ^ 1])
        with pytest.raises(AuthenticationError, match=r"0, 2"):
            suite.decrypt_pages(frames)

    def test_batch_rejects_short_frame(self):
        suite = CipherSuite(b"master", backend="blake2", rng=SecureRandom(43))
        good = suite.encrypt_page(b"x" * 16)
        with pytest.raises(CryptoError):
            suite.decrypt_pages([good, b"\x00" * (FRAME_OVERHEAD - 1)])

    def test_empty_batch(self):
        suite = CipherSuite(b"master", backend="blake2", rng=SecureRandom(44))
        assert suite.encrypt_pages([]) == []
        assert suite.decrypt_pages([]) == []

    def test_explicit_nonces(self):
        suite = CipherSuite(b"master", backend="blake2", rng=SecureRandom(45))
        nonces = [bytes([i]) * 12 for i in range(3)]
        frames = suite.encrypt_pages([b"a", b"bb", b"ccc"], nonces)
        for frame, nonce in zip(frames, nonces):
            assert frame[:12] == nonce
        with pytest.raises(CryptoError):
            suite.encrypt_pages([b"a", b"b"], nonces)  # length mismatch
