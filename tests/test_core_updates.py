"""§4.3 update handling: modifications, insertions, deletions."""

from __future__ import annotations

import pytest

from repro.baselines import make_records
from repro.errors import CapacityError, PageDeletedError, PageNotFoundError
from repro.storage.trace import shapes_identical

from tests.helpers import make_db


class TestModify:
    def test_modify_then_query(self, small_db):
        small_db.update(3, b"revised")
        assert small_db.query(3) == b"revised"

    def test_modify_cached_page(self, small_db):
        small_db.query(3)  # bring into the cache
        assert small_db.cop.page_map.is_cached(3)
        small_db.update(3, b"cached-edit")
        assert small_db.query(3) == b"cached-edit"

    def test_modify_survives_churn(self, small_db, records):
        small_db.update(7, b"sticky")
        for i in range(60):
            small_db.query(i % small_db.num_pages)
        assert small_db.query(7) == b"sticky"
        small_db.consistency_check()

    def test_repeated_modifications(self, small_db):
        for version in range(10):
            small_db.update(1, bytes([version]) * 4)
        assert small_db.query(1) == bytes([9]) * 4


class TestDelete:
    def test_delete_then_query_raises(self, small_db):
        small_db.delete(4)
        with pytest.raises(PageDeletedError):
            small_db.query(4)

    def test_double_delete_rejected(self, small_db):
        small_db.delete(4)
        with pytest.raises(PageNotFoundError):
            small_db.delete(4)

    def test_delete_cached_page_is_force_evicted(self, small_db):
        """§4.3: a cached deleted page always swaps into the block."""
        small_db.query(6)  # cache it
        assert small_db.cop.page_map.is_cached(6)
        small_db.delete(6)
        assert not small_db.cop.page_map.is_cached(6)
        assert small_db.cop.page_map.is_deleted(6)

    def test_delete_disk_page(self, small_db):
        # Fresh db: page 11 not yet cached.
        assert not small_db.cop.page_map.is_cached(11)
        small_db.delete(11)
        assert small_db.cop.page_map.is_deleted(11)
        small_db.consistency_check()

    def test_delete_grows_free_pool(self, small_db):
        before = small_db.cop.page_map.free_count
        small_db.delete(2)
        assert small_db.cop.page_map.free_count == before + 1


class TestInsert:
    def test_insert_into_reserve(self, small_db):
        new_id = small_db.insert(b"brand new")
        assert small_db.query(new_id) == b"brand new"
        assert not small_db.cop.page_map.is_deleted(new_id)

    def test_insert_consumes_free_pool(self, small_db):
        before = small_db.cop.page_map.free_count
        small_db.insert(b"x")
        assert small_db.cop.page_map.free_count == before - 1

    def test_insert_reuses_deleted_slot(self):
        db = make_db(num_records=40, seed=9)  # no reserve_fraction
        free_before = db.cop.page_map.free_count
        db.delete(5)
        new_id = db.insert(b"recycled")
        assert db.query(new_id) == b"recycled"
        assert db.cop.page_map.free_count == free_before

    def test_insert_exhaustion(self):
        db = make_db(num_records=40, seed=10)
        inserted = []
        with pytest.raises(CapacityError):
            for _ in range(1000):  # far beyond any padding
                inserted.append(db.insert(b"fill"))
        # Everything that fit must still be retrievable.
        for page_id in inserted:
            assert db.query(page_id) == b"fill"

    def test_insert_then_delete_then_insert(self, small_db):
        first = small_db.insert(b"one")
        small_db.delete(first)
        second = small_db.insert(b"two")
        assert small_db.query(second) == b"two"
        small_db.consistency_check()


class TestUpdatePrivacy:
    def test_all_operations_share_one_trace_shape(self, small_db):
        """§4.3's claim: the op type is invisible in the disk access pattern."""
        small_db.query(0)
        small_db.update(1, b"v2")
        small_db.insert(b"new")
        small_db.delete(2)
        small_db.touch()
        assert small_db.engine.request_count == 5
        assert shapes_identical(small_db.trace, 0, 4)

    def test_mixed_long_workload_consistency(self, small_db):
        from repro.crypto.rng import SecureRandom
        from repro.workload import operation_stream

        rng = SecureRandom(42)
        expected = {i: None for i in range(small_db.num_pages)}
        operations = operation_stream(small_db.num_pages, 120, rng)
        for op in operations:
            if op.kind == "query":
                try:
                    small_db.query(op.page_id)
                except PageDeletedError:
                    pass
            elif op.kind == "update":
                small_db.update(op.page_id, op.payload)
                expected[op.page_id] = op.payload
            elif op.kind == "insert":
                try:
                    new_id = small_db.insert(op.payload)
                    expected[new_id] = op.payload
                except CapacityError:
                    pass
            else:
                try:
                    small_db.delete(op.page_id)
                    expected.pop(op.page_id, None)
                except PageNotFoundError:
                    pass
        small_db.consistency_check()
        for page_id, payload in expected.items():
            if payload is not None:
                assert small_db.query(page_id) == payload
        assert shapes_identical(small_db.trace, 0)

    def test_deleted_page_query_still_issues_full_request(self, small_db):
        """The trace must not reveal that a query hit a deleted page."""
        small_db.delete(3)
        requests_before = small_db.engine.request_count
        with pytest.raises(PageDeletedError):
            small_db.query(3)
        assert small_db.engine.request_count == requests_before + 1
        assert shapes_identical(small_db.trace, 0)
