"""Repository-level consistency: docs reference real things, exports exist."""

from __future__ import annotations

import importlib
import os
import pkgutil

import pytest

import repro

_ROOT = os.path.join(os.path.dirname(__file__), "..")


def _read(name: str) -> str:
    with open(os.path.join(_ROOT, name), encoding="utf-8") as handle:
        return handle.read()


def _all_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI under pytest argv
        yield info.name


class TestDocsReferenceRealArtifacts:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "pyproject.toml"):
            assert os.path.exists(os.path.join(_ROOT, name)), name

    def test_design_mentions_every_bench_file(self):
        design = _read("DESIGN.md") + _read("EXPERIMENTS.md")
        bench_dir = os.path.join(_ROOT, "benchmarks")
        for name in os.listdir(bench_dir):
            if name.startswith("bench_") and name.endswith(".py"):
                assert name in design, f"{name} not documented"

    def test_examples_listed_in_readme(self):
        readme = _read("README.md")
        examples_dir = os.path.join(_ROOT, "examples")
        for name in os.listdir(examples_dir):
            if name.endswith(".py") and name != "operations_lifecycle.py":
                assert name.replace(".py", "") in readme, name

    def test_design_layout_matches_source_tree(self):
        design = _read("DESIGN.md")
        src = os.path.join(_ROOT, "src", "repro")
        for package in os.listdir(src):
            path = os.path.join(src, package)
            if os.path.isdir(path) and not package.startswith("__"):
                assert f"{package}/" in design or package in design, package


class TestPackageHygiene:
    def test_every_module_imports(self):
        for module_name in _all_modules():
            importlib.import_module(module_name)

    def test_every_all_entry_exists(self):
        for module_name in _all_modules():
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_every_module_has_docstring(self):
        for module_name in _all_modules():
            module = importlib.import_module(module_name)
            assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for module_name in _all_modules():
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if not getattr(obj, "__module__", "").startswith("repro"):
                    continue  # typing aliases, re-exports of stdlib objects
                if callable(obj) and not getattr(obj, "__doc__", None):
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, undocumented

    def test_version_consistent(self):
        assert repro.__version__ == "1.0.0"
        assert 'version = "1.0.0"' in _read("pyproject.toml")

    def test_py_typed_marker_present(self):
        assert os.path.exists(
            os.path.join(_ROOT, "src", "repro", "py.typed")
        )

    def test_no_module_imports_random_stdlib(self):
        """The library's randomness must flow through SecureRandom only
        (reproducibility + auditability); `import random` is banned in src."""
        src = os.path.join(_ROOT, "src", "repro")
        offenders = []
        for directory, _dirs, files in os.walk(src):
            for name in files:
                if not name.endswith(".py"):
                    continue
                path = os.path.join(directory, name)
                with open(path, encoding="utf-8") as handle:
                    text = handle.read()
                if "import random" in text:
                    offenders.append(path)
        assert not offenders, offenders
