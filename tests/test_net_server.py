"""Loopback integration tests for the TCP serving stack (repro.net)."""

import contextlib
import threading
import time

import pytest

from tests.helpers import make_db
from repro.baselines import make_records
from repro.errors import (
    ConfigurationError,
    DegradedServiceError,
    PageNotFoundError,
    ProtocolError,
    TransientChannelError,
)
from repro.faults.retry import RetryPolicy
from repro.net import (
    AdmissionController,
    NetworkClient,
    PirServer,
    ServerThread,
    TokenBucket,
)
from repro.obs import MetricsRegistry
from repro.service import protocol
from repro.service.frontend import (
    SESSION_RANDOM,
    QueryFrontend,
    ServiceClient,
)

RECORDS = make_records(40, 16)


@contextlib.contextmanager
def serving(metrics=None, admission=None, frontend_kw=None, **server_kw):
    """A live loopback server over a fresh seeded database."""
    db = make_db(metrics=metrics) if metrics is not None else make_db()
    frontend = QueryFrontend(
        db, metrics=metrics, session_id_mode=SESSION_RANDOM,
        **(frontend_kw or {}),
    )
    server = PirServer(frontend, admission=admission, metrics=metrics,
                       **server_kw)
    handle = ServerThread(server)
    try:
        with handle:
            yield db, frontend, server, handle
    finally:
        db.close()


class TestLoopbackOperations:
    def test_full_operation_surface(self):
        registry = MetricsRegistry()
        with serving(metrics=registry) as (db, frontend, server, handle):
            with NetworkClient(handle.host, handle.port) as client:
                # query
                assert client.query(3) == RECORDS[3]
                # update
                client.update(3, b"updated pg 3")
                assert client.query(3) == b"updated pg 3"
                # insert
                new_id = client.insert(b"fresh page 40")
                assert client.query(new_id) == b"fresh page 40"
                # delete
                client.delete(new_id)
                with pytest.raises(PageNotFoundError):
                    client.query(new_id)
                # batch: positional replies, per-op failures
                replies = client.batch([
                    protocol.Query(1),
                    protocol.Update(2, b"batched upd"),
                    protocol.Query(2),
                    protocol.Delete(9999),  # refused slot
                ])
                assert replies[0] == protocol.Result(1, RECORDS[1])
                assert replies[1] == protocol.Ok()
                assert replies[2] == protocol.Result(2, b"batched upd")
                assert isinstance(replies[3], protocol.Refused)
            snapshot = registry.snapshot()
            counters = snapshot["counters"]
            assert counters["net.requests"] == counters["net.replies"] == 8
            assert counters["net.connections.accepted"] == 1
            assert counters["net.bytes.in"] > 0
            assert counters["net.bytes.out"] > 0
            assert "net.request.seconds" in snapshot["histograms"]

    def test_network_bytes_match_in_process_client(self):
        """Acceptance: NetworkClient query == ServiceClient query on the
        same seeded database."""
        reference_db = make_db()
        reference = ServiceClient(
            QueryFrontend(reference_db, session_id_mode=SESSION_RANDOM)
        )
        with serving() as (db, frontend, server, handle):
            with NetworkClient(handle.host, handle.port) as client:
                for page_id in range(10):
                    assert client.query(page_id) == reference.query(page_id)
        reference.close()
        reference_db.close()

    def test_sequential_sessions_refused_by_default(self):
        db = make_db()
        frontend = QueryFrontend(db)  # sequential mode
        with pytest.raises(ConfigurationError, match="sequential"):
            PirServer(frontend)
        PirServer(frontend, allow_sequential_sessions=True)  # escape hatch
        db.close()

    def test_refusals_surface_server_error_classes(self):
        with serving() as (db, frontend, server, handle):
            with NetworkClient(handle.host, handle.port) as client:
                with pytest.raises(PageNotFoundError, match="refused"):
                    client.query(10_000)  # not-found → typed refusal

    def test_closed_session_refused_via_envelope(self):
        with serving() as (db, frontend, server, handle):
            with NetworkClient(handle.host, handle.port) as client:
                assert client.query(0) == RECORDS[0]
                frontend.close_session(client.session_id)
                with pytest.raises(ProtocolError, match="unknown session"):
                    client.query(0)


class TestConcurrentClients:
    QUERIES_PER_CLIENT = 5
    CLIENTS = 8

    def _workload(self, client_index):
        return [(client_index + offset) % 40
                for offset in range(self.QUERIES_PER_CLIENT)]

    def test_eight_concurrent_clients_match_serial_run(self):
        registry = MetricsRegistry()
        errors = []
        results = {}

        def run_client(index, host, port):
            try:
                with NetworkClient(host, port) as client:
                    results[index] = [client.query(page_id)
                                      for page_id in self._workload(index)]
            except BaseException as exc:  # noqa: BLE001 - collect for assert
                errors.append((index, exc))

        with serving(metrics=registry) as (db, frontend, server, handle):
            threads = [
                threading.Thread(target=run_client,
                                 args=(index, handle.host, handle.port))
                for index in range(self.CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors, f"client errors: {errors}"
            for index in range(self.CLIENTS):
                expected = [RECORDS[p] for p in self._workload(index)]
                assert results[index] == expected
            concurrent_requests = frontend.counters.get("requests")
            concurrent_engine = db.engine.request_count

        # Serial reference: same workload through one in-process client.
        serial_db = make_db()
        serial_frontend = QueryFrontend(serial_db,
                                        session_id_mode=SESSION_RANDOM)
        serial_client = ServiceClient(serial_frontend)
        for index in range(self.CLIENTS):
            for page_id in self._workload(index):
                assert serial_client.query(page_id) == RECORDS[page_id]
        assert concurrent_requests == serial_frontend.counters.get("requests")
        assert concurrent_engine == serial_db.engine.request_count
        total = self.CLIENTS * self.QUERIES_PER_CLIENT
        snapshot = registry.snapshot()
        assert snapshot["counters"]["net.requests"] == total
        assert snapshot["counters"]["net.replies"] == total
        serial_client.close()
        serial_db.close()


class TestDuplicateRetransmission:
    def test_duplicate_served_from_reply_cache_over_tcp(self):
        with serving() as (db, frontend, server, handle):
            with NetworkClient(handle.host, handle.port) as client:
                sealed = client._suite.encrypt_page(
                    protocol.encode_client_message(protocol.Insert(b"dup"))
                )
                before = db.engine.request_count
                first = client._transact(1, sealed)
                after_first = db.engine.request_count
                # Blind retransmission of the identical sealed bytes —
                # exactly what a timed-out client on TCP would resend.
                second = client._transact(1, sealed)
                assert first == second
                assert db.engine.request_count == after_first > before
                assert frontend.counters.get("requests.duplicate") == 1
                # The insert was applied exactly once.
                reply = protocol.decode_client_message(
                    client._suite.decrypt_page(first)
                )
                assert isinstance(reply, protocol.Result)
                assert client.query(reply.page_id) == b"dup"


class TestGracefulDrain:
    def test_drain_waits_for_inflight_request(self):
        entered = threading.Event()
        release = threading.Event()
        fired = []

        def hook():
            if not fired:
                fired.append(True)
                entered.set()
                assert release.wait(timeout=30)

        with serving() as (db, frontend, server, handle):
            server._serve_hook = hook
            outcome = {}

            def run_query():
                try:
                    with NetworkClient(handle.host, handle.port) as client:
                        outcome["payload"] = client.query(5)
                except BaseException as exc:  # noqa: BLE001
                    outcome["error"] = exc

            client_thread = threading.Thread(target=run_query)
            client_thread.start()
            assert entered.wait(timeout=30)

            drain_thread = threading.Thread(target=handle.drain)
            drain_thread.start()
            time.sleep(0.2)
            # Drain must still be waiting on the in-flight request.
            assert drain_thread.is_alive()
            assert "payload" not in outcome

            release.set()
            drain_thread.join(timeout=30)
            assert not drain_thread.is_alive()
            client_thread.join(timeout=30)
            # The in-flight request was neither lost nor refused.
            assert outcome.get("payload") == RECORDS[5]
            assert frontend.session_count == 0

            # And the listener is gone: new connections fail outright.
            with pytest.raises(TransientChannelError):
                NetworkClient(handle.host, handle.port, timeout=2.0)

    def test_requests_after_drain_are_refused_retryably(self):
        with serving() as (db, frontend, server, handle):
            client = NetworkClient(handle.host, handle.port)
            assert client.query(0) == RECORDS[0]
            # Flip the drain flag directly (the full drain() tears the
            # connection down); live connections now get retryable sheds.
            server._draining = True
            with pytest.raises(DegradedServiceError) as excinfo:
                client.query(1)
            assert excinfo.value.retry_after >= 0
            server._draining = False
            client.close()


class TestAdmissionIntegration:
    def test_session_cap_refuses_handshake(self):
        admission = AdmissionController(max_sessions=1)
        with serving(admission=admission) as (db, frontend, server, handle):
            first = NetworkClient(handle.host, handle.port)
            with pytest.raises(DegradedServiceError) as excinfo:
                NetworkClient(handle.host, handle.port)
            assert excinfo.value.retry_after >= 0
            assert admission.counters.get("shed.sessions") == 1
            first.close()

    def test_rate_shed_is_retryable_and_counted(self):
        registry = MetricsRegistry()
        admission = AdmissionController(
            bucket=TokenBucket(rate=0.5, capacity=2.0),
            metrics=registry,
        )
        with serving(metrics=registry,
                     admission=admission) as (db, frontend, server, handle):
            with NetworkClient(handle.host, handle.port) as client:
                assert client.query(0) == RECORDS[0]
                assert client.query(1) == RECORDS[1]
                with pytest.raises(DegradedServiceError) as excinfo:
                    client.query(2)
                assert excinfo.value.retry_after > 0
        assert admission.counters.get("shed.rate") >= 1
        assert registry.snapshot()["counters"]["net.shed"] >= 1

    def test_client_retry_rides_out_the_shed(self):
        admission = AdmissionController(
            bucket=TokenBucket(rate=20.0, capacity=2.0),
        )
        retry = RetryPolicy(max_attempts=6, base_delay=0.05,
                            multiplier=2.0, max_delay=1.0)
        with serving(admission=admission) as (db, frontend, server, handle):
            client = NetworkClient(handle.host, handle.port,
                                   retry=retry, rng_seed=7)
            payloads = [client.query(page_id) for page_id in range(6)]
            assert payloads == [RECORDS[p] for p in range(6)]
            # At least one request was shed and transparently retried.
            assert client.counters.get("retries") >= 1
            client.close()


class TestIdleReapingOverNetwork:
    def test_idle_session_reaped_by_server_sweep(self):
        frontend_kw = {"session_ttl": 0.3, "time_source": time.monotonic}
        with serving(frontend_kw=frontend_kw,
                     reap_interval=0.1) as (db, frontend, server, handle):
            client = NetworkClient(handle.host, handle.port)
            assert client.query(0) == RECORDS[0]
            deadline = time.monotonic() + 10.0
            while (frontend.session_count > 0
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert frontend.session_count == 0
            assert frontend.counters.get("sessions.reaped") == 1
            with pytest.raises(ProtocolError, match="unknown session"):
                client.query(1)
            client.close()
