"""Paged B+-tree: builder, codec, traversal, range scans."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.index.btree import (
    NO_PAGE,
    BTree,
    BTreeBuilder,
    InternalNode,
    LeafNode,
    decode_node,
)


def _tree_over(items, capacity=128):
    pages, root, height = BTreeBuilder(capacity).build(items)
    return BTree(lambda pid: pages[pid], root), pages, height


class TestNodeCodec:
    def test_leaf_roundtrip(self):
        leaf = LeafNode([1, 5, 9], [b"a", b"bb", b""], next_leaf=7)
        decoded = decode_node(leaf.encode())
        assert isinstance(decoded, LeafNode)
        assert decoded == leaf

    def test_leaf_last_sibling(self):
        leaf = LeafNode([1], [b"x"])
        assert decode_node(leaf.encode()).next_leaf == NO_PAGE

    def test_internal_roundtrip(self):
        node = InternalNode([10, 20], [3, 4, 5])
        decoded = decode_node(node.encode())
        assert isinstance(decoded, InternalNode)
        assert decoded == node

    def test_internal_routing(self):
        node = InternalNode([10, 20], [100, 200, 300])
        assert node.child_for(5) == 100
        assert node.child_for(10) == 200
        assert node.child_for(19) == 200
        assert node.child_for(25) == 300

    def test_encoded_size_is_exact(self):
        leaf = LeafNode([1, 2], [b"abc", b"d"])
        assert leaf.encoded_size() == len(leaf.encode())
        node = InternalNode([9], [1, 2])
        assert node.encoded_size() == len(node.encode())

    def test_malformed(self):
        with pytest.raises(IndexError_):
            decode_node(b"")
        with pytest.raises(IndexError_):
            decode_node(b"\x07\x00\x00")
        with pytest.raises(IndexError_):
            LeafNode([1], []).encode()
        with pytest.raises(IndexError_):
            InternalNode([1], [2]).encode()


class TestBuilder:
    def test_single_leaf(self):
        tree, pages, height = _tree_over([(1, b"one"), (2, b"two")])
        assert height == 1 and len(pages) == 1
        assert tree.get(1) == b"one"

    def test_multi_level(self):
        items = [(i, f"v{i}".encode()) for i in range(500)]
        tree, pages, height = _tree_over(items, capacity=96)
        assert height >= 2
        for key, value in items[::37]:
            assert tree.get(key) == value

    def test_node_sizes_respect_capacity(self):
        items = [(i, b"x" * 10) for i in range(300)]
        pages, _root, _h = BTreeBuilder(100).build(items)
        assert all(len(page) <= 100 for page in pages)

    def test_empty_rejected(self):
        with pytest.raises(IndexError_):
            BTreeBuilder(128).build([])

    def test_unsorted_rejected(self):
        with pytest.raises(IndexError_):
            BTreeBuilder(128).build([(2, b"a"), (1, b"b")])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(IndexError_):
            BTreeBuilder(128).build([(1, b"a"), (1, b"b")])

    def test_oversized_entry_rejected(self):
        with pytest.raises(IndexError_):
            BTreeBuilder(64).build([(1, b"x" * 100)])

    def test_tiny_capacity_rejected(self):
        with pytest.raises(IndexError_):
            BTreeBuilder(10)


class TestTraversal:
    ITEMS = [(i * 3 + 1, f"value-{i}".encode()) for i in range(200)]

    def test_get_every_key(self):
        tree, _p, _h = _tree_over(self.ITEMS, capacity=96)
        for key, value in self.ITEMS:
            assert tree.get(key) == value

    def test_get_absent_keys(self):
        tree, _p, _h = _tree_over(self.ITEMS, capacity=96)
        for key in (0, 2, 3, 599, 10**9):
            assert tree.get(key) is None

    def test_full_range_scan(self):
        tree, _p, _h = _tree_over(self.ITEMS, capacity=96)
        assert list(tree.range(0, 10**9)) == self.ITEMS

    def test_partial_range(self):
        tree, _p, _h = _tree_over(self.ITEMS, capacity=96)
        got = list(tree.range(10, 50))
        assert got == [(k, v) for k, v in self.ITEMS if 10 <= k <= 50]

    def test_empty_range(self):
        tree, _p, _h = _tree_over(self.ITEMS, capacity=96)
        assert list(tree.range(50, 10)) == []
        assert list(tree.range(2, 2)) == []

    def test_pages_fetched_counts_levels(self):
        tree, _p, height = _tree_over(self.ITEMS, capacity=96)
        tree.pages_fetched = 0
        tree.get(1)
        assert tree.pages_fetched == height

    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.sets(st.integers(min_value=0, max_value=10**6),
                     min_size=1, max_size=150)
    )
    def test_random_keysets_property(self, keys):
        items = [(key, key.to_bytes(8, "big")) for key in sorted(keys)]
        tree, _p, _h = _tree_over(items, capacity=80)
        for key, value in items:
            assert tree.get(key) == value
        assert list(tree.range(min(keys), max(keys))) == items
