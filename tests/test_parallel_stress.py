"""Concurrency stress: client threads on the shard executor + batch crypto.

The parallel dispatcher promises that any interleaving of client threads
drives each shard through a well-formed request sequence: pageMap/pageCache
invariants hold afterwards, every write is readable, and the aggregate
counters match a serial run of the same operation multiset — the
interleaving may reorder work but must never lose or duplicate it.
"""

from __future__ import annotations

import threading

from repro.baselines import make_records
from repro.core.sharded import ShardedPirDatabase
from repro.crypto.rng import SecureRandom
from repro.crypto.suite import CipherSuite
from repro.obs.registry import MetricsRegistry

NUM_RECORDS = 80
NUM_SHARDS = 4
THREADS = 8
OPS_PER_THREAD = 12
RECORDS = make_records(NUM_RECORDS, 16)


def _make_db(parallel: bool, metrics: MetricsRegistry,
             **options) -> ShardedPirDatabase:
    return ShardedPirDatabase.create(
        RECORDS,
        NUM_SHARDS,
        cache_capacity_per_shard=4,
        target_c=2.0,
        page_capacity=16,
        reserve_fraction=0.2,
        seed=99,
        parallel=parallel,
        metrics=metrics,
        **options,
    )


def _thread_ops(thread_id: int):
    """The operation list for one thread: queries plus thread-owned updates."""
    ops = []
    for i in range(OPS_PER_THREAD):
        ops.append(("query", (thread_id * 7 + i * 3) % NUM_RECORDS))
    # Each thread updates only ids it owns, so final values are deterministic
    # regardless of cross-thread interleaving.
    own = thread_id  # ids t, t+THREADS, ... belong to thread t
    ops.append(("update", own, f"owned-by-{thread_id}".encode()))
    ops.append(("update", own + THREADS, f"also-{thread_id}".encode()))
    return ops


def _apply(db: ShardedPirDatabase, op) -> None:
    if op[0] == "query":
        assert db.query(op[1]) is not None
    else:
        db.update(op[1], op[2])


class TestShardExecutorStress:
    def test_threads_hammering_parallel_executor(self):
        metrics = MetricsRegistry()
        with _make_db(parallel=True, metrics=metrics) as db:
            errors = []

            def worker(thread_id: int) -> None:
                try:
                    for op in _thread_ops(thread_id):
                        _apply(db, op)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(t,))
                for t in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []

            # pageMap / pageCache invariants survived the interleaving.
            db.consistency_check()
            # Every thread's writes are durable and correctly routed.
            for t in range(THREADS):
                assert db.query(t) == f"owned-by-{t}".encode()
                assert db.query(t + THREADS) == f"also-{t}".encode()
            # Cover traffic kept shard loads equal under concurrency.
            assert len(set(db.shard_request_counts())) == 1

            parallel_snapshot = metrics.snapshot()["counters"]
            parallel_total = db.total_requests()

        # Serial reference: same operation multiset on one thread.
        serial_metrics = MetricsRegistry()
        with _make_db(parallel=False, metrics=serial_metrics) as ref:
            for t in range(THREADS):
                for op in _thread_ops(t):
                    _apply(ref, op)
            # The verification queries above, replayed for counter parity.
            for t in range(THREADS):
                assert ref.query(t) == f"owned-by-{t}".encode()
                assert ref.query(t + THREADS) == f"also-{t}".encode()
            ref.consistency_check()
            serial_snapshot = serial_metrics.snapshot()["counters"]
            assert parallel_total == ref.total_requests()

        # The registries agree on every work-counting metric; only the
        # ``parallel_dispatches`` marker may differ between the two modes.
        for name, value in serial_snapshot.items():
            if name.endswith("parallel_dispatches"):
                continue
            assert parallel_snapshot.get(name) == value, name


class TestFusedBatchStress:
    def test_threads_issuing_fused_batches(self):
        """Concurrent fused batches drive every shard through sane streams.

        Each thread submits whole batches through the fused
        one-disk-pass-per-window path (``ShardedPirDatabase.run_batch``,
        fanned out on the ShardExecutor).  Batches from different threads
        interleave at batch granularity — the routing lock serialises the
        prescan, the per-shard executor locks serialise each shard's
        windows — so invariants and thread-owned writes must survive any
        interleaving, exactly as with the per-op entry points.
        """
        from repro.core.engine import BatchOp

        metrics = MetricsRegistry()
        with _make_db(parallel=True, metrics=metrics) as db:
            errors = []

            def worker(thread_id: int) -> None:
                try:
                    batch = [
                        BatchOp("query",
                                page_id=(thread_id * 7 + i * 3) % NUM_RECORDS)
                        for i in range(OPS_PER_THREAD)
                    ]
                    batch.append(BatchOp(
                        "update", page_id=thread_id,
                        payload=f"owned-by-{thread_id}".encode()))
                    batch.append(BatchOp(
                        "update", page_id=thread_id + THREADS,
                        payload=f"also-{thread_id}".encode()))
                    results = db.run_batch(batch)
                    assert not any(
                        isinstance(item, Exception) for item in results
                    ), results
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(t,))
                for t in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []

            db.consistency_check()
            for t in range(THREADS):
                assert db.query(t) == f"owned-by-{t}".encode()
                assert db.query(t + THREADS) == f"also-{t}".encode()
            # Cover traffic kept the shard streams equal-length, and the
            # fused engine actually ran (each shard saw batched windows).
            assert len(set(db.shard_request_counts())) == 1
            for shard in db.shards:
                assert shard.engine.counters.get("batch.fused.windows") > 0

    def test_fused_batches_interleaved_with_serial_ops(self):
        """Mixing run_batch and per-op calls from different threads is safe."""
        from repro.core.engine import BatchOp

        with _make_db(parallel=True, metrics=MetricsRegistry()) as db:
            errors = []

            def batch_worker(thread_id: int) -> None:
                try:
                    for round_ in range(3):
                        results = db.run_batch([
                            BatchOp("query",
                                    page_id=(thread_id + i * 5) % NUM_RECORDS)
                            for i in range(6)
                        ])
                        assert not any(
                            isinstance(item, Exception) for item in results
                        )
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            def serial_worker(thread_id: int) -> None:
                try:
                    for i in range(OPS_PER_THREAD):
                        db.query((thread_id * 11 + i) % NUM_RECORDS)
                    db.update(thread_id + 2 * THREADS,
                              f"serial-{thread_id}".encode())
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(
                    target=batch_worker if t % 2 else serial_worker,
                    args=(t,))
                for t in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            db.consistency_check()
            for t in range(THREADS):
                if t % 2 == 0:
                    assert db.query(t + 2 * THREADS) == f"serial-{t}".encode()


class TestPipelineParallelEquality:
    def test_serial_vs_parallel_bytes_with_pipeline(self):
        """Keystream prefetch must not perturb the parallel-equality contract.

        The same deterministic workload runs four ways — {serial, parallel}
        × {pipeline off, background pipeline} — and every variant must
        produce identical per-shard disk frames and virtual clocks: the
        prefetcher only trades wall time, never bytes or ticks.
        """

        def run(parallel: bool, pipeline):
            with _make_db(parallel, MetricsRegistry(), cipher_backend="aes",
                          keystream_pipeline=pipeline) as db:
                results = []
                for i in range(NUM_RECORDS // 2):
                    results.append(db.query((i * 5) % NUM_RECORDS))
                    if i % 6 == 0:
                        db.update(i, f"v-{i}".encode())
                db.consistency_check()
                frames = [
                    [shard.disk.peek(loc)
                     for loc in range(shard.disk.num_locations)]
                    for shard in db.shards
                ]
                clocks = [shard.clock.now for shard in db.shards]
                return results, frames, clocks

        baseline = run(parallel=False, pipeline=None)
        for parallel in (False, True):
            for pipeline in (None, "background"):
                if not parallel and pipeline is None:
                    continue
                assert run(parallel, pipeline) == baseline, (
                    parallel, pipeline
                )


class TestBatchCryptoStress:
    def test_thread_local_suites_stay_deterministic(self):
        """Concurrent batch crypto matches single-threaded reference bytes.

        Suites are documented single-threaded, so each thread owns one;
        the stress point is that nothing process-global (hashlib state,
        precomputed pads) bleeds between threads.
        """
        per_thread_frames = [None] * THREADS
        errors = []

        def worker(thread_id: int) -> None:
            try:
                suite = CipherSuite(
                    b"stress", backend="blake2",
                    rng=SecureRandom(1000 + thread_id),
                )
                plaintexts = [
                    bytes([thread_id, i]) * 24 for i in range(16)
                ]
                frames = None
                for _ in range(20):
                    frames = suite.encrypt_pages(plaintexts)
                    assert suite.decrypt_pages(frames) == plaintexts
                per_thread_frames[thread_id] = frames
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        for thread_id in range(THREADS):
            reference = CipherSuite(
                b"stress", backend="blake2",
                rng=SecureRandom(1000 + thread_id),
            )
            plaintexts = [bytes([thread_id, i]) * 24 for i in range(16)]
            expected = None
            for _ in range(20):
                expected = reference.encrypt_pages(plaintexts)
            assert per_thread_frames[thread_id] == expected
