"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro import PirDatabase
from repro.baselines import make_records
from repro.crypto.rng import SecureRandom
from repro.hardware.specs import HardwareSpec


@pytest.fixture
def rng() -> SecureRandom:
    return SecureRandom(12345)


@pytest.fixture
def records():
    return make_records(40, 16)


@pytest.fixture
def small_db(records) -> PirDatabase:
    """A small but fully featured database: n=48 locations, k=8, m=8."""
    return PirDatabase.create(
        records,
        cache_capacity=8,
        target_c=2.0,
        page_capacity=16,
        reserve_fraction=0.2,
        seed=777,
    )


@pytest.fixture
def timed_db(records) -> PirDatabase:
    """Same shape, but with the real Table-2 timing model attached."""
    return PirDatabase.create(
        records,
        cache_capacity=8,
        target_c=2.0,
        page_capacity=16,
        reserve_fraction=0.2,
        seed=778,
        spec=HardwareSpec(),
    )


