"""Hierarchical (pyramid) ORAM baseline."""

from __future__ import annotations

import pytest

from repro.baselines import PyramidOram, make_records, measure_latencies
from repro.crypto.rng import SecureRandom
from repro.errors import ConfigurationError, PageNotFoundError
from repro.hardware.specs import HardwareSpec
from repro.storage.trace import READ

RECORDS = make_records(50, 16)


class TestCorrectness:
    def test_every_page_retrievable(self):
        scheme = PyramidOram.create(RECORDS, page_capacity=16, seed=1)
        for page_id in range(len(RECORDS)):
            assert scheme.retrieve(page_id) == RECORDS[page_id]

    def test_long_random_workload(self):
        scheme = PyramidOram.create(RECORDS, page_capacity=16, seed=2)
        rng = SecureRandom(3)
        for _ in range(600):
            page_id = rng.randrange(len(RECORDS))
            assert scheme.retrieve(page_id) == RECORDS[page_id]
        assert scheme.rebuild_count > 100

    def test_repeated_same_page(self):
        scheme = PyramidOram.create(RECORDS, page_capacity=16, seed=4)
        for _ in range(40):
            assert scheme.retrieve(7) == RECORDS[7]

    def test_tiny_database(self):
        records = make_records(3, 16)
        scheme = PyramidOram.create(records, page_capacity=16, seed=5)
        for _ in range(30):
            for page_id in range(3):
                assert scheme.retrieve(page_id) == records[page_id]

    def test_bad_id(self):
        scheme = PyramidOram.create(RECORDS, page_capacity=16, seed=6)
        with pytest.raises(PageNotFoundError):
            scheme.retrieve(len(RECORDS))

    def test_empty_records(self):
        with pytest.raises(ConfigurationError):
            PyramidOram.create([], page_capacity=16)


class TestObliviousShape:
    def test_one_read_per_level_per_access(self):
        scheme = PyramidOram.create(RECORDS, page_capacity=16, seed=7)
        scheme.trace.clear()
        scheme.retrieve(5)
        single_reads = [
            e for e in scheme.trace if e.op == READ and e.count == 1
        ]
        assert len(single_reads) == scheme.num_levels

    def test_bottom_level_slots_never_repeat_within_epoch(self):
        """Between rebuilds of the deepest level, its accessed slots are all
        distinct — one real read, then fresh dummy slots (no frequency
        signal for the server)."""
        scheme = PyramidOram.create(RECORDS, page_capacity=16, seed=8)
        bottom = scheme._levels[-1]
        scheme.trace.clear()
        locations = []
        for _ in range(10):  # well under the bottom level's rebuild period
            scheme.retrieve(9)
            locations.extend(
                e.location for e in scheme.trace
                if e.op == READ and e.count == 1 and e.location >= bottom.base
            )
            scheme.trace.clear()
        assert len(locations) == 10
        assert len(locations) == len(set(locations))

    def test_latency_spiky(self):
        scheme = PyramidOram.create(RECORDS, page_capacity=16, seed=9,
                                    spec=HardwareSpec())
        rng = SecureRandom(10)
        series = measure_latencies(
            scheme, [rng.randrange(len(RECORDS)) for _ in range(64)]
        )
        assert series.coefficient_of_variation() > 0.15
        assert series.maximum() > 1.5 * series.percentile(50)

    def test_levels_grow_geometrically(self):
        scheme = PyramidOram.create(RECORDS, page_capacity=16, seed=11)
        sizes = [level.size for level in scheme._levels]
        assert all(b == 2 * a for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] // 2 >= len(RECORDS)
