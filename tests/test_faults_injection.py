"""Fault-injection harness: determinism, plans, wrappers, retry layer."""

from __future__ import annotations

import pytest

from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    TransientChannelError,
    TransientStorageError,
)
from repro.faults import (
    SITE_CHANNEL,
    SITE_DISK_READ,
    SITE_DISK_WRITE,
    FaultInjector,
    FaultPlan,
    FaultyDiskStore,
    FlakyChannel,
    RetryPolicy,
    SimulatedCrash,
    corrupt_reads,
    crash_after_writes,
    delay_messages,
    drop_messages,
    duplicate_messages,
    retry_call,
    transient_reads,
    transient_writes,
)
from repro.crypto.rng import SecureRandom
from repro.sim.clock import VirtualClock
from repro.sim.metrics import CounterSet
from repro.storage.disk import DiskStore
from repro.storage.trace import shapes_identical
from repro.twoparty.channel import SimulatedChannel

from tests.helpers import make_db


def faulty_factory(injector):
    """A ``disk_factory`` for PirDatabase.create wrapping the default store."""

    def build(num_locations, frame_size, timing, clock, trace):
        return FaultyDiskStore(
            DiskStore(num_locations, frame_size, timing, clock, trace),
            injector,
        )

    return build


class TestFaultInjector:
    def test_same_seed_same_decision_stream(self):
        def decisions(seed):
            injector = FaultInjector(
                seed, [transient_reads(probability=0.3, times=None)]
            )
            return [
                (d.kind if d else None)
                for d in (injector.check(SITE_DISK_READ) for _ in range(200))
            ]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_plan_exhaustion(self):
        injector = FaultInjector(0, [transient_reads(times=2)])
        kinds = [injector.check(SITE_DISK_READ) for _ in range(4)]
        assert [d.kind if d else None for d in kinds] == [
            "transient", "transient", None, None,
        ]

    def test_after_skips_operations(self):
        injector = FaultInjector(0, [transient_writes(after=3)])
        results = [injector.check(SITE_DISK_WRITE) for _ in range(5)]
        assert [d.kind if d else None for d in results] == [
            None, None, None, "transient", None,
        ]

    def test_crash_threshold_and_torn_frames(self):
        # 5 frames land per op; crash after 12 frames => fires on the third
        # operation with 2 frames still landing.
        injector = FaultInjector(0, [crash_after_writes(12)])
        assert injector.check(SITE_DISK_WRITE, frames=5) is None
        assert injector.check(SITE_DISK_WRITE, frames=5) is None
        decision = injector.check(SITE_DISK_WRITE, frames=5)
        assert decision.kind == "crash"
        assert decision.torn_frames == 2
        # The plan is one-shot: later writes proceed.
        assert injector.check(SITE_DISK_WRITE, frames=5) is None

    def test_sites_are_independent(self):
        injector = FaultInjector(0, [transient_reads()])
        assert injector.check(SITE_DISK_WRITE) is None
        assert injector.check(SITE_DISK_READ).kind == "transient"

    def test_counters(self):
        counters = CounterSet()
        injector = FaultInjector(0, [transient_reads(times=3)],
                                 counters=counters)
        for _ in range(5):
            injector.check(SITE_DISK_READ)
        assert counters.get("fault.transient") == 3

    def test_invalid_plans_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan("nowhere", "transient")
        with pytest.raises(ConfigurationError):
            FaultPlan(SITE_DISK_READ, "meteor")
        with pytest.raises(ConfigurationError):
            FaultPlan(SITE_DISK_READ, "transient", probability=1.5)

    def test_corrupt_blob_always_differs(self):
        injector = FaultInjector(3)
        blob = bytes(range(32))
        for _ in range(20):
            assert injector.corrupt_blob(blob) != blob


class TestFaultyDiskStore:
    def make_store(self, plans, seed=0):
        injector = FaultInjector(seed, plans)
        store = FaultyDiskStore(
            DiskStore(num_locations=8, frame_size=4), injector
        )
        for loc in range(8):
            store.write(loc, bytes([loc] * 4))
        return store, injector

    def test_no_plans_is_transparent(self):
        store, _ = self.make_store([])
        assert store.read(3) == b"\x03\x03\x03\x03"
        assert store.num_locations == 8
        assert store.frame_size == 4
        assert store.initialised_locations() == 8

    def test_transient_read_leaves_state_intact(self):
        # after=2: the first two reads pass, the third fails, then clear.
        store, _ = self.make_store([transient_reads(after=2)])
        assert store.read(0) == b"\x00\x00\x00\x00"
        assert store.read(1) == b"\x01\x01\x01\x01"
        with pytest.raises(TransientStorageError):
            store.read(0)
        assert store.read(0) == b"\x00\x00\x00\x00"

    def test_transient_write_nothing_lands(self):
        store, _ = self.make_store([transient_writes(after=8)])
        with pytest.raises(TransientStorageError):
            store.write(0, b"XXXX")
        assert store.read(0) == b"\x00\x00\x00\x00"

    def test_crash_applies_torn_prefix(self):
        store, _ = self.make_store([crash_after_writes(8 + 2)])
        with pytest.raises(SimulatedCrash):
            store.write_range(0, [b"AAAA", b"BBBB", b"CCCC", b"DDDD"])
        assert store.read(0) == b"AAAA"
        assert store.read(1) == b"BBBB"
        assert store.read(2) == b"\x02\x02\x02\x02"  # never landed
        assert store.read(3) == b"\x03\x03\x03\x03"

    def test_corrupt_read_flips_one_frame(self):
        store, _ = self.make_store([corrupt_reads()])
        frames = store.read_range(0, 4)
        originals = [bytes([loc] * 4) for loc in range(4)]
        differing = [i for i, (a, b) in enumerate(zip(frames, originals))
                     if a != b]
        assert len(differing) == 1
        # Underlying store is undamaged.
        assert store.read_range(0, 4) == originals


class TestFlakyChannel:
    def make_channel(self, plans, seed=0):
        clock = VirtualClock()
        calls = []

        def handler(blob):
            calls.append(blob)
            return b"ok:" + blob

        inner = SimulatedChannel(clock, handler, rtt=0.1, bandwidth=1e6)
        return FlakyChannel(inner, FaultInjector(seed, plans)), clock, calls

    def test_drop_charges_timeout_and_never_delivers(self):
        channel, clock, calls = self.make_channel([drop_messages()])
        with pytest.raises(TransientChannelError):
            channel.call(b"hello")
        assert calls == []
        assert clock.now >= 0.1  # waited out the round trip
        assert channel.call(b"hello") == b"ok:hello"

    def test_delay_adds_latency(self):
        channel, clock, _ = self.make_channel([delay_messages(2.5, times=1)])
        channel.call(b"x")
        first = clock.now
        channel.call(b"x")
        second = clock.now - first
        assert first >= 2.5
        assert first - second == pytest.approx(2.5)

    def test_duplicate_delivers_twice(self):
        channel, _, calls = self.make_channel([duplicate_messages()])
        assert channel.call(b"q") == b"ok:q"
        assert len(calls) == 2


class TestRetryCall:
    def test_retries_then_succeeds(self):
        clock = VirtualClock()
        attempts = []

        def operation():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientStorageError("flaky")
            return "done"

        result = retry_call(
            operation,
            RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0),
            clock,
            SecureRandom(0),
            retry_on=(TransientStorageError,),
        )
        assert result == "done"
        assert len(attempts) == 3
        assert clock.now == pytest.approx(0.01 + 0.02)  # exponential backoff

    def test_final_exception_propagates(self):
        clock = VirtualClock()
        with pytest.raises(TransientStorageError):
            retry_call(
                lambda: (_ for _ in ()).throw(TransientStorageError("always")),
                RetryPolicy(max_attempts=3),
                clock,
                SecureRandom(0),
                retry_on=(TransientStorageError,),
            )

    def test_non_matching_exception_not_retried(self):
        clock = VirtualClock()
        attempts = []

        def operation():
            attempts.append(1)
            raise AuthenticationError("bad mac")

        with pytest.raises(AuthenticationError):
            retry_call(operation, RetryPolicy(), clock, SecureRandom(0),
                       retry_on=(TransientStorageError,))
        assert len(attempts) == 1

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.delay_for(i, SecureRandom(9)) for i in range(4)]
        b = [policy.delay_for(i, SecureRandom(9)) for i in range(4)]
        assert a == b

    def test_min_delay_floors_backoff(self):
        clock = VirtualClock()
        attempts = []

        def operation():
            attempts.append(1)
            if len(attempts) < 2:
                raise TransientStorageError("once")
            return "ok"

        retry_call(operation, RetryPolicy(base_delay=0.001, jitter=0.0),
                   clock, SecureRandom(0), (TransientStorageError,),
                   min_delay=1.0)
        assert clock.now >= 1.0

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)


class TestEngineUnderFaults:
    def test_engine_retries_transient_reads(self):
        injector = FaultInjector(
            1, [transient_reads(times=2, after=0)]
        )
        db = make_db(seed=11, disk_factory=faulty_factory(injector),
                     read_retry=RetryPolicy(max_attempts=4))
        records = [db.query(i) for i in range(5)]
        assert all(records)
        assert db.engine.counters.get("retries.read") >= 1
        db.consistency_check()

    def test_engine_rereads_on_corruption(self):
        injector = FaultInjector(2, [corrupt_reads(times=1)])
        db = make_db(seed=12, disk_factory=faulty_factory(injector),
                     read_retry=RetryPolicy(max_attempts=3))
        assert db.query(0) is not None
        db.consistency_check()

    def test_engine_without_retry_propagates(self):
        injector = FaultInjector(3, [transient_reads(times=1)])
        db = make_db(seed=13, disk_factory=faulty_factory(injector))
        with pytest.raises(TransientStorageError):
            db.query(0)

    def test_unrecoverable_corruption_stays_bounded(self):
        # Unlimited corruption: the bounded re-read gives up with the
        # authentication error instead of looping forever.
        injector = FaultInjector(4, [corrupt_reads(times=None)])
        db = make_db(seed=14, disk_factory=faulty_factory(injector),
                     read_retry=RetryPolicy(max_attempts=3))
        with pytest.raises(AuthenticationError):
            db.query(0)

    def test_retried_run_is_deterministic(self):
        def run(seed):
            injector = FaultInjector(
                5, [transient_reads(probability=0.2, times=None)]
            )
            db = make_db(seed=seed, disk_factory=faulty_factory(injector),
                         read_retry=RetryPolicy(max_attempts=6))
            for i in range(8):
                db.query(i % 4)
            events = [
                (e.op, e.location, e.count, e.request_index, e.timestamp)
                for e in db.trace
            ]
            return (events, db.engine.counters.as_dict(), db.clock.now)

        assert run(21) == run(21)

    def test_trace_shape_unchanged_under_retries(self):
        injector = FaultInjector(
            6, [transient_reads(probability=0.15, times=None)]
        )
        db = make_db(seed=15, disk_factory=faulty_factory(injector),
                     read_retry=RetryPolicy(max_attempts=8))
        for i in range(6):
            db.query(i)
        # Retried reads add extra *events* for the same request, but the
        # committed read/write structure keeps every request at 2 reads +
        # 2 writes of (k, 1) frames; verify via the fault-free twin's shape.
        clean = make_db(seed=15)
        clean.query(0)
        expected = clean.trace.request_shape(0)
        for index in range(6):
            shape = db.trace.request_shape(index)
            assert shape[-2:] == expected[-2:]  # the two commit writes
            assert [s for s in shape if s[0] == "write"] == [
                s for s in expected if s[0] == "write"
            ]
