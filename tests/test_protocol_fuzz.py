"""Property-based fuzzing of both wire codecs (two-party + client service).

Protocol decoders face adversarial bytes by definition; these tests check
(1) encode/decode round-trips for arbitrary field values, and (2) the
decoders never crash with anything but :class:`ProtocolError` on arbitrary
or mutated input.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.service import protocol as client_wire
from repro.twoparty import messages as disk_wire

FRAME = 24
_frames = st.lists(
    st.binary(min_size=FRAME, max_size=FRAME), min_size=0, max_size=6
).map(tuple)
_frame = st.binary(min_size=FRAME, max_size=FRAME)
_u64 = st.integers(min_value=0, max_value=2**64 - 1)
_u32 = st.integers(min_value=0, max_value=2**32 - 1)
_payload = st.binary(max_size=200)


class TestDiskWireRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(start=_u64, frames=_frames)
    def test_upload(self, start, frames):
        message = disk_wire.Upload(start, frames)
        assert disk_wire.decode(disk_wire.encode(message, FRAME), FRAME) == message

    @settings(max_examples=40, deadline=None)
    @given(block=_u64, count=_u32, extra=_u64)
    def test_read_request(self, block, count, extra):
        message = disk_wire.ReadRequest(block, count, extra)
        assert disk_wire.decode(disk_wire.encode(message, FRAME), FRAME) == message

    @settings(max_examples=40, deadline=None)
    @given(frames=_frames, extra=_frame)
    def test_read_response(self, frames, extra):
        message = disk_wire.ReadResponse(frames, extra)
        assert disk_wire.decode(disk_wire.encode(message, FRAME), FRAME) == message

    @settings(max_examples=40, deadline=None)
    @given(block=_u64, frames=_frames, extra_loc=_u64, extra=_frame)
    def test_write_request(self, block, frames, extra_loc, extra):
        message = disk_wire.WriteRequest(block, frames, extra_loc, extra)
        assert disk_wire.decode(disk_wire.encode(message, FRAME), FRAME) == message

    @settings(max_examples=40, deadline=None)
    @given(reason=st.text(max_size=100))
    def test_error_reply(self, reason):
        message = disk_wire.ErrorReply(reason)
        assert disk_wire.decode(disk_wire.encode(message, FRAME), FRAME) == message


class TestDiskWireRobustness:
    @settings(max_examples=100, deadline=None)
    @given(garbage=st.binary(max_size=300))
    def test_arbitrary_bytes_never_crash(self, garbage):
        try:
            disk_wire.decode(garbage, FRAME)
        except ProtocolError:
            pass  # the only acceptable failure mode

    @settings(max_examples=60, deadline=None)
    @given(
        frames=_frames,
        cut=st.integers(min_value=0, max_value=400),
    )
    def test_truncation_never_crashes(self, frames, cut):
        encoded = disk_wire.encode(disk_wire.Upload(0, frames), FRAME)
        try:
            decoded = disk_wire.decode(encoded[:cut], FRAME)
            # A prefix that still decodes must decode to the same message
            # (only possible when nothing was cut).
            assert cut >= len(encoded) or decoded == disk_wire.Upload(0, frames)
        except ProtocolError:
            pass


class TestClientWireRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(page=_u64)
    def test_query(self, page):
        message = client_wire.Query(page)
        assert client_wire.decode_client_message(
            client_wire.encode_client_message(message)
        ) == message

    @settings(max_examples=40, deadline=None)
    @given(page=_u64, payload=_payload)
    def test_update_and_result(self, page, payload):
        for message in (client_wire.Update(page, payload),
                        client_wire.Result(page, payload)):
            assert client_wire.decode_client_message(
                client_wire.encode_client_message(message)
            ) == message

    @settings(max_examples=40, deadline=None)
    @given(payload=_payload)
    def test_insert(self, payload):
        message = client_wire.Insert(payload)
        assert client_wire.decode_client_message(
            client_wire.encode_client_message(message)
        ) == message


class TestClientWireRobustness:
    @settings(max_examples=100, deadline=None)
    @given(garbage=st.binary(max_size=300))
    def test_arbitrary_bytes_never_crash(self, garbage):
        try:
            client_wire.decode_client_message(garbage)
        except ProtocolError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(payload=_payload, flip=st.integers(min_value=0, max_value=10**6))
    def test_bitflips_never_crash(self, payload, flip):
        encoded = bytearray(
            client_wire.encode_client_message(client_wire.Insert(payload))
        )
        encoded[flip % len(encoded)] ^= 1 + (flip % 255)
        try:
            client_wire.decode_client_message(bytes(encoded))
        except ProtocolError:
            pass
