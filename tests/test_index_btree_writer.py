"""Read-write B+-tree over the private page store."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.index import BTreeBuilder, BTreeWriter, PrivateKeyValueStore
from repro.storage.trace import shapes_identical


def _store(items=None, reserve=1.5, page_capacity=96, seed=900):
    items = items if items is not None else [(i * 4, f"v{i}".encode())
                                             for i in range(30)]
    return PrivateKeyValueStore.create(
        items,
        cache_capacity=8,
        page_capacity=page_capacity,
        reserve_fraction=reserve,
        cipher_backend="null",
        seed=seed,
    )


class TestInsert:
    def test_insert_new_key(self):
        store = _store()
        store.put(1, b"one")
        assert store.get(1) == b"one"
        assert store.get(4) == b"v1"  # old keys intact

    def test_overwrite_existing_key(self):
        store = _store()
        store.put(8, b"replaced")
        assert store.get(8) == b"replaced"

    def test_many_inserts_with_splits(self):
        store = _store(reserve=10.0)
        initial_height = store.height
        for key in range(1, 200, 2):
            store.put(key, key.to_bytes(4, "big"))
        for key in range(1, 200, 2):
            assert store.get(key) == key.to_bytes(4, "big"), key
        for i in range(30):
            assert store.get(i * 4) == f"v{i}".encode()
        assert store.height >= initial_height

    def test_root_split_grows_height(self):
        store = _store(items=[(0, b"a")], reserve=60.0)
        for key in range(1, 120):
            store.put(key, b"x" * 4)
        assert store.height >= 2
        assert store.get(77) == b"x" * 4

    def test_range_sees_inserts(self):
        store = _store()
        store.put(5, b"five")
        window = store.range(4, 8)
        assert (5, b"five") in window

    def test_reserve_exhaustion_is_clean(self):
        store = _store(reserve=0.1, seed=901)
        with pytest.raises(IndexError_):
            for key in range(1, 5000, 2):
                store.put(key, b"x" * 8)

    def test_oversized_entry_rejected(self):
        store = _store()
        with pytest.raises(IndexError_):
            store.put(3, b"x" * 500)


class TestVariableSizeValues:
    def test_mixed_size_inserts_split_by_bytes(self):
        store = _store(items=[(10_000, b"anchor")], reserve=300.0,
                       page_capacity=128, seed=905)
        # Alternate tiny and large values so a count-middle split would
        # sometimes leave an oversized half.
        expected = {}
        for key in range(200):
            value = (b"L" * 60) if key % 2 else (b"s" * 2)
            store.put(key, value)
            expected[key] = value
        for key, value in expected.items():
            assert store.get(key) == value, key
        store.database.consistency_check()

    def test_all_large_values(self):
        store = _store(items=[(10_000, b"anchor")], reserve=60.0,
                       page_capacity=128, seed=906)
        for key in range(40):
            store.put(key, b"X" * 80)
        for key in range(40):
            assert store.get(key) == b"X" * 80


class TestDelete:
    def test_delete_existing(self):
        store = _store()
        assert store.remove(8)
        assert store.get(8) is None
        assert store.get(12) == b"v3"

    def test_delete_absent(self):
        store = _store()
        assert not store.remove(999)

    def test_delete_then_reinsert(self):
        store = _store()
        store.remove(16)
        store.put(16, b"back")
        assert store.get(16) == b"back"

    def test_delete_everything(self):
        items = [(i, bytes([i])) for i in range(20)]
        store = _store(items=items)
        for key in range(20):
            assert store.remove(key)
        for key in range(20):
            assert store.get(key) is None


class TestPrivacyOfWrites:
    def test_index_mutations_keep_trace_uniform(self):
        store = _store()
        store.put(3, b"new")
        store.remove(8)
        store.put(101, b"split-causing" )
        assert shapes_identical(store.database.trace, 0)


class TestWriterDirect:
    def test_writer_over_bulk_loaded_pages(self):
        items = [(i * 2, f"b{i}".encode()) for i in range(40)]
        store = _store(items=items, seed=902)
        writer = BTreeWriter(store.database, store.root_page_id)
        writer.insert(1, b"odd")
        assert writer.get(1) == b"odd"
        assert writer.get(2) == b"b1"
        assert writer.get(3) is None

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        keys=st.lists(st.integers(0, 500), min_size=1, max_size=40,
                      unique=True),
        seed=st.integers(0, 10**6),
    )
    def test_random_insert_delete_property(self, keys, seed):
        store = _store(items=[(1000, b"anchor")], reserve=40.0, seed=seed)
        shadow = {1000: b"anchor"}
        for key in keys:
            value = key.to_bytes(4, "big")
            store.put(key, value)
            shadow[key] = value
        for key in keys[::2]:
            store.remove(key)
            shadow.pop(key, None)
        for key, value in shadow.items():
            assert store.get(key) == value
        for key in keys[::2]:
            assert store.get(key) is None
        store.database.consistency_check()
