"""Merkle freshness layer: rollback detection beyond honest-but-curious."""

from __future__ import annotations

import pytest

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.errors import AuthenticationError, StorageError
from repro.storage.disk import DiskStore
from repro.storage.merkle import AuthenticatedDisk, MerkleTree


class TestMerkleTree:
    def test_update_changes_root(self):
        tree = MerkleTree(8)
        before = tree.root
        after = tree.update(3, b"frame")
        assert after != before
        assert tree.root == after

    def test_verify_accepts_current_frame(self):
        tree = MerkleTree(8)
        root = tree.update(5, b"current")
        assert tree.verify(5, b"current", root)

    def test_verify_rejects_other_frame(self):
        tree = MerkleTree(8)
        root = tree.update(5, b"current")
        assert not tree.verify(5, b"older version", root)

    def test_verify_rejects_against_stale_root(self):
        tree = MerkleTree(8)
        old_root = tree.update(5, b"v1")
        tree.update(5, b"v2")
        assert not tree.verify(5, b"v1", tree.root)
        assert tree.verify(5, b"v1", old_root)  # only the old root accepts v1

    def test_leaf_position_binding(self):
        """The same frame at a different index must not verify."""
        tree = MerkleTree(8)
        tree.update(2, b"frame")
        root = tree.update(6, b"frame")
        assert tree.verify(2, b"frame", root)
        assert not tree.verify(3, b"frame", root)

    def test_non_power_of_two_leaves(self):
        tree = MerkleTree(5)
        root = tree.update_range(0, [bytes([i]) for i in range(5)])
        for i in range(5):
            assert tree.verify(i, bytes([i]), root)

    def test_bounds(self):
        tree = MerkleTree(4)
        with pytest.raises(StorageError):
            tree.update(4, b"x")
        with pytest.raises(StorageError):
            MerkleTree(0)


class TestAuthenticatedDisk:
    def _disk(self, n=16, frame=8):
        return AuthenticatedDisk(DiskStore(n, frame))

    def test_honest_roundtrip(self):
        disk = self._disk()
        disk.write_range(0, [bytes([i]) * 8 for i in range(16)])
        assert disk.read(5) == bytes([5]) * 8
        assert disk.read_range(2, 3) == [bytes([i]) * 8 for i in (2, 3, 4)]

    def test_replay_attack_detected(self):
        disk = self._disk()
        disk.write(3, b"version1")
        stale = disk._inner._frames[3]
        disk.write(3, b"version2")
        # Malicious server: put the old (validly MAC'd) frame back.
        disk._inner._frames[3] = stale
        with pytest.raises(AuthenticationError, match="stale"):
            disk.read(3)

    def test_corruption_detected(self):
        disk = self._disk()
        disk.write(0, bytes(8))
        disk._inner._frames[0] = b"\xff" * 8
        with pytest.raises(AuthenticationError):
            disk.read_range(0, 1)

    def test_request_interface(self):
        disk = self._disk()
        disk.write_range(0, [bytes([i]) * 8 for i in range(16)])
        frames, extra = disk.read_request(4, 3, 10)
        assert extra == bytes([10]) * 8
        disk.write_request(4, [b"new-one!"] * 3, 10, b"extra-10")
        assert disk.read(10) == b"extra-10"

    def test_root_changes_on_every_write(self):
        disk = self._disk()
        roots = set()
        for i in range(5):
            disk.write(0, bytes([i]) * 8)
            roots.add(disk.trusted_root)
        assert len(roots) == 5


class TestTwoPartyFreshness:
    def test_owner_detects_provider_replay(self):
        from repro.twoparty import TwoPartySession

        records = make_records(40, 16)
        session = TwoPartySession.create(
            records, cache_capacity=6, block_size=5, page_capacity=16,
            seed=15, rollback_protection=True,
        )
        for page_id in range(40):
            assert session.query(page_id) == records[page_id]
        stale = session.provider.disk._frames[0]
        for _ in range(session.owner.params.scan_period):
            session.owner.engine.touch()
        session.provider.disk._frames[0] = stale
        with pytest.raises(AuthenticationError, match="stale"):
            for _ in range(session.owner.params.scan_period):
                session.owner.engine.touch()

    def test_honest_provider_unaffected(self):
        from repro.twoparty import TwoPartySession

        records = make_records(30, 16)
        session = TwoPartySession.create(
            records, cache_capacity=6, block_size=5, page_capacity=16,
            seed=16, rollback_protection=True, reserve_fraction=0.2,
        )
        session.update(3, b"fresh")
        assert session.query(3) == b"fresh"
        new_id = session.insert(b"added")
        assert session.query(new_id) == b"added"


class TestEndToEnd:
    def test_database_with_rollback_protection(self):
        records = make_records(32, 16)
        db = PirDatabase.create(
            records, cache_capacity=4, block_size=4, page_capacity=16,
            seed=6, rollback_protection=True,
        )
        for step in range(80):
            page_id = (step * 5) % 32
            assert db.query(page_id) == records[page_id]
        db.update(3, b"fresh write")
        assert db.query(3) == b"fresh write"
        db.consistency_check()

    def test_database_replay_attack_detected(self):
        records = make_records(32, 16)
        db = PirDatabase.create(
            records, cache_capacity=4, block_size=4, page_capacity=16,
            seed=7, rollback_protection=True,
        )
        stale = db.disk._inner._frames[0]
        # Several requests later the location has been rewritten...
        for _ in range(db.params.scan_period):
            db.touch()
        # ...the malicious server now rolls location 0 back.
        db.disk._inner._frames[0] = stale
        with pytest.raises(AuthenticationError, match="stale"):
            for _ in range(db.params.scan_period):
                db.touch()
