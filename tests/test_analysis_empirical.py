"""Monte-Carlo validation: the real engine obeys the Eqs. 1-5 analysis."""

from __future__ import annotations

import pytest

from repro.analysis.empirical import measure_landing_distribution
from repro.crypto.rng import SecureRandom
from repro.errors import ConfigurationError

from tests.helpers import make_db


@pytest.fixture(scope="module")
def experiment():
    """One decently sized Monte-Carlo run shared by the assertions below.

    Configuration: n=48 locations, k=8, T=6, m=8 -> theoretical
    c = (1 - 1/8)^-5 ~= 1.95.  The null cipher keeps 2000 trials fast.
    """
    db = make_db(
        num_records=40,
        cache_capacity=8,
        target_c=2.0,
        page_capacity=16,
        reserve_fraction=0.2,
        cipher_backend="null",
        trace_enabled=False,
        seed=2024,
    )
    assert db.params.block_size == 8 and db.params.scan_period == 6
    return measure_landing_distribution(
        db, trials=2000, rng=SecureRandom(55)
    )


class TestLandingDistribution:
    def test_all_trials_recorded(self, experiment):
        assert sum(experiment.offset_counts) == 2000

    def test_offsets_decay(self, experiment):
        counts = experiment.offset_counts
        # First offset strictly more popular than last; allow sampling noise
        # in the middle by only checking the endpoints and the global trend.
        assert counts[0] > counts[-1]
        first_half = sum(counts[: len(counts) // 2])
        second_half = sum(counts[len(counts) // 2 :])
        assert first_half > second_half

    def test_fitted_c_matches_theory_tightly(self, experiment):
        """The MLE estimator has far lower variance than the max/min ratio."""
        theory = experiment.theoretical_offset_probabilities()
        expected_c = theory[0] / theory[-1]
        assert experiment.fitted_c() == pytest.approx(expected_c, rel=0.08)

    def test_empirical_c_matches_theory(self, experiment):
        theory = experiment.theoretical_offset_probabilities()
        expected_c = theory[0] / theory[-1]
        measured = experiment.empirical_c(smoothing=1.0)
        assert measured == pytest.approx(expected_c, rel=0.25)

    def test_total_variation_small(self, experiment):
        assert experiment.total_variation_error() < 0.05

    def test_mean_eviction_time_near_m(self, experiment):
        # Geometric with success probability 1/m has mean m = 8.
        assert experiment.mean_eviction_time() == pytest.approx(8.0, rel=0.15)

    def test_within_block_uniformity(self, experiment):
        counts = experiment.slot_counts
        expected = sum(counts) / len(counts)
        for count in counts:
            assert abs(count - expected) < 5 * (expected**0.5) + 5, counts


class TestExperimentApi:
    def test_zero_trials_rejected(self, small_db):
        with pytest.raises(ConfigurationError):
            measure_landing_distribution(small_db, trials=0)

    def test_observed_frequencies_need_data(self):
        from repro.analysis.empirical import LandingExperiment

        empty = LandingExperiment(48, 8, 8, 0, [0] * 6, [0] * 8)
        with pytest.raises(ConfigurationError):
            empty.observed_offset_frequencies()
        with pytest.raises(ConfigurationError):
            empty.mean_eviction_time()

    def test_small_run_smoke(self, small_db):
        result = measure_landing_distribution(
            small_db, trials=20, rng=SecureRandom(3)
        )
        assert sum(result.offset_counts) == 20
        assert len(result.eviction_times) == 20
