"""Snapshot/restore of a running database."""

from __future__ import annotations

import json
import os

import pytest

from repro.baselines import make_records
from repro.core.snapshot import load_snapshot, save_snapshot
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    PageDeletedError,
    StorageError,
)
from repro.storage.trace import shapes_identical

from tests.helpers import make_db

RECORDS = make_records(40, 16)


@pytest.fixture
def warm_db():
    db = make_db(num_records=40, reserve_fraction=0.2, seed=404)
    for i in range(30):
        db.query(i % 40)
    db.update(5, b"edited-snap")
    new_id = db.insert(b"inserted-snap")
    db.delete(9)  # after the insert, so the insert cannot reuse id 9
    db._snapshot_test_new_id = new_id
    return db


class TestRoundtrip:
    def test_restore_preserves_every_payload(self, warm_db, tmp_path):
        save_snapshot(warm_db, str(tmp_path))
        restored = load_snapshot(str(tmp_path), seed=1)
        for page_id in range(40):
            if page_id == 9:
                continue
            expected = (b"edited-snap" if page_id == 5
                        else RECORDS[page_id])
            assert restored.query(page_id) == expected
        assert restored.query(warm_db._snapshot_test_new_id) == (
            b"inserted-snap"
        )

    def test_restore_preserves_deletions(self, warm_db, tmp_path):
        save_snapshot(warm_db, str(tmp_path))
        restored = load_snapshot(str(tmp_path), seed=2)
        with pytest.raises(PageDeletedError):
            restored.query(9)

    def test_restore_preserves_round_robin_pointer(self, warm_db, tmp_path):
        save_snapshot(warm_db, str(tmp_path))
        restored = load_snapshot(str(tmp_path), seed=3)
        assert restored.engine.next_block_index == warm_db.engine.next_block_index
        assert restored.engine.request_count == warm_db.engine.request_count

    def test_restored_database_is_consistent(self, warm_db, tmp_path):
        save_snapshot(warm_db, str(tmp_path))
        restored = load_snapshot(str(tmp_path), seed=4)
        restored.consistency_check()

    def test_restored_database_keeps_operating(self, warm_db, tmp_path):
        save_snapshot(warm_db, str(tmp_path))
        restored = load_snapshot(str(tmp_path), seed=5)
        for i in range(40):
            if i != 9:
                restored.query(i)
        restored.update(2, b"post-restore")
        assert restored.query(2) == b"post-restore"
        restored.consistency_check()
        # Request numbering continues from the snapshot, so compare shapes
        # over the post-restore request indices only.
        first = warm_db.engine.request_count
        assert shapes_identical(
            restored.trace, first, restored.engine.request_count - 1
        )

    def test_snapshot_of_restored_database(self, warm_db, tmp_path):
        first = tmp_path / "a"
        second = tmp_path / "b"
        save_snapshot(warm_db, str(first))
        middle = load_snapshot(str(first), seed=6)
        middle.query(1)
        save_snapshot(middle, str(second))
        final = load_snapshot(str(second), seed=7)
        assert final.query(4) == RECORDS[4]


class TestSecurity:
    def test_wrong_master_key_rejected(self, warm_db, tmp_path):
        save_snapshot(warm_db, str(tmp_path))
        with pytest.raises(AuthenticationError):
            load_snapshot(str(tmp_path), master_key=b"wrong key", seed=8)

    def test_tampered_frames_detected_on_use(self, warm_db, tmp_path):
        save_snapshot(warm_db, str(tmp_path))
        frames = tmp_path / "frames.bin"
        data = bytearray(frames.read_bytes())
        data[50] ^= 0xFF
        frames.write_bytes(bytes(data))
        restored = load_snapshot(str(tmp_path), seed=9)
        with pytest.raises(AuthenticationError):
            for i in range(40):
                if i != 9:
                    restored.query(i)

    def test_tampered_sealed_state_rejected(self, warm_db, tmp_path):
        save_snapshot(warm_db, str(tmp_path))
        sealed = tmp_path / "sealed.bin"
        data = bytearray(sealed.read_bytes())
        data[10] ^= 1
        sealed.write_bytes(bytes(data))
        with pytest.raises(AuthenticationError):
            load_snapshot(str(tmp_path), seed=10)

    def test_manifest_contains_no_secrets(self, warm_db, tmp_path):
        save_snapshot(warm_db, str(tmp_path))
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert "key" not in json.dumps(manifest).lower().replace(
            "cipher_backend", ""
        )
        assert set(manifest) == {
            "format", "num_user_pages", "reserve_pages", "cache_capacity",
            "block_size", "num_locations", "page_capacity", "target_c",
            "frame_size", "cipher_backend",
        }


class TestInteractions:
    def test_snapshot_during_rotation_roundtrips(self, warm_db, tmp_path):
        warm_db.rotate_master_key(b"next-key")
        remaining = warm_db.engine.rotation_requests_remaining
        assert remaining is not None and remaining > 0
        # A format-2 snapshot carries the legacy key and the rotation
        # countdown, so a mid-rotation save is no longer refused.
        save_snapshot(warm_db, str(tmp_path))
        restored = load_snapshot(str(tmp_path), master_key=b"next-key", seed=20)
        assert restored.cop.rotation_in_progress
        assert restored.engine.rotation_requests_remaining == remaining
        assert restored.query(0) == RECORDS[0]
        # The restored replica finishes the rotation on its own.
        for _ in range(restored.params.scan_period):
            restored.touch()
        assert not restored.cop.rotation_in_progress
        assert restored.query(1) == RECORDS[1]

    def test_mid_rotation_restore_requires_new_key(self, warm_db, tmp_path):
        warm_db.rotate_master_key(b"next-key")
        save_snapshot(warm_db, str(tmp_path))
        # The pre-rotation key no longer opens the snapshot cache blob.
        with pytest.raises(AuthenticationError):
            load_snapshot(str(tmp_path), master_key=b"repro-master-key",
                          seed=20)

    def test_restore_with_rollback_protection(self, warm_db, tmp_path):
        from repro.storage.merkle import AuthenticatedDisk

        save_snapshot(warm_db, str(tmp_path))
        restored = load_snapshot(str(tmp_path), seed=21,
                                 rollback_protection=True)
        assert isinstance(restored.disk, AuthenticatedDisk)
        assert restored.query(0) == RECORDS[0]
        # A replay against the restored instance is caught.
        stale = restored.disk._inner._frames[0]
        for _ in range(restored.params.scan_period):
            restored.touch()
        restored.disk._inner._frames[0] = stale
        with pytest.raises(AuthenticationError, match="stale"):
            for _ in range(restored.params.scan_period):
                restored.touch()


class TestValidation:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_snapshot(str(tmp_path / "nope"))

    def test_truncated_frames(self, warm_db, tmp_path):
        save_snapshot(warm_db, str(tmp_path))
        frames = tmp_path / "frames.bin"
        frames.write_bytes(frames.read_bytes()[:-1])
        with pytest.raises(StorageError):
            load_snapshot(str(tmp_path), seed=11)

    def test_bad_format_version(self, warm_db, tmp_path):
        save_snapshot(warm_db, str(tmp_path))
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError):
            load_snapshot(str(tmp_path), seed=12)


class TestReshuffleSidecar:
    def test_sidecar_written_only_while_epoch_active(self, warm_db, tmp_path):
        from repro.core.snapshot import resume_reshuffle

        sidecar = tmp_path / "reshuffle.sealed"
        save_snapshot(warm_db, str(tmp_path))
        assert not sidecar.exists()

        driver = warm_db.begin_reshuffle(batch_size=8)
        driver.step()
        save_snapshot(warm_db, str(tmp_path))
        assert sidecar.exists()

        # A later save without an active epoch removes the stale sidecar.
        driver.run()
        save_snapshot(warm_db, str(tmp_path))
        assert not sidecar.exists()

    def test_resume_without_sidecar_returns_none(self, warm_db, tmp_path):
        from repro.core.snapshot import resume_reshuffle

        save_snapshot(warm_db, str(tmp_path))
        restored = load_snapshot(str(tmp_path), seed=23)
        assert resume_reshuffle(restored, str(tmp_path)) is None
        assert restored.reshuffle is None

    def test_resume_continues_the_epoch(self, warm_db, tmp_path):
        from repro.core.snapshot import resume_reshuffle

        digest = warm_db.content_digest()
        driver = warm_db.begin_reshuffle(batch_size=8)
        driver.step()
        save_snapshot(warm_db, str(tmp_path))
        frontier = driver.frontier

        restored = load_snapshot(str(tmp_path), seed=24)
        resumed = resume_reshuffle(restored, str(tmp_path))
        assert resumed is restored.reshuffle
        assert resumed.active and resumed.frontier == frontier
        resumed.run()
        restored.consistency_check()
        assert restored.content_digest() == digest

    def test_save_refused_with_pending_reshuffle_record(self, warm_db,
                                                        tmp_path):
        from repro.core.journal import MemoryJournal
        from repro.shuffle.online import ReshuffleIntent

        driver = warm_db.begin_reshuffle(batch_size=8,
                                         journal=MemoryJournal())
        driver.step()
        intent = ReshuffleIntent(epoch=driver.epoch,
                                 frontier_before=driver.frontier,
                                 frontier_after=driver.frontier + 8)
        driver.journal.write(driver._suite.encrypt_page(intent.encode()))
        with pytest.raises(ConfigurationError, match="reshuffle"):
            save_snapshot(warm_db, str(tmp_path))
        driver.recover()
        save_snapshot(warm_db, str(tmp_path))
