"""Crash mid-reshuffle drill: kill during a comparator batch, roll forward.

The online reshuffler's compute → intend → apply discipline is exercised
the way :mod:`tests.test_crash_restart` exercises the engine's: a
file-backed database is killed by a :class:`SimulatedCrash` part-way
through a batch write-back (torn prefix on disk, full intent in the
reshuffler's own :class:`~repro.core.journal.FileJournal`), the process
"restarts" from the mid-epoch snapshot + sidecar, and the surviving
journal record is rolled forward — restoring a consistent epoch with no
torn frames, at exactly the post-batch frontier.
"""

from __future__ import annotations

import pytest

from tests.helpers import make_db
from tests.test_online_reshuffle import assert_batcher_order
from repro.core.journal import FileJournal
from repro.core.snapshot import load_snapshot, resume_reshuffle, save_snapshot
from repro.faults import (
    SITE_DISK_WRITE,
    FaultInjector,
    FaultyDiskStore,
    SimulatedCrash,
    crash_after_writes,
)
from repro.storage.filedisk import FileDiskStore

SEED = 41


def faulty_file_factory(path, injector):
    def build(num_locations, frame_size, timing, clock, trace):
        return FaultyDiskStore(
            FileDiskStore(path, num_locations, frame_size,
                          timing=timing, clock=clock, trace=trace),
            injector,
        )

    return build


class TestCrashMidReshuffle:
    def _build(self, tmp_path, injector):
        return make_db(
            seed=SEED,
            journal=FileJournal(str(tmp_path / "engine.jnl")),
            disk_factory=faulty_file_factory(
                str(tmp_path / "pages.bin"), injector
            ),
        )

    def _restart(self, tmp_path, snap_dir):
        db = load_snapshot(
            str(snap_dir), seed=SEED + 1,
            journal=FileJournal(str(tmp_path / "engine.jnl")),
        )
        assert db.recover().action == "clean"
        driver = resume_reshuffle(
            db, str(snap_dir),
            journal=FileJournal(str(tmp_path / "reshuffle.jnl")),
        )
        assert driver is not None and driver.active
        return db, driver

    def test_kill_mid_batch_rolls_forward(self, tmp_path):
        injector = FaultInjector(seed=3)
        db = self._build(tmp_path, injector)
        digest = db.content_digest()
        driver = db.begin_reshuffle(
            batch_size=8,
            journal=FileJournal(str(tmp_path / "reshuffle.jnl")),
        )
        driver.step()
        driver.step()
        snap_dir = tmp_path / "snap"
        save_snapshot(db, str(snap_dir))
        frontier_at_snapshot = driver.frontier

        # Kill three frames into the next batch's write-back: the journal
        # record is durable, the disk holds a torn prefix.
        injector.add(crash_after_writes(
            injector.frames_seen(SITE_DISK_WRITE) + 3
        ))
        with pytest.raises(SimulatedCrash):
            driver.step()
        del db, driver  # the process is dead

        db2, driver2 = self._restart(tmp_path, snap_dir)
        assert driver2.frontier == frontier_at_snapshot
        assert driver2.recover() == "replayed"
        assert driver2.frontier == frontier_at_snapshot + 8
        assert driver2.counters.get("recovery.replayed") == 1

        driver2.run()
        assert not driver2.active
        # The replay advanced the frontier without consuming comparator
        # units; the rest of the epoch must still run the canonical
        # network tail from the post-replay frontier (not a stream shifted
        # back by the replayed batch) — the finished layout is sorted by
        # the epoch's tags.
        assert_batcher_order(db2, driver2)
        db2.consistency_check()  # decrypts every frame: no torn ciphertext
        assert db2.content_digest() == digest
        assert db2.query(5) == make_db(seed=SEED).query(5)
        db2.close()

    def test_kill_before_first_frame_still_replays(self, tmp_path):
        injector = FaultInjector(seed=3)
        db = self._build(tmp_path, injector)
        digest = db.content_digest()
        driver = db.begin_reshuffle(
            batch_size=8,
            journal=FileJournal(str(tmp_path / "reshuffle.jnl")),
        )
        driver.step()
        snap_dir = tmp_path / "snap"
        save_snapshot(db, str(snap_dir))

        injector.add(crash_after_writes(
            injector.frames_seen(SITE_DISK_WRITE)
        ))
        with pytest.raises(SimulatedCrash):
            driver.step()
        del db, driver

        db2, driver2 = self._restart(tmp_path, snap_dir)
        assert driver2.recover() == "replayed"
        driver2.run()
        db2.consistency_check()
        assert db2.content_digest() == digest
        db2.close()

    def test_kill_between_batches_resumes_clean(self, tmp_path):
        injector = FaultInjector(seed=3)
        db = self._build(tmp_path, injector)
        digest = db.content_digest()
        driver = db.begin_reshuffle(
            batch_size=8,
            journal=FileJournal(str(tmp_path / "reshuffle.jnl")),
        )
        driver.step()
        driver.step()
        snap_dir = tmp_path / "snap"
        save_snapshot(db, str(snap_dir))
        frontier = driver.frontier
        del db, driver  # killed in the idle gap: journal slot is empty

        db2, driver2 = self._restart(tmp_path, snap_dir)
        assert driver2.recover() == "clean"
        assert driver2.frontier == frontier
        driver2.run()
        db2.consistency_check()
        assert db2.content_digest() == digest
        db2.close()

    def test_kill_mid_batch_during_key_rotation(self, tmp_path):
        injector = FaultInjector(seed=3)
        db = self._build(tmp_path, injector)
        digest = db.content_digest()
        driver = db.begin_reshuffle(
            batch_size=8, rotate_to=b"rotated-master-key",
            journal=FileJournal(str(tmp_path / "reshuffle.jnl")),
        )
        driver.step()
        snap_dir = tmp_path / "snap"
        save_snapshot(db, str(snap_dir))  # mid-rotation: format-2 state

        injector.add(crash_after_writes(
            injector.frames_seen(SITE_DISK_WRITE) + 2
        ))
        with pytest.raises(SimulatedCrash):
            driver.step()
        del db, driver

        db2 = load_snapshot(
            str(snap_dir), master_key=b"rotated-master-key", seed=SEED + 1,
            journal=FileJournal(str(tmp_path / "engine.jnl")),
        )
        assert db2.cop.rotation_in_progress  # legacy key restored
        driver2 = resume_reshuffle(
            db2, str(snap_dir),
            journal=FileJournal(str(tmp_path / "reshuffle.jnl")),
        )
        assert driver2.recover() == "replayed"
        driver2.run()
        assert not db2.cop.rotation_in_progress  # sweep finished it
        db2.consistency_check()
        assert db2.content_digest() == digest
        db2.close()
