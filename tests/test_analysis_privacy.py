"""Closed-form privacy model (Eqs. 1-5) internal consistency."""

from __future__ import annotations

import math

import pytest

from repro.analysis.privacy import (
    empirical_ratio,
    landing_entropy_bits,
    location_landing_distribution,
    max_landing_probability,
    min_landing_probability,
    offset_landing_probabilities,
    privacy_ratio,
    sanity_check,
    total_variation_from_uniform,
)
from repro.core.params import achieved_privacy
from repro.errors import ConfigurationError


class TestOffsetDistribution:
    def test_sums_to_one(self):
        probs = location_landing_distribution(120, 10, 6)
        assert sum(probs) == pytest.approx(1.0)

    def test_monotone_decay(self):
        probs = offset_landing_probabilities(120, 10, 6)
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_decay_rate_is_geometric(self):
        m = 10
        probs = offset_landing_probabilities(120, m, 6)
        for a, b in zip(probs, probs[1:]):
            assert b / a == pytest.approx(1 - 1 / m)

    def test_extremes(self):
        n, m, k = 120, 10, 6
        probs = offset_landing_probabilities(n, m, k)
        assert max_landing_probability(n, m, k) == pytest.approx(probs[0])
        assert min_landing_probability(n, m, k) == pytest.approx(probs[-1])

    def test_uniform_within_block(self):
        distribution = location_landing_distribution(24, 8, 4)
        for block in range(6):
            block_probs = distribution[block * 4 : (block + 1) * 4]
            assert len(set(block_probs)) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            offset_landing_probabilities(10, 8, 3)  # n % k != 0
        with pytest.raises(ConfigurationError):
            offset_landing_probabilities(12, 1, 3)


class TestPrivacyRatio:
    def test_equals_achieved_privacy(self):
        for n, m, k in ((120, 10, 6), (1000, 50, 10), (64, 4, 8)):
            assert privacy_ratio(n, m, k) == pytest.approx(achieved_privacy(n, m, k))

    def test_ratio_one_when_full_scan(self):
        assert privacy_ratio(16, 8, 16) == pytest.approx(1.0)

    def test_sanity_check_passes(self):
        sanity_check(120, 10, 6)
        sanity_check(1024, 64, 16)


class TestInformationMeasures:
    def test_entropy_below_uniform_ceiling(self):
        n = 128
        entropy = landing_entropy_bits(n, 8, 8)
        assert entropy < math.log2(n)
        assert entropy > 0

    def test_entropy_approaches_ceiling_with_large_cache(self):
        n = 128
        low_m = landing_entropy_bits(n, 4, 8)
        high_m = landing_entropy_bits(n, 4096, 8)
        assert high_m > low_m
        assert math.log2(n) - high_m < 0.01

    def test_tv_distance_bounds(self):
        tv = total_variation_from_uniform(120, 10, 6)
        assert 0 <= tv < 1

    def test_tv_shrinks_with_cache(self):
        small = total_variation_from_uniform(120, 5, 6)
        large = total_variation_from_uniform(120, 500, 6)
        assert large < small

    def test_tv_zero_for_full_scan(self):
        assert total_variation_from_uniform(24, 8, 24) == pytest.approx(0.0)


class TestEmpiricalRatio:
    def test_uniform_counts(self):
        assert empirical_ratio([100, 100, 100], smoothing=0) == 1.0

    def test_smoothing_handles_zero(self):
        assert empirical_ratio([10, 0], smoothing=1.0) == 11.0

    def test_zero_without_smoothing_rejected(self):
        with pytest.raises(ConfigurationError):
            empirical_ratio([10, 0], smoothing=0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            empirical_ratio([])
