"""Cluster tier tests: membership policy, routed serving, failover drills.

The integration classes stand up a real router over real backend
servers (loopback TCP end to end) and drive them through the failure
modes DESIGN.md §13 promises to survive: backend death mid-session,
lost backend replies, rolling restarts, and full-cluster outage.
"""

from __future__ import annotations

import contextlib
import time

import pytest

from tests.helpers import make_db
from repro.baselines import make_records
from repro.cluster import (
    BackendHandle,
    BackendSpec,
    ClusterMembership,
    ClusterRouter,
    RouterThread,
    build_cluster,
    connect_replication,
)
from repro.errors import (
    ConfigurationError,
    DegradedServiceError,
    TransientChannelError,
)
from repro.faults import ChaosProxy, ChaosProxyThread, FaultInjector, \
    drop_replies
from repro.net import NetworkClient
from repro.obs import MetricsRegistry
from repro.service.frontend import SESSION_RANDOM, QueryFrontend

RECORDS = make_records(40, 16)


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# Membership policy (pure, no sockets)
# ---------------------------------------------------------------------------


class TestBackendSpec:
    def test_parse(self):
        spec = BackendSpec.parse("10.0.0.1:7000")
        assert (spec.host, spec.port) == ("10.0.0.1", 7000)
        assert spec.address == "10.0.0.1:7000"

    @pytest.mark.parametrize("text", ["nohost", ":123", "host:", "host:abc"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ConfigurationError):
            BackendSpec.parse(text)


class TestMembershipPolicy:
    def specs(self, n=3):
        return [BackendSpec("127.0.0.1", 7000 + i) for i in range(n)]

    def test_needs_backends_and_unique_addresses(self):
        with pytest.raises(ConfigurationError):
            ClusterMembership([])
        with pytest.raises(ConfigurationError):
            ClusterMembership(self.specs(2) + [self.specs(1)[0]])

    def test_eject_needs_consecutive_failures(self):
        membership = ClusterMembership(self.specs(), eject_after=3)
        address = self.specs()[0].address
        membership.record_probe_failure(address)
        membership.record_probe_failure(address)
        membership.record_probe_ok(address, False, 0)  # streak broken
        membership.record_probe_failure(address)
        membership.record_probe_failure(address)
        assert membership.member(address).up
        membership.record_probe_failure(address)
        assert not membership.member(address).up
        assert membership.up_count == 2

    def test_readmit_needs_consecutive_successes(self):
        membership = ClusterMembership(self.specs(), eject_after=1,
                                       readmit_after=2)
        address = self.specs()[0].address
        membership.record_probe_failure(address)
        assert not membership.member(address).up
        membership.record_probe_ok(address, False, 0)
        assert not membership.member(address).up  # one success is a flap
        membership.record_probe_ok(address, False, 0)
        assert membership.member(address).up
        assert membership.at_full_strength

    def test_mark_down_is_immediate(self):
        membership = ClusterMembership(self.specs(), eject_after=5)
        address = self.specs()[1].address
        membership.mark_down(address)
        assert not membership.member(address).up

    def test_pick_prefers_least_loaded_and_skips_unroutable(self):
        membership = ClusterMembership(self.specs())
        a, b, c = [spec.address for spec in self.specs()]
        membership.pin(a)
        membership.pin(a)
        membership.pin(b)
        assert membership.pick().address == c
        membership.mark_down(c)
        assert membership.pick().address == b
        membership.record_probe_ok(b, True, 1)  # draining: healthy, no picks
        assert membership.pick().address == a
        assert not membership.at_full_strength

    def test_pick_honours_exclusions(self):
        membership = ClusterMembership(self.specs(2))
        a, b = [spec.address for spec in self.specs(2)]
        assert membership.pick(exclude={a}).address == b
        assert membership.pick(exclude={a, b}) is None

    def test_gauges_track_strength(self):
        registry = MetricsRegistry()
        membership = ClusterMembership(self.specs(), metrics=registry)
        membership.mark_down(self.specs()[0].address)
        gauges = registry.snapshot()["gauges"]
        assert gauges["cluster.members.total"] == 3
        assert gauges["cluster.members.up"] == 2


# ---------------------------------------------------------------------------
# Routed serving over real sockets
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def cluster(tmp_path, n=2, registry=None, router_kw=None, replicated=False):
    handles = build_cluster(RECORDS, n, str(tmp_path), metrics=registry,
                            page_capacity=16, target_c=2.0)
    try:
        for handle in handles:
            handle.start()
        if replicated:
            connect_replication(handles)
        router = ClusterRouter(
            [handle.spec for handle in handles],
            probe_interval=0.05, probe_timeout=1.0, eject_after=2,
            readmit_after=2, connect_timeout=1.0, backend_timeout=5.0,
            metrics=registry, **(router_kw or {}),
        )
        with RouterThread(router) as thread:
            yield handles, router, thread
    finally:
        for handle in handles:
            handle.kill()
        for handle in handles:
            handle.db.close()


class TestRoutedServing:
    def test_sessions_balance_and_serve(self, tmp_path):
        with cluster(tmp_path, n=2) as (handles, router, thread):
            clients = [NetworkClient(thread.host, thread.port, timeout=5.0)
                       for _ in range(4)]
            try:
                for index, client in enumerate(clients):
                    assert client.query(index) == RECORDS[index]
                per_member = [state.pinned
                              for state in router.membership.members]
                assert sorted(per_member) == [2, 2]
            finally:
                for client in clients:
                    client.close()

    def test_bye_unpins(self, tmp_path):
        with cluster(tmp_path, n=2) as (handles, router, thread):
            with NetworkClient(thread.host, thread.port,
                               timeout=5.0) as client:
                client.query(1)
            assert wait_until(lambda: sum(
                state.pinned for state in router.membership.members) == 0)

    def test_router_answers_probes_itself(self, tmp_path):
        import socket

        from repro.net.framing import (
            Ping,
            Pong,
            decode_net_message,
            encode_net_message,
            read_frame_sock,
            write_frame_sock,
        )

        with cluster(tmp_path, n=2) as (handles, router, thread):
            sock = socket.create_connection((thread.host, thread.port),
                                            timeout=5.0)
            try:
                write_frame_sock(sock, encode_net_message(Ping()))
                pong = decode_net_message(read_frame_sock(sock))
                assert isinstance(pong, Pong)
                assert pong.draining is False
            finally:
                sock.close()


class TestHealthGating:
    def test_dead_member_ejected_then_readmitted(self, tmp_path):
        with cluster(tmp_path, n=2) as (handles, router, thread):
            victim = handles[0]
            address = victim.spec.address
            victim.kill()
            assert wait_until(
                lambda: not router.membership.member(address).up)
            assert router.membership.up_count == 1
            victim.restart()
            assert wait_until(lambda: router.membership.at_full_strength)

    def test_new_sessions_avoid_ejected_member(self, tmp_path):
        with cluster(tmp_path, n=2) as (handles, router, thread):
            victim = handles[0]
            victim.kill()
            assert wait_until(
                lambda: not router.membership.member(
                    victim.spec.address).up)
            with NetworkClient(thread.host, thread.port,
                               timeout=5.0) as client:
                assert client.query(2) == RECORDS[2]
                assert (router._pins[client.session_id]
                        == handles[1].spec.address)


class TestFailover:
    def test_mid_session_backend_death(self, tmp_path):
        """Kill the pinned backend under an open session: the next query
        fails over to the replica (which adopts the session) without the
        client noticing."""
        with cluster(tmp_path, n=2) as (handles, router, thread):
            with NetworkClient(thread.host, thread.port,
                               timeout=5.0) as client:
                assert client.query(3) == RECORDS[3]
                pinned = router._pins[client.session_id]
                victim = next(h for h in handles
                              if h.spec.address == pinned)
                survivor = next(h for h in handles
                                if h.spec.address != pinned)
                victim.kill()
                assert client.query(4) == RECORDS[4]
                assert client.query(5) == RECORDS[5]
                # The router, not the client, absorbed the failure.
                assert client.counters.get("reconnects") == 0
                assert router.counters.get("failovers") >= 1
                assert (router._pins[client.session_id]
                        == survivor.spec.address)
                assert survivor.frontend.counters.get("sessions.adopted") == 1

    def test_exactly_once_when_reply_lost_after_apply(self, tmp_path):
        """The acknowledged-but-unreplied window: backend A applies an
        update and caches the reply, but the reply never reaches the
        router.  Failover retransmits to B, whose view of the shared
        reply cache answers without re-applying — and B already holds
        the write via the sealed replication stream, so the failed-over
        session reads its own write from the survivor."""
        handles = build_cluster(RECORDS, 2, str(tmp_path),
                                page_capacity=16, target_c=2.0)
        try:
            for handle in handles:
                handle.start()
            # Interpose a chaos proxy between the router and backend 0:
            # the router believes the proxy IS the member (so the proxy
            # address is also backend 0's replication origin identity).
            proxy = ChaosProxy(handles[0].host, handles[0].port,
                               FaultInjector(seed=13))
            with ChaosProxyThread(proxy) as chaos:
                connect_replication(
                    handles,
                    origins=[f"{chaos.host}:{chaos.port}",
                             handles[1].spec.address],
                )
                specs = [BackendSpec(chaos.host, chaos.port),
                         handles[1].spec]
                router = ClusterRouter(
                    specs, probe_interval=30.0, probe_timeout=1.0,
                    connect_timeout=1.0, backend_timeout=1.0,
                )
                with RouterThread(router) as thread:
                    # Equal load: the first session pins to the first
                    # configured member — the proxied one.
                    with NetworkClient(thread.host, thread.port,
                                       timeout=5.0) as client:
                        assert client.query(1) == RECORDS[1]
                        assert (router._pins[client.session_id]
                                == specs[0].address)
                        engines = [h.db.engine for h in handles]
                        before = sum(e.request_count for e in engines)
                        # Arm the drop now, after the warmup frames are
                        # through: the next server->client frame through
                        # the proxy is the update's acknowledgement.
                        proxy.injector = FaultInjector(seed=13, plans=[
                            drop_replies(times=1),
                        ])
                        client.update(6, b"landed once")
                        after = sum(e.request_count for e in engines)
                        # Exactly one application *per member* despite
                        # the failover retransmission: the origin served
                        # the update, its peer applied the replicated
                        # record, and the retransmit was answered from
                        # the shared reply cache without re-executing.
                        assert after == before + 2
                        assert (handles[1].frontend.counters
                                .get("requests.duplicate") == 1)
                        assert router.counters.get("failovers") == 1
                        assert router.counters.get("retransmits") == 1
                        # The failed-over session keeps serving reads.
                        assert client.query(1) == RECORDS[1]
                # Quiesce (no applier worker mutating an engine), then
                # check the write landed on BOTH members: the shared
                # reply cache gave single application and a preserved
                # ACK, and the sealed replication stream gave
                # cross-replica write visibility (DESIGN.md §13).
                for handle in handles:
                    handle.kill()
                assert handles[0].db.query(6) == b"landed once"
                assert handles[1].db.query(6) == b"landed once"
        finally:
            for handle in handles:
                handle.kill()
            for handle in handles:
                handle.db.close()

    def test_whole_cluster_down_is_retryable_refusal(self, tmp_path):
        with cluster(tmp_path, n=2) as (handles, router, thread):
            with NetworkClient(thread.host, thread.port,
                               timeout=5.0) as client:
                client.query(1)
                for handle in handles:
                    handle.kill()
                with pytest.raises(DegradedServiceError) as excinfo:
                    client.query(2)
                assert excinfo.value.retry_after > 0
                # Recovery: both members return, service resumes on the
                # same session.
                for handle in handles:
                    handle.restart()
                assert wait_until(
                    lambda: router.membership.at_full_strength)
                assert client.query(2) == RECORDS[2]


class TestRollingRestart:
    def test_drain_one_at_a_time_zero_errors(self, tmp_path):
        """Roll every backend while a session keeps querying: drained
        members shed, the router migrates the session, and the client
        never sees an error."""
        with cluster(tmp_path, n=2) as (handles, router, thread):
            with NetworkClient(thread.host, thread.port,
                               timeout=5.0) as client:
                assert client.query(0) == RECORDS[0]
                for handle in handles:
                    handle.drain()
                    for page_id in range(1, 5):
                        assert client.query(page_id) == RECORDS[page_id]
                    handle.restart()
                    assert wait_until(
                        lambda: router.membership.at_full_strength)
                # The whole roll was invisible: no client-side recovery.
                assert client.counters.get("reconnects") == 0


class TestClientReconnectThroughRouter:
    def test_client_redial_resumes_via_router(self, tmp_path):
        """A client that loses its connection *to the router* re-dials
        and RESUMEs; the router routes the resume to the pinned member
        (or adopts elsewhere)."""
        with cluster(tmp_path, n=2) as (handles, router, thread):
            client = NetworkClient(thread.host, thread.port, timeout=5.0)
            try:
                assert client.query(7) == RECORDS[7]
                # Simulate a NAT reset between client and router.
                client._teardown()
                assert client.query(8) == RECORDS[8]
                assert client.counters.get("reconnects") == 1
                assert client.counters.get("retransmits") == 0
            finally:
                with contextlib.suppress(TransientChannelError):
                    client.close()


class TestSessionIdCollision:
    """Session ids must be unique cluster-wide.

    They derive from the database's seeded RNG tree, and cluster members
    deliberately share a seed (identical data) — so unsalted frontends
    issue the *same* id sequence.  The ``session_salt`` diversifies the
    stream; the router's collision guard is the backstop when an
    operator deploys without one.
    """

    def test_same_seed_frontends_collide_without_salt(self):
        db_a, db_b = make_db(num_records=16), make_db(num_records=16)
        try:
            fe_a = QueryFrontend(db_a, session_id_mode=SESSION_RANDOM)
            fe_b = QueryFrontend(db_b, session_id_mode=SESSION_RANDOM)
            first_a = fe_a.open_session()
            assert fe_b.open_session() == first_a  # the hazard, verbatim
            salted = QueryFrontend(db_b, session_id_mode=SESSION_RANDOM,
                                   session_salt="member-1")
            assert salted.open_session() != first_a
        finally:
            db_a.close()
            db_b.close()

    def test_router_guard_sheds_colliding_welcome(self):
        """Two unsalted same-seed members behind the router: the second
        client's HELLO lands on the other member, which issues the same
        id.  The router must shed it (never share an id — it is the key
        input), close the duplicate, and serve the retried HELLO."""
        dbs = [make_db(num_records=16), make_db(num_records=16)]
        handles = [
            BackendHandle(db, QueryFrontend(
                db, session_id_mode=SESSION_RANDOM))
            for db in dbs
        ]
        try:
            for handle in handles:
                handle.start()
            router = ClusterRouter(
                [handle.spec for handle in handles],
                probe_interval=0.05, probe_timeout=1.0,
                connect_timeout=1.0, backend_timeout=5.0,
            )
            with RouterThread(router) as thread:
                first = NetworkClient(thread.host, thread.port, timeout=5.0)
                assert first.query(1) is not None
                with pytest.raises(DegradedServiceError):
                    NetworkClient(thread.host, thread.port, timeout=5.0)
                assert router.counters.get("session_collisions") == 1
                # The duplicate session was torn down on its member, not
                # leaked with a key another client is using.
                assert wait_until(lambda: sum(
                    handle.frontend.session_count for handle in handles
                ) == 1)
                # A retried HELLO draws that member's next id and serves.
                second = NetworkClient(thread.host, thread.port, timeout=5.0)
                assert second.session_id != first.session_id
                assert second.query(2) is not None
                first.close()
                second.close()
        finally:
            for handle in handles:
                handle.kill()
            for db in dbs:
                db.close()


class TestBackendAdoption:
    def test_plain_server_refuses_unknown_resume(self):
        """Without adopt_sessions a RESUME for an unknown id must be
        refused — adoption is a cluster-only trust posture."""
        import socket

        from repro.net import PirServer, ServerThread
        from repro.net.framing import (
            NetRefused,
            Resume,
            decode_net_message,
            encode_net_message,
            read_frame_sock,
            write_frame_sock,
        )

        db = make_db(num_records=16)
        try:
            frontend = QueryFrontend(db, session_id_mode=SESSION_RANDOM)
            with ServerThread(PirServer(frontend)) as handle:
                sock = socket.create_connection(
                    (handle.host, handle.port), timeout=5.0)
                try:
                    write_frame_sock(
                        sock, encode_net_message(Resume(0xDEAD)))
                    answer = decode_net_message(read_frame_sock(sock))
                    assert isinstance(answer, NetRefused)
                    assert "unknown session" in answer.refusal.reason
                finally:
                    sock.close()
            assert frontend.session_count == 0
        finally:
            db.close()

    def test_adoption_rejects_session_zero(self):
        db = make_db(num_records=16)
        try:
            frontend = QueryFrontend(db, session_id_mode=SESSION_RANDOM)
            from repro.errors import ProtocolError

            with pytest.raises(ProtocolError):
                frontend.adopt_session(0)
        finally:
            db.close()


class TestSealedReplication:
    """The cross-replica write-divergence fix, end to end (DESIGN.md
    §13): sealed write replication between members, the router's
    read-your-writes failover gate, and restart catch-up."""

    def test_failover_reads_own_write_then_restart_converges(self, tmp_path):
        """Kill the pinned member right after an acknowledged write: the
        failed-over session must read that write from the survivor, and
        the restarted member must replay the tail it missed until both
        engines hold identical trusted content."""
        with cluster(tmp_path, n=2, replicated=True) as (
                handles, router, thread):
            with NetworkClient(thread.host, thread.port,
                               timeout=5.0) as client:
                assert client.query(3) == RECORDS[3]
                client.update(6, b"replicated")
                pinned = router._pins[client.session_id]
                victim = next(h for h in handles
                              if h.spec.address == pinned)
                survivor = next(h for h in handles
                                if h.spec.address != pinned)
                victim.kill()
                # Read-your-writes across failover: the survivor applied
                # the sealed record before the update was acknowledged
                # (semi-sync), the router's gate verified it, and the
                # session sees its own write.
                assert client.query(6) == b"replicated"
                assert router.counters.get("ryw.checks") >= 1
                assert router.counters.get("ryw.rejected") == 0
                # More writes land while the victim is down...
                client.update(7, b"while-down")
                # ...then it returns and replays the missed tail from
                # the survivor's backlog.
                victim.restart()
                assert wait_until(
                    lambda: victim.repl_applier.applied_for(
                        survivor.spec.address)
                    >= survivor.repl_log.last_seq)
            # Quiesce both members (no applier worker mutating an
            # engine), then compare: the replicas converge on identical
            # trusted content even though their physical layouts (and
            # RNG lineages) differ.
            for handle in handles:
                handle.kill()
            assert victim.db.query(6) == b"replicated"
            assert victim.db.query(7) == b"while-down"
            assert (victim.db.content_digest()
                    == survivor.db.content_digest())

    def test_failover_refuses_stale_replica(self, tmp_path):
        """The heart of the bugfix: a replica that has not applied the
        session's acknowledged writes must NOT adopt the session.  The
        router refuses (retryably) instead of serving a stale read."""
        with cluster(tmp_path, n=2, replicated=True,
                     router_kw={"ryw_timeout": 0.3}) as (
                         handles, router, thread):
            with NetworkClient(thread.host, thread.port,
                               timeout=5.0) as client:
                assert client.query(1) == RECORDS[1]
                pinned = router._pins[client.session_id]
                victim = next(h for h in handles
                              if h.spec.address == pinned)
                # Partition the replication stream: the next write is
                # acknowledged by the origin but never reaches the peer
                # (with no *connected* peers the semi-sync wait is
                # trivially satisfied — availability over blocking).
                victim.stop_replication()
                client.update(6, b"origin only")
                victim.kill()
                # The survivor lags the session's watermark: refusing is
                # correct, serving the old page 6 would be silent data
                # loss.
                with pytest.raises(DegradedServiceError) as excinfo:
                    client.query(6)
                assert excinfo.value.retry_after > 0
                assert router.counters.get("ryw.rejected") >= 1
                # Recovery: the origin restarts, its streamer replays
                # the backlog, the peer catches up past the watermark,
                # and the same session's read then succeeds — with the
                # written value, on whichever member adopts it.
                victim.restart()
                assert wait_until(
                    lambda: router.membership.at_full_strength)

                def read_back():
                    try:
                        return client.query(6) == b"origin only"
                    except DegradedServiceError:
                        return False

                assert wait_until(read_back)

    def test_concurrent_resumes_converge_on_one_adopter(self, tmp_path):
        """Two RESUMEs racing for one session after a NAT reset must not
        be adopted by different replicas — adoption is serialized per
        session id, and both racers land on the same member."""
        import socket
        import threading

        from repro.net.framing import (
            Resume,
            Welcome,
            decode_net_message,
            encode_net_message,
            read_frame_sock,
            write_frame_sock,
        )

        with cluster(tmp_path, n=3, replicated=True) as (
                handles, router, thread):
            proxy = ChaosProxy(thread.host, thread.port,
                               FaultInjector(seed=7))
            with ChaosProxyThread(proxy) as chaos:
                client = NetworkClient(chaos.host, chaos.port, timeout=5.0)
                try:
                    assert client.query(1) == RECORDS[1]
                    client.update(6, b"raced write")
                    session_id = client.session_id
                    pinned = router._pins[session_id]
                    victim = next(h for h in handles
                                  if h.spec.address == pinned)
                    victim.kill()
                    # NAT reset between client and router: the session
                    # is unattached on both ends but stays pinned.
                    chaos.sever_all()
                    # Two recovery paths race their RESUMEs directly at
                    # the router.
                    answers = []
                    barrier = threading.Barrier(2)

                    def resume():
                        sock = socket.create_connection(
                            (thread.host, thread.port), timeout=5.0)
                        try:
                            barrier.wait(timeout=5.0)
                            write_frame_sock(
                                sock,
                                encode_net_message(Resume(session_id)))
                            answers.append(
                                decode_net_message(read_frame_sock(sock)))
                        finally:
                            sock.close()

                    racers = [threading.Thread(target=resume)
                              for _ in range(2)]
                    for racer in racers:
                        racer.start()
                    for racer in racers:
                        racer.join(timeout=10.0)
                    assert [type(a) for a in answers] == [Welcome, Welcome]
                    assert all(a.session_id == session_id for a in answers)
                    # Exactly one survivor adopted; the second racer was
                    # routed to the first one's pin.
                    survivors = [h for h in handles if h is not victim]
                    adopter = router._pins[session_id]
                    assert adopter in {h.spec.address for h in survivors}
                    assert sum(
                        h.frontend.counters.get("sessions.adopted")
                        for h in survivors) == 1
                    # The client re-dials through the proxy, resumes the
                    # same session, and reads its own write.
                    assert client.query(6) == b"raced write"
                finally:
                    with contextlib.suppress(TransientChannelError):
                        client.close()
