"""Crash-consistent write-back: journal codec, recovery, crash sweeps.

The heart of this module is the *crash-at-every-step* sweep: a seeded
workload is re-run once per possible crash point (every disk-write frame,
and every journal write), the simulated power loss is taken, recovery runs,
and the surviving database must be byte-for-byte equivalent to a fault-free
twin — including keeping the fixed 2(k+1)-frame trace shape for every
post-recovery request.
"""

from __future__ import annotations

import os
import stat

import pytest

from repro.core.journal import (
    FLAG_DELETED,
    MAP_DISK,
    FileJournal,
    MemoryJournal,
    WriteIntent,
)
from repro.core.snapshot import load_snapshot, save_snapshot
from repro.errors import (
    ConfigurationError,
    RecoveryError,
    StorageError,
    TransientStorageError,
)
from repro.faults import (
    SITE_DISK_WRITE,
    SITE_JOURNAL_WRITE,
    FaultInjector,
    FaultPlan,
    FaultyDiskStore,
    FaultyJournal,
    SimulatedCrash,
    crash_after_writes,
    transient_writes,
)
from repro.storage.disk import DiskStore
from repro.storage.page import Page
from repro.storage.trace import READ, WRITE

from tests.helpers import make_db


def faulty_factory(injector):
    def build(num_locations, frame_size, timing, clock, trace):
        return FaultyDiskStore(
            DiskStore(num_locations, frame_size, timing, clock, trace),
            injector,
        )

    return build


def logical_state(db):
    """Full logical content: page_id -> (payload, deleted), disk + cache."""
    state = {}
    for location in range(db.disk.num_locations):
        frame = db.disk.peek(location)
        assert frame is not None, f"location {location} uninitialised"
        page = db.cop.unseal(frame)  # decrypts AND authenticates
        state[page.page_id] = (page.payload, page.deleted)
    for slot in range(db.cop.cache.capacity):
        page = db.cop.cache.get(slot)
        state[page.page_id] = (page.payload, page.deleted)
    return state


def workload_ops():
    """A deterministic mixed workload: queries, updates, a delete, an insert."""
    return [
        lambda db: db.query(3),
        lambda db: db.update(5, b"crash-me"),
        lambda db: db.query(5),
        lambda db: db.delete(7),
        lambda db: db.insert(b"fresh page"),
        lambda db: db.query(0),
    ]


def run_workload(db, start=0):
    for op in workload_ops()[start:]:
        op(db)


NUM_RECORDS = 30
SEED = 99


def build_db(journal=None, injector=None, seed=SEED):
    options = {}
    if injector is not None:
        options["disk_factory"] = faulty_factory(injector)
    return make_db(num_records=NUM_RECORDS, cache_capacity=6, seed=seed,
                   journal=journal, **options)


class TestWriteIntentCodec:
    def make_intent(self):
        return WriteIntent(
            request_index=41,
            next_block=3,
            rotation_left=-1,
            block_start=24,
            extra_location=7,
            cache_puts=[(2, Page(9, b"payload")), (0, Page(1, b"", True))],
            flag_ops=[(7, FLAG_DELETED)],
            map_ops=[(9, MAP_DISK, 24), (1, MAP_DISK, 7)],
            frames=[b"\x01" * 10, b"\x02" * 10],
        )

    def test_roundtrip(self):
        intent = self.make_intent()
        decoded = WriteIntent.decode(intent.encode())
        assert decoded == intent

    def test_bad_magic_rejected(self):
        with pytest.raises(StorageError):
            WriteIntent.decode(b"XXXX" + self.make_intent().encode()[4:])

    def test_truncation_rejected(self):
        blob = self.make_intent().encode()
        for cut in (5, len(blob) // 2, len(blob) - 1):
            with pytest.raises(StorageError):
                WriteIntent.decode(blob[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(StorageError):
            WriteIntent.decode(self.make_intent().encode() + b"\x00")


class TestJournalBackends:
    def test_memory_journal_single_slot(self):
        journal = MemoryJournal()
        assert journal.read() is None
        journal.write(b"record-1")
        journal.write(b"record-2")
        assert journal.read() == b"record-2"
        journal.clear()
        assert journal.read() is None
        assert journal.writes == 2

    def test_file_journal_roundtrip(self, tmp_path):
        path = str(tmp_path / "intent.jnl")
        journal = FileJournal(path)
        assert journal.read() is None
        journal.write(b"durable record")
        # A second handle (the "restarted process") sees the record.
        assert FileJournal(path).read() == b"durable record"
        journal.clear()
        assert FileJournal(path).read() is None
        journal.clear()  # idempotent

    def test_journaled_write_costs_virtual_time(self):
        from repro.sim.clock import VirtualClock
        from repro.storage.timing import DiskTimingModel

        clock = VirtualClock()
        journal = MemoryJournal(clock=clock, timing=DiskTimingModel())
        journal.write(b"x" * 4096)
        assert clock.now > 0.0


class TestJournaledOperation:
    def test_journal_cleared_after_each_request(self):
        journal = MemoryJournal()
        db = build_db(journal=journal)
        run_workload(db)
        assert journal.read() is None
        assert not db.engine.journal_pending
        assert journal.writes == len(workload_ops())
        db.consistency_check()

    def test_journaled_matches_unjournaled_content(self):
        journaled = build_db(journal=MemoryJournal())
        run_workload(journaled)
        # Same logical content; physical layout differs because sealing the
        # journal record consumes extra nonces from the shared RNG stream.
        plain = build_db()
        run_workload(plain)
        a = {k: v for k, v in logical_state(journaled).items()}
        b = {k: v for k, v in logical_state(plain).items()}
        live = lambda s: {k: v for k, v in s.items() if not v[1]}
        assert live(a) == live(b)

    def test_journaled_run_is_deterministic(self):
        def run():
            db = build_db(journal=MemoryJournal())
            run_workload(db)
            events = [(e.op, e.location, e.count, e.request_index,
                       e.timestamp) for e in db.trace]
            return events, db.clock.now

        assert run() == run()

    def test_recover_on_clean_db_is_noop(self):
        db = build_db(journal=MemoryJournal())
        run_workload(db)
        before = logical_state(db)
        report = db.recover()
        assert report.action == "clean"
        assert logical_state(db) == before

    def test_recover_without_journal_is_noop(self):
        db = build_db()
        assert db.recover().action == "clean"


class TestCrashSweep:
    """Crash at every individual write step; recovery must roll forward."""

    def _twin_state(self):
        twin = build_db(journal=MemoryJournal())
        run_workload(twin)
        return logical_state(twin), twin.params

    def test_crash_at_every_disk_write_frame(self):
        twin_state, params = self._twin_state()
        k = params.block_size
        frames_per_request = k + 1
        setup_frames = params.num_locations
        total_frames = len(workload_ops()) * frames_per_request

        for crash_frame in range(total_frames):
            injector = FaultInjector(
                0, [crash_after_writes(setup_frames + crash_frame)]
            )
            db = build_db(journal=MemoryJournal(), injector=injector)

            crashed_at = None
            for index, op in enumerate(workload_ops()):
                try:
                    op(db)
                except SimulatedCrash:
                    crashed_at = index
                    break
            assert crashed_at == crash_frame // frames_per_request, (
                f"crash frame {crash_frame} hit the wrong request"
            )

            assert db.engine.journal_pending
            report = db.recover()
            # The intent record was sealed before any frame hit the disk,
            # so every in-write crash rolls forward.
            assert report.action == "replayed"
            assert report.request_index == crashed_at
            assert not db.engine.journal_pending
            assert db.engine.request_count == crashed_at + 1

            # The crashed request committed during recovery; resume after it.
            run_workload(db, start=crashed_at + 1)
            assert logical_state(db) == twin_state, (
                f"state diverged after crash at frame {crash_frame}"
            )
            db.consistency_check()

    def test_post_recovery_trace_keeps_request_shape(self):
        params = build_db().params
        k = params.block_size
        injector = FaultInjector(
            0, [crash_after_writes(params.num_locations + 2 * (k + 1) + 3)]
        )
        db = build_db(journal=MemoryJournal(), injector=injector)
        with pytest.raises(SimulatedCrash):
            run_workload(db)
        db.recover()
        run_workload(db, start=3)
        expected = [(READ, k), (READ, 1), (WRITE, k), (WRITE, 1)]
        for index in range(3, len(workload_ops())):
            assert db.trace.request_shape(index) == expected

    def test_crash_at_every_journal_write(self):
        """A lost intent record means the request never happened."""
        for crash_op in range(len(workload_ops())):
            injector = FaultInjector(
                0, [FaultPlan(SITE_JOURNAL_WRITE, "crash", after=crash_op)]
            )
            journal = FaultyJournal(MemoryJournal(), injector)
            db = build_db(journal=journal)

            crashed_at = None
            for index, op in enumerate(workload_ops()):
                try:
                    op(db)
                except SimulatedCrash:
                    crashed_at = index
                    break
            assert crashed_at == crash_op

            # The record never became durable, so the journal slot is empty
            # and recovery has nothing to do — the request simply never
            # happened.
            report = db.recover()
            assert report.action == "clean"
            # The round-robin pointer never advanced: the request can simply
            # be re-issued, and the rest of the workload completes.
            assert db.engine.request_count == crashed_at
            run_workload(db, start=crashed_at)
            db.consistency_check()

    def test_double_crash_during_recovery(self):
        params = build_db().params
        k = params.block_size
        injector = FaultInjector(
            0, [crash_after_writes(params.num_locations + (k + 1) + 2)]
        )
        db = build_db(journal=MemoryJournal(), injector=injector)
        with pytest.raises(SimulatedCrash):
            run_workload(db)
        # Power fails again mid-replay...
        injector.add(FaultPlan(
            SITE_DISK_WRITE, "crash",
            after=injector.frames_seen(SITE_DISK_WRITE) + 3,
        ))
        with pytest.raises(SimulatedCrash):
            db.recover()
        # ...and recovery is idempotent: the second attempt completes.
        report = db.recover()
        assert report.action == "replayed"
        run_workload(db, start=2)
        db.consistency_check()


class TestRecoveryEdgeCases:
    def test_torn_record_rolls_back(self):
        journal = MemoryJournal()
        db = build_db(journal=journal)
        db.query(1)
        sealed = db.cop.seal_blob(WriteIntent(
            request_index=1, next_block=0, rotation_left=-1,
            block_start=0, extra_location=0,
        ).encode())
        journal.write(sealed[: len(sealed) // 2])
        assert db.recover().action == "rolled_back"
        assert journal.read() is None

    def test_unauthentic_record_rolls_back(self):
        journal = MemoryJournal()
        db = build_db(journal=journal)
        db.query(1)
        journal.write(b"\x00" * 64)
        assert db.recover().action == "rolled_back"

    def test_stale_record_discarded(self):
        # Crash between the pointer advance and the journal clear: the
        # record describes an already-committed request.
        journal = MemoryJournal()
        db = build_db(journal=journal)
        db.query(1)
        db.query(2)
        stale = WriteIntent(
            request_index=1, next_block=db.engine.next_block_index,
            rotation_left=-1, block_start=0, extra_location=0,
        )
        journal.write(db.cop.seal_blob(stale.encode()))
        report = db.recover()
        assert report.action == "discarded_stale"
        assert report.request_index == 1
        assert journal.read() is None
        db.consistency_check()

    def test_future_record_raises_recovery_error(self):
        journal = MemoryJournal()
        db = build_db(journal=journal)
        db.query(1)
        future = WriteIntent(
            request_index=17, next_block=0, rotation_left=-1,
            block_start=0, extra_location=0,
        )
        journal.write(db.cop.seal_blob(future.encode()))
        with pytest.raises(RecoveryError):
            db.recover()

    def test_recovery_counters(self):
        journal = MemoryJournal()
        db = build_db(journal=journal)
        db.query(1)
        db.recover()
        assert db.engine.counters.get("recovery.clean") == 1


class TestSnapshotIntegration:
    def test_snapshot_refused_with_pending_record(self, tmp_path):
        journal = MemoryJournal()
        db = build_db(journal=journal)
        db.query(1)
        journal.write(db.cop.seal_blob(WriteIntent(
            request_index=1, next_block=0, rotation_left=-1,
            block_start=0, extra_location=0,
        ).encode()))
        with pytest.raises(ConfigurationError):
            save_snapshot(db, str(tmp_path / "snap"))

    def test_roll_forward_across_restart(self, tmp_path):
        """Snapshot, crash on the next request, restore, recover."""
        journal_path = str(tmp_path / "intent.jnl")
        snap_dir = str(tmp_path / "snap")
        params = build_db().params
        k = params.block_size

        db = build_db(journal=FileJournal(journal_path))
        db.query(3)
        db.update(5, b"pre-snapshot")
        save_snapshot(db, snap_dir)

        # Crash mid-write on the first post-snapshot request.
        injector = FaultInjector(0, [FaultPlan(SITE_DISK_WRITE, "crash",
                                               after=k // 2)])
        db.engine.disk = FaultyDiskStore(db.disk, injector)
        with pytest.raises(SimulatedCrash):
            db.update(9, b"torn update")

        # "Restart": restore the snapshot next to the surviving journal.
        restored = load_snapshot(
            snap_dir, seed=7, journal=FileJournal(journal_path)
        )
        assert restored.engine.journal_pending
        report = restored.recover()
        assert report.action == "replayed"
        assert report.request_index == 2
        assert restored.query(9) == b"torn update"
        assert restored.query(5) == b"pre-snapshot"
        restored.consistency_check()

    def test_journal_newer_than_snapshot_raises(self, tmp_path):
        journal_path = str(tmp_path / "intent.jnl")
        snap_dir = str(tmp_path / "snap")
        db = build_db(journal=FileJournal(journal_path))
        db.query(3)
        save_snapshot(db, snap_dir)
        # Two more committed requests, then a crash leaves a record for
        # request 3 — which the year-old snapshot cannot roll forward.
        db.query(4)
        db.query(5)
        params = db.params
        injector = FaultInjector(0, [FaultPlan(SITE_DISK_WRITE, "crash",
                                               after=1)])
        db.engine.disk = FaultyDiskStore(db.disk, injector)
        with pytest.raises(SimulatedCrash):
            db.query(6)
        restored = load_snapshot(
            snap_dir, seed=7, journal=FileJournal(journal_path)
        )
        with pytest.raises(RecoveryError):
            restored.recover()


class TestNonCrashWriteFailure:
    """A retryable write failure mid-apply rolls forward, never resends raw.

    The apply phase lands the trusted deltas before the frame write-back,
    so a transient write error leaves the pageMap pointing at never-written
    frames *while the process keeps running*.  The engine must finish that
    write-back (from the retained intent) before serving anything else.
    """

    def _faulted_db(self, journal):
        injector = FaultInjector(0)
        db = build_db(journal=journal, injector=injector)
        injector.add(transient_writes(times=1))
        return db

    def test_next_request_rolls_forward_first(self):
        journal = MemoryJournal()
        db = self._faulted_db(journal)
        with pytest.raises(TransientStorageError):
            db.query(3)
        assert db.engine.write_back_pending
        assert journal.read() is not None  # repair record still in the slot
        assert db.engine.request_count == 0

        # The resend heals the torn request (committing it), then executes.
        assert db.query(3) == build_db().query(3)
        assert db.engine.request_count == 2
        assert db.engine.counters.get("recovery.rolled_forward") == 1
        assert not db.engine.write_back_pending
        assert journal.read() is None
        run_workload(db, start=1)
        db.consistency_check()

    def test_roll_forward_without_a_journal(self):
        db = self._faulted_db(journal=None)
        with pytest.raises(TransientStorageError):
            db.update(5, b"torn")
        assert db.engine.write_back_pending
        # The in-memory intent is enough: the next request self-heals.
        assert db.query(5) == b"torn"
        assert db.engine.counters.get("recovery.rolled_forward") == 1
        db.consistency_check()

    def test_recover_rolls_forward_without_a_journal(self):
        db = self._faulted_db(journal=None)
        with pytest.raises(TransientStorageError):
            db.query(3)
        report = db.recover()
        assert report.action == "replayed"
        assert report.request_index == 0
        assert not db.engine.write_back_pending
        run_workload(db, start=1)
        db.consistency_check()

    def test_persistent_write_fault_stays_pending(self):
        injector = FaultInjector(0)
        journal = MemoryJournal()
        db = build_db(journal=journal, injector=injector)
        injector.add(transient_writes(times=3))
        with pytest.raises(TransientStorageError):
            db.query(3)
        # Still failing: the retry surfaces the fault again but never
        # destroys the pending record or serves from the torn state.
        with pytest.raises(TransientStorageError):
            db.query(3)
        assert db.engine.write_back_pending
        assert journal.read() is not None
        assert db.engine.request_count == 0


class TestFileJournalDurability:
    def test_fsync_policy_syncs_directory(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync

        def tracking_fsync(fd):
            synced.append(os.fstat(fd).st_mode)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", tracking_fsync)
        journal = FileJournal(str(tmp_path / "intent.jnl"))
        journal.write(b"record")
        # Temp file fsync + directory fsync: the rename is only durable
        # once the parent directory's entry is on stable storage.
        assert any(stat.S_ISREG(mode) for mode in synced)
        assert any(stat.S_ISDIR(mode) for mode in synced)

        synced.clear()
        journal.clear()
        assert any(stat.S_ISDIR(mode) for mode in synced)

    def test_fsync_disabled_never_syncs(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        journal = FileJournal(str(tmp_path / "intent.jnl"), fsync=False)
        journal.write(b"record")
        journal.clear()
        assert synced == []
        assert journal.read() is None
