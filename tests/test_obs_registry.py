"""MetricsRegistry instruments, CounterSet/LatencySeries mirroring, export."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    Tracer,
    global_registry,
    read_jsonl,
    rows_by_kind,
    run_rows,
    set_global_registry,
    write_jsonl,
)
from repro.sim.metrics import CounterSet, LatencySeries


class TestInstruments:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.requests")
        counter.inc()
        counter.inc(4)
        assert registry.counter("engine.requests") is counter
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("x").inc(-1)

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("health.state")
        gauge.set(2)
        gauge.add(-1.5)
        assert gauge.value == pytest.approx(0.5)

    def test_histogram_summary_and_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(6.05)
        assert summary["mean"] == pytest.approx(6.05 / 4)
        assert summary["min"] == pytest.approx(0.05)
        assert summary["max"] == pytest.approx(5.0)
        assert summary["p50"] == pytest.approx(0.55)  # interpolated in (0.1, 1]
        assert hist.nonzero_buckets() == [("0.1", 1), ("1", 2), ("10", 1)]

    def test_quantile_interpolation_vs_legacy_upper_bound(self):
        # Regression pin for both estimators.  Values 0.05, 0.5, 0.5, 5.0
        # on buckets [0.1, 1, 10]: the median rank (2) lands in (0.1, 1]
        # as rank 1 of 2 -> lerp 0.1 + 0.5 * (1 - 0.1) = 0.55, while the
        # legacy mode returns the bucket's upper bound, 1.0.
        registry = MetricsRegistry()
        hist = registry.histogram("latency", buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        assert hist.quantile(0.5) == pytest.approx(0.55)
        assert hist.quantile(0.5, interpolate=False) == pytest.approx(1.0)
        # Interpolation clamps to the observed extremes: the last bucket
        # lerps toward 10.0 but no sample exceeds 5.0.
        assert hist.quantile(1.0) == pytest.approx(5.0)
        assert hist.quantile(1.0, interpolate=False) == pytest.approx(10.0)
        # And a single-sample bucket clamps up to the observed minimum.
        low = registry.histogram("low", buckets=[10.0])
        low.observe(9.0)
        low.observe(9.5)
        assert low.quantile(0.25) == pytest.approx(9.0)

    def test_histogram_state_is_frozen_copy(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=[1.0, 2.0])
        hist.observe(0.5)
        state = hist.state()
        hist.observe(1.5)
        assert state.count == 1
        assert state.counts == [1, 0, 0]
        assert hist.state().count == 2
        # Windowed statistics: subtracting two states' counts isolates
        # the samples observed between them.
        delta = [b - a for a, b in zip(state.counts, hist.state().counts)]
        assert delta == [0, 1, 0]

    def test_histogram_overflow_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=[1.0])
        hist.observe(50.0)
        assert hist.nonzero_buckets() == [("+Inf", 1)]
        # Overflow has no upper bound to interpolate toward: both modes
        # report the observed maximum... except legacy mode, which has no
        # better answer than max either.
        assert hist.quantile(1.0) == pytest.approx(50.0)
        assert hist.quantile(1.0, interpolate=False) == pytest.approx(50.0)

    def test_histogram_invalid_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", buckets=[2.0, 1.0])
        # An empty sequence means "use the defaults", not an error.
        hist = registry.histogram("empty", buckets=[])
        assert hist.buckets == DEFAULT_LATENCY_BUCKETS

    def test_default_buckets_strictly_increasing(self):
        assert all(
            b2 > b1 for b1, b2 in
            zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:])
        )

    def test_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ConfigurationError):
            registry.gauge("name")
        with pytest.raises(ConfigurationError):
            registry.histogram("name")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7.0)
        registry.histogram("h").observe(0.01)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_thread_safety_exact_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("hot")
        hist = registry.histogram("hot.h", buckets=[0.5])

        def hammer():
            for _ in range(10_000):
                counter.inc()
                hist.observe(0.1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000
        assert hist.count == 80_000
        assert hist.sum == pytest.approx(8_000.0)

    def test_snapshot_consistent_under_concurrent_writers(self):
        # snapshot() copies primitive state under the lock and serializes
        # outside it; hammer it from a reader thread while writers mutate
        # every instrument kind and check each snapshot is internally
        # consistent (histogram count == sum of its bucket counts) and
        # monotone across reads.
        registry = MetricsRegistry()
        counter = registry.counter("w.c")
        gauge = registry.gauge("w.g")
        hist = registry.histogram("w.h", buckets=[0.5, 1.0])
        stop = threading.Event()

        def write():
            while not stop.is_set():
                counter.inc()
                gauge.add(1.0)
                hist.observe(0.25)
                hist.observe(0.75)

        writers = [threading.Thread(target=write) for _ in range(4)]
        for thread in writers:
            thread.start()
        try:
            last_count = 0
            for _ in range(200):
                snap = registry.snapshot()
                summary = snap["histograms"]["w.h"]
                bucketed = sum(n for _, n in summary["buckets"])
                assert summary["count"] == bucketed
                assert summary["count"] >= last_count
                last_count = summary["count"]
        finally:
            stop.set()
            for thread in writers:
                thread.join()
        assert registry.snapshot()["counters"]["w.c"] == counter.value

    def test_reentrant_update_from_snapshot_postprocessing(self):
        # The registry lock is re-entrant: updating an instrument while
        # holding it (as snapshot post-processing callbacks may) is fine.
        registry = MetricsRegistry()
        with registry._lock:
            registry.counter("nested").inc()
            assert registry.snapshot()["counters"]["nested"] == 1


class TestAbsorption:
    def test_absorb_counters(self):
        registry = MetricsRegistry()
        registry.absorb_counters({"a": 2, "b": 3}, prefix="legacy.")
        assert registry.counter("legacy.a").value == 2
        assert registry.counter("legacy.b").value == 3

    def test_absorb_tracer_idempotent(self):
        tracer = Tracer()
        with tracer.span("decrypt", nbytes=100):
            pass
        registry = MetricsRegistry()
        registry.absorb_tracer(tracer)
        registry.absorb_tracer(tracer)  # re-absorbing must not double-count
        assert registry.counter("phase.decrypt.count").value == 1
        assert registry.counter("phase.decrypt.bytes").value == 100
        assert registry.counter("phase.decrypt.errors").value == 0
        assert registry.gauge("phase.decrypt.wall_s").value >= 0.0

    def test_counterset_mirrors_into_registry(self):
        registry = MetricsRegistry()
        counters = CounterSet(registry=registry, prefix="engine.")
        counters.increment("requests", 3)
        assert counters.get("requests") == 3
        assert registry.counter("engine.requests").value == 3

    def test_counterset_bind_folds_existing(self):
        counters = CounterSet()
        counters.increment("early", 4)
        registry = MetricsRegistry()
        counters.bind_registry(registry, prefix="late.")
        assert registry.counter("late.early").value == 4
        counters.increment("early")
        assert registry.counter("late.early").value == 5

    def test_counterset_reset_is_local_only(self):
        registry = MetricsRegistry()
        counters = CounterSet(registry=registry)
        counters.increment("n", 2)
        counters.reset()
        assert counters.get("n") == 0
        # Registry counters are monotonic by contract and keep their value.
        assert registry.counter("n").value == 2

    def test_latency_series_mirrors_into_histogram(self):
        registry = MetricsRegistry()
        series = LatencySeries(histogram=registry.histogram("q"))
        series.record(0.2)
        series.extend([0.3, 0.4])
        assert len(series) == 3
        assert registry.histogram("q").count == 3

    def test_latency_extend_is_atomic(self):
        # Regression: a mid-batch negative latency used to leave the
        # leading valid samples appended (and mirrored) before raising.
        registry = MetricsRegistry()
        series = LatencySeries(histogram=registry.histogram("q"))
        series.record(0.1)
        with pytest.raises(ConfigurationError):
            series.extend([0.2, -0.5, 0.3])
        assert series.samples == [0.1]
        assert registry.histogram("q").count == 1


class TestGlobalRegistry:
    def test_global_registry_singleton_and_reset(self):
        set_global_registry(None)
        try:
            first = global_registry()
            assert global_registry() is first
            mine = MetricsRegistry()
            set_global_registry(mine)
            assert global_registry() is mine
        finally:
            set_global_registry(None)


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("request", nbytes=64):
            with tracer.span("decrypt", nbytes=32):
                pass
        registry = MetricsRegistry()
        registry.counter("engine.requests").inc()
        rows = run_rows(tracer, registry, meta={"queries": 1}, spans=True)
        out = tmp_path / "run.jsonl"
        written = write_jsonl(str(out), rows)
        back = read_jsonl(str(out))
        assert written == len(back) == len(rows)

        metas = rows_by_kind(back, "meta")
        assert metas[0]["queries"] == 1
        phases = {row["name"] for row in rows_by_kind(back, "phase")}
        assert phases == {"request", "decrypt"}
        spans = rows_by_kind(back, "span")
        assert len(spans) == 2
        counters = rows_by_kind(back, "counter")
        assert {"name": "engine.requests", "kind": "counter", "value": 1} in \
            [dict(c) for c in counters]

    def test_read_jsonl_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "meta"}\nnot json at all\n')
        with pytest.raises(ConfigurationError):
            read_jsonl(str(bad))
