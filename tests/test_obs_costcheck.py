"""Eq. 8 conformance: CostModelCheck against synthetic and live engines."""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import AnalyticalCostModel, eq8_terms
from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.core.journal import MemoryJournal
from repro.errors import ConfigurationError
from repro.hardware.specs import IBM_4764
from repro.obs import CostModelCheck, Tracer
from repro.obs.costcheck import _ratio


class FakeClock:
    """Settable virtual-time source bindable via ``Tracer.bind_clock``."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds


def synthetic_trace(queries=1, extra_disk_reads=0):
    """Emit spans whose virtual costs exactly match Eq. 8 for k=1, F=100.

    Returns the tracer.  ``extra_disk_reads`` adds spurious seek+transfer
    spans, pushing the seek/disk/total ratios above 1 like a real retry
    storm would.
    """
    spec = IBM_4764
    k, frame = 1, 100
    clock = FakeClock()
    tracer = Tracer()
    tracer.bind_clock(clock)
    per_frame_disk = frame / spec.disk.read_bandwidth
    moved = 2 * (k + 1) * frame  # bytes through link and crypto per query
    for _ in range(queries):
        with tracer.span("request"):
            for index in range(2 + extra_disk_reads):
                with tracer.span("disk.read", nbytes=frame):
                    clock.advance(spec.disk.seek_time + per_frame_disk)
            with tracer.span("link.ingest", nbytes=(k + 1) * frame):
                clock.advance((k + 1) * frame / spec.link_bandwidth)
            with tracer.span("decrypt", nbytes=(k + 1) * frame):
                clock.advance((k + 1) * frame / spec.crypto_throughput)
            with tracer.span("reencrypt", nbytes=(k + 1) * frame):
                clock.advance((k + 1) * frame / spec.crypto_throughput)
            with tracer.span("link.egress", nbytes=(k + 1) * frame):
                clock.advance((k + 1) * frame / spec.link_bandwidth)
            for index in range(2):
                with tracer.span("disk.write", nbytes=frame):
                    clock.advance(spec.disk.seek_time + per_frame_disk)
    assert moved == 2 * (k + 1) * frame
    return tracer


class TestSyntheticTrace:
    def test_exact_trace_gives_unit_ratios(self):
        check = CostModelCheck(IBM_4764, block_size=1, frame_size=100)
        results = {r.term: r for r in check.evaluate(synthetic_trace(), 1)}
        assert set(results) == {"seek", "disk", "link", "crypto", "total"}
        for term, row in results.items():
            assert row.ratio == pytest.approx(1.0, rel=1e-9), term

    def test_multiple_queries_scale_predictions(self):
        check = CostModelCheck(IBM_4764, block_size=1, frame_size=100)
        tracer = synthetic_trace(queries=3)
        results = {r.term: r for r in check.evaluate(tracer, 3)}
        predicted = check.predicted_terms()
        for term, row in results.items():
            assert row.predicted_seconds == pytest.approx(3 * predicted[term])
            assert row.ratio == pytest.approx(1.0, rel=1e-9), term

    def test_extra_disk_traffic_inflates_ratios(self):
        check = CostModelCheck(IBM_4764, block_size=1, frame_size=100)
        tracer = synthetic_trace(extra_disk_reads=2)
        results = {r.term: r for r in check.evaluate(tracer, 1)}
        # 6 disk accesses instead of 4: seek ratio 1.5, disk ratio 1.5
        # (two extra frame transfers on top of the predicted four), and the
        # total absorbs both excesses; link/crypto untouched.
        assert results["seek"].ratio == pytest.approx(1.5, rel=1e-9)
        assert results["disk"].ratio == pytest.approx(1.5, rel=1e-9)
        assert results["link"].ratio == pytest.approx(1.0, rel=1e-9)
        assert results["crypto"].ratio == pytest.approx(1.0, rel=1e-9)
        assert results["total"].ratio > 1.0

    def test_as_dict_rows_are_costcheck_kind(self):
        check = CostModelCheck(IBM_4764, block_size=1, frame_size=100)
        rows = [r.as_dict() for r in check.evaluate(synthetic_trace(), 1)]
        assert all(row["kind"] == "costcheck" for row in rows)
        assert {row["term"] for row in rows} == {
            "seek", "disk", "link", "crypto", "total"
        }


class TestLiveEngine:
    def test_live_run_conforms_to_eq8(self):
        tracer = Tracer()
        db = PirDatabase.create(
            make_records(64, 32), cache_capacity=8, block_size=4,
            page_capacity=32, cipher_backend="blake2", seed=21,
            spec=IBM_4764, journal=MemoryJournal(), tracer=tracer,
        )
        queries = 25
        for index in range(queries):
            db.query(index % 64)
        check = CostModelCheck.for_database(db)
        for row in check.evaluate(tracer, queries):
            assert row.ratio == pytest.approx(1.0, rel=1e-9), row.term

    def test_for_database_picks_frame_size(self):
        db = PirDatabase.create(
            make_records(32, 16), cache_capacity=4, block_size=4,
            page_capacity=16, seed=3,
        )
        check = CostModelCheck.for_database(db)
        assert check.frame_size == db.cop.frame_size
        assert check.block_size == db.params.block_size
        # Predictions use the frame size, not the raw page size.
        assert check.predicted_terms()["total"] == pytest.approx(
            AnalyticalCostModel(db.cop.spec).query_time(
                db.params.block_size, db.cop.frame_size
            )
        )


class TestValidationAndRatio:
    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            CostModelCheck(IBM_4764, block_size=0, frame_size=10)
        with pytest.raises(ConfigurationError):
            CostModelCheck(IBM_4764, block_size=1, frame_size=0)

    def test_evaluate_requires_positive_queries(self):
        check = CostModelCheck(IBM_4764, block_size=1, frame_size=10)
        with pytest.raises(ConfigurationError):
            check.evaluate(Tracer(), 0)

    def test_ratio_edge_cases(self):
        assert _ratio(0.0, 0.0) == 0.0
        assert _ratio(1.0, 0.0) == float("inf")
        assert _ratio(3.0, 2.0) == pytest.approx(1.5)

    def test_eq8_terms_validation_and_total(self):
        with pytest.raises(ConfigurationError):
            eq8_terms(IBM_4764, 0, 64)
        with pytest.raises(ConfigurationError):
            eq8_terms(IBM_4764, 4, 0)
        terms = eq8_terms(IBM_4764, 8, 64)
        assert terms["total"] == pytest.approx(
            terms["seek"] + terms["disk"] + terms["link"] + terms["crypto"]
        )
        assert terms["total"] == pytest.approx(
            AnalyticalCostModel(IBM_4764).query_time(8, 64)
        )
