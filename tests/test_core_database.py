"""The PirDatabase facade: construction, options, storage, integrity."""

from __future__ import annotations

import pytest

from repro import PirDatabase
from repro.baselines import make_records
from repro.errors import AuthenticationError, ConfigurationError
from repro.hardware.specs import HardwareSpec

from tests.helpers import make_db


class TestConstruction:
    def test_empty_records_rejected(self):
        with pytest.raises(ConfigurationError):
            PirDatabase.create([], cache_capacity=4)

    def test_unknown_setup_mode(self):
        with pytest.raises(ConfigurationError):
            PirDatabase.create([b"x"] * 20, cache_capacity=4, page_capacity=16,
                               setup_mode="magic")

    def test_num_pages_reports_user_pages(self, small_db, records):
        assert small_db.num_pages == len(records)

    def test_block_size_override_beats_target_c(self):
        db = make_db(block_size=4, target_c=99.0)
        assert db.params.block_size == 4

    def test_free_pages_cover_reserve(self):
        db = make_db(num_records=40, reserve_fraction=0.25, seed=2)
        assert db.params.free_pages >= 10

    def test_seed_reproducibility(self):
        a = make_db(seed=123)
        b = make_db(seed=123)
        # Same seed -> identical permutation -> identical ciphertext layout.
        assert [a.disk.peek(i) for i in range(5)] == [
            b.disk.peek(i) for i in range(5)
        ]

    def test_different_seeds_differ(self):
        a, b = make_db(seed=1), make_db(seed=2)
        assert [a.disk.peek(i) for i in range(5)] != [
            b.disk.peek(i) for i in range(5)
        ]

    def test_every_location_initialised(self, small_db):
        assert small_db.disk.initialised_locations() == small_db.params.num_locations

    def test_aes_backend_end_to_end(self):
        db = make_db(num_records=12, cache_capacity=2, page_capacity=16,
                     cipher_backend="aes", block_size=3, seed=3)
        recs = make_records(12, 16)
        for i in range(12):
            assert db.query(i) == recs[i]

    def test_null_backend_end_to_end(self):
        db = make_db(num_records=20, cipher_backend="null", seed=4)
        recs = make_records(20, 16)
        for i in range(20):
            assert db.query(i) == recs[i]


class TestObliviousSetup:
    def test_oblivious_setup_correctness(self):
        db = make_db(num_records=20, cache_capacity=4, page_capacity=16,
                     setup_mode="oblivious", block_size=4, seed=7)
        recs = make_records(20, 16)
        for i in range(20):
            assert db.query(i) == recs[i]
        db.consistency_check()

    def test_oblivious_setup_layout_differs_from_identity(self):
        db = make_db(num_records=24, setup_mode="oblivious", block_size=4, seed=8)
        layout = [
            db.cop.page_map.lookup(i).position
            for i in range(24)
            if not db.cop.page_map.is_cached(i)
        ]
        assert layout != sorted(layout)


class TestStorageAccounting:
    def test_report_matches_eq7_structure(self, small_db):
        report = small_db.storage_report()
        params = small_db.params
        page_bytes = small_db.cop.plaintext_page_size
        assert report.page_cache == params.cache_capacity * page_bytes
        assert report.server_block == (params.block_size + 1) * page_bytes
        assert report.total > 0

    def test_memory_limit_enforcement(self):
        with pytest.raises(Exception):
            make_db(
                spec=HardwareSpec(secure_memory=128),
                enforce_memory_limit=True,
            )

    def test_expected_query_time_matches_costmodel_shape(self, timed_db):
        """Eq. 8 with the frame size as B; four seeks dominate small pages."""
        expected = timed_db.expected_query_time()
        assert expected > 4 * 5e-3  # at least the four seeks
        timed_db.query(0)
        # One real request should charge approximately the Eq. 8 amount.
        assert timed_db.clock.now > 0


class TestIntegrity:
    def test_consistency_check_passes_fresh(self, small_db):
        small_db.consistency_check()

    def test_tampered_frame_detected_on_read(self, small_db):
        # Corrupt the ciphertext at location 0 (first block, read next).
        frame = bytearray(small_db.disk.peek(0))
        frame[-1] ^= 0xFF
        small_db.disk._frames[0] = bytes(frame)
        with pytest.raises(AuthenticationError):
            for i in range(small_db.num_pages):
                small_db.query(i)

    def test_consistency_check_detects_corruption(self, small_db):
        frame = bytearray(small_db.disk.peek(3))
        frame[0] ^= 1
        small_db.disk._frames[3] = bytes(frame)
        with pytest.raises(AuthenticationError):
            small_db.consistency_check()

    def test_query_measured_time_matches_eq8(self, timed_db):
        """The executed engine charges exactly the Eq. 8 cost per request."""
        start = timed_db.clock.now
        timed_db.query(0)
        measured = timed_db.clock.now - start
        assert measured == pytest.approx(timed_db.expected_query_time(), rel=1e-9)

    def test_constant_time_across_many_requests(self, timed_db):
        times = []
        for i in range(20):
            start = timed_db.clock.now
            timed_db.query(i % timed_db.num_pages)
            times.append(timed_db.clock.now - start)
        assert max(times) == pytest.approx(min(times), rel=1e-12)
