"""Pure-Python SHA-256 against FIPS 180-4 vectors and hashlib."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha256 import Sha256, sha256
from repro.errors import CryptoError


class TestFipsVectors:
    def test_empty_message(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        message = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha256(message).hex() == (
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_million_a(self):
        hasher = Sha256()
        for _ in range(1000):
            hasher.update(b"a" * 1000)
        assert hasher.hexdigest() == (
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        )


class TestIncremental:
    def test_split_updates_equal_one_shot(self):
        data = bytes(range(256)) * 3
        hasher = Sha256()
        hasher.update(data[:100])
        hasher.update(data[100:101])
        hasher.update(data[101:])
        assert hasher.digest() == sha256(data)

    def test_digest_does_not_finalise(self):
        hasher = Sha256(b"hello")
        first = hasher.digest()
        assert hasher.digest() == first
        hasher.update(b" world")
        assert hasher.digest() == sha256(b"hello world")

    def test_boundary_lengths(self):
        # Padding edge cases: 55, 56, 63, 64, 65 bytes.
        for length in (0, 1, 55, 56, 63, 64, 65, 119, 128):
            data = b"x" * length
            assert sha256(data) == hashlib.sha256(data).digest(), length

    def test_update_after_finalise_internal_guard(self):
        hasher = Sha256(b"abc")
        hasher._finalise()
        with pytest.raises(CryptoError):
            hasher.update(b"more")


class TestAgainstHashlib:
    @settings(max_examples=60, deadline=None)
    @given(data=st.binary(max_size=500))
    def test_matches_hashlib_property(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()

    def test_long_random_buffer(self):
        data = bytes(i * 37 % 251 for i in range(100_000))
        assert sha256(data) == hashlib.sha256(data).digest()
