"""Session-id modes and idle-session reaping (service.frontend)."""

import pytest

from tests.helpers import make_db
from repro.errors import ProtocolError
from repro.service import protocol
from repro.service.frontend import (
    SESSION_RANDOM,
    SESSION_SEQUENTIAL,
    QueryFrontend,
    ServiceClient,
)


class FakeTime:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestSessionIdModes:
    def test_sequential_is_default_and_counts_up(self):
        db = make_db()
        frontend = QueryFrontend(db)
        assert frontend.session_id_mode == SESSION_SEQUENTIAL
        assert [frontend.open_session() for _ in range(3)] == [1, 2, 3]
        db.close()

    def test_random_ids_are_64_bit_and_distinct(self):
        db = make_db()
        frontend = QueryFrontend(db, session_id_mode=SESSION_RANDOM)
        ids = [frontend.open_session() for _ in range(32)]
        assert len(set(ids)) == 32
        assert all(0 < session_id < 2**64 for session_id in ids)
        # Unguessable shape: not clustered the way a counter would be.
        # With 64-bit uniform draws, consecutive ids land in the same
        # 2^32-wide bucket with probability ~2^-32 per pair.
        deltas = [abs(a - b) for a, b in zip(ids, ids[1:])]
        assert all(delta > 2**20 for delta in deltas)
        db.close()

    def test_random_ids_depend_on_seed(self):
        db_a, db_b = make_db(seed=1), make_db(seed=2)
        ids_a = [QueryFrontend(db_a, session_id_mode=SESSION_RANDOM)
                 .open_session() for _ in range(1)]
        ids_b = [QueryFrontend(db_b, session_id_mode=SESSION_RANDOM)
                 .open_session() for _ in range(1)]
        assert ids_a != ids_b
        db_a.close()
        db_b.close()

    def test_unknown_mode_rejected(self):
        db = make_db()
        with pytest.raises(ProtocolError, match="session_id_mode"):
            QueryFrontend(db, session_id_mode="guessable")
        db.close()

    def test_service_client_works_in_random_mode(self):
        db = make_db()
        frontend = QueryFrontend(db, session_id_mode=SESSION_RANDOM)
        client = ServiceClient(frontend)
        assert client.query(3) == db.query(3)
        client.close()
        db.close()


class TestIdleSessionReaping:
    def _frontend(self, ttl=10.0):
        db = make_db()
        clock = FakeTime()
        frontend = QueryFrontend(
            db, session_id_mode=SESSION_RANDOM,
            session_ttl=ttl, time_source=clock,
        )
        return db, clock, frontend

    def test_no_ttl_means_no_reaping(self):
        db = make_db()
        frontend = QueryFrontend(db)
        frontend.open_session()
        assert frontend.reap_idle_sessions() == 0
        assert frontend.session_count == 1
        db.close()

    def test_idle_sessions_reaped_after_ttl(self):
        db, clock, frontend = self._frontend(ttl=10.0)
        frontend.open_session()
        frontend.open_session()
        clock.advance(10.5)
        assert frontend.reap_idle_sessions() == 2
        assert frontend.session_count == 0
        assert frontend.counters.get("sessions.reaped") == 2
        db.close()

    def test_activity_refreshes_the_clock(self):
        db, clock, frontend = self._frontend(ttl=10.0)
        client = ServiceClient(frontend)
        idle = frontend.open_session()
        clock.advance(8.0)
        client.query(1)  # refreshes the client's session, not `idle`
        clock.advance(4.0)
        assert frontend.reap_idle_sessions() == 1
        assert frontend.session_count == 1
        with pytest.raises(ProtocolError, match="unknown session"):
            frontend.session_suite(idle)
        client.query(2)  # survivor still works
        db.close()

    def test_reaped_session_requests_refused(self):
        db, clock, frontend = self._frontend(ttl=5.0)
        client = ServiceClient(frontend)
        clock.advance(6.0)
        assert frontend.reap_idle_sessions() == 1
        with pytest.raises(ProtocolError, match="unknown session"):
            client.query(0)
        db.close()

    def test_reap_drops_reply_cache_entries(self):
        db, clock, frontend = self._frontend(ttl=5.0)
        session_id = frontend.open_session()
        suite = frontend.session_suite(session_id)
        sealed = suite.encrypt_page(
            protocol.encode_client_message(protocol.Query(1))
        )
        frontend.serve(session_id, sealed)
        assert len(frontend._reply_cache) == 1
        clock.advance(6.0)
        assert frontend.reap_idle_sessions() == 1
        assert len(frontend._reply_cache) == 0
        db.close()

    def test_bad_ttl_rejected(self):
        db = make_db()
        with pytest.raises(ProtocolError, match="session_ttl"):
            QueryFrontend(db, session_ttl=0.0)
        db.close()
