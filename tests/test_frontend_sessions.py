"""Session-id modes, idle-session reaping, and reply-cache pinning
(service.frontend)."""

import pytest

from tests.helpers import make_db
from repro.errors import ProtocolError
from repro.service import protocol
from repro.service.frontend import (
    SESSION_RANDOM,
    SESSION_SEQUENTIAL,
    QueryFrontend,
    SealedReplyCache,
    ServiceClient,
)


class FakeTime:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestSessionIdModes:
    def test_sequential_is_default_and_counts_up(self):
        db = make_db()
        frontend = QueryFrontend(db)
        assert frontend.session_id_mode == SESSION_SEQUENTIAL
        assert [frontend.open_session() for _ in range(3)] == [1, 2, 3]
        db.close()

    def test_random_ids_are_64_bit_and_distinct(self):
        db = make_db()
        frontend = QueryFrontend(db, session_id_mode=SESSION_RANDOM)
        ids = [frontend.open_session() for _ in range(32)]
        assert len(set(ids)) == 32
        assert all(0 < session_id < 2**64 for session_id in ids)
        # Unguessable shape: not clustered the way a counter would be.
        # With 64-bit uniform draws, consecutive ids land in the same
        # 2^32-wide bucket with probability ~2^-32 per pair.
        deltas = [abs(a - b) for a, b in zip(ids, ids[1:])]
        assert all(delta > 2**20 for delta in deltas)
        db.close()

    def test_random_ids_depend_on_seed(self):
        db_a, db_b = make_db(seed=1), make_db(seed=2)
        ids_a = [QueryFrontend(db_a, session_id_mode=SESSION_RANDOM)
                 .open_session() for _ in range(1)]
        ids_b = [QueryFrontend(db_b, session_id_mode=SESSION_RANDOM)
                 .open_session() for _ in range(1)]
        assert ids_a != ids_b
        db_a.close()
        db_b.close()

    def test_unknown_mode_rejected(self):
        db = make_db()
        with pytest.raises(ProtocolError, match="session_id_mode"):
            QueryFrontend(db, session_id_mode="guessable")
        db.close()

    def test_service_client_works_in_random_mode(self):
        db = make_db()
        frontend = QueryFrontend(db, session_id_mode=SESSION_RANDOM)
        client = ServiceClient(frontend)
        assert client.query(3) == db.query(3)
        client.close()
        db.close()


class TestIdleSessionReaping:
    def _frontend(self, ttl=10.0):
        db = make_db()
        clock = FakeTime()
        frontend = QueryFrontend(
            db, session_id_mode=SESSION_RANDOM,
            session_ttl=ttl, time_source=clock,
        )
        return db, clock, frontend

    def test_no_ttl_means_no_reaping(self):
        db = make_db()
        frontend = QueryFrontend(db)
        frontend.open_session()
        assert frontend.reap_idle_sessions() == 0
        assert frontend.session_count == 1
        db.close()

    def test_idle_sessions_reaped_after_ttl(self):
        db, clock, frontend = self._frontend(ttl=10.0)
        frontend.open_session()
        frontend.open_session()
        clock.advance(10.5)
        assert frontend.reap_idle_sessions() == 2
        assert frontend.session_count == 0
        assert frontend.counters.get("sessions.reaped") == 2
        db.close()

    def test_activity_refreshes_the_clock(self):
        db, clock, frontend = self._frontend(ttl=10.0)
        client = ServiceClient(frontend)
        idle = frontend.open_session()
        clock.advance(8.0)
        client.query(1)  # refreshes the client's session, not `idle`
        clock.advance(4.0)
        assert frontend.reap_idle_sessions() == 1
        assert frontend.session_count == 1
        with pytest.raises(ProtocolError, match="unknown session"):
            frontend.session_suite(idle)
        client.query(2)  # survivor still works
        db.close()

    def test_reaped_session_requests_refused(self):
        db, clock, frontend = self._frontend(ttl=5.0)
        client = ServiceClient(frontend)
        clock.advance(6.0)
        assert frontend.reap_idle_sessions() == 1
        with pytest.raises(ProtocolError, match="unknown session"):
            client.query(0)
        db.close()

    def test_reap_drops_reply_cache_entries(self):
        db, clock, frontend = self._frontend(ttl=5.0)
        session_id = frontend.open_session()
        suite = frontend.session_suite(session_id)
        sealed = suite.encrypt_page(
            protocol.encode_client_message(protocol.Query(1))
        )
        frontend.serve(session_id, sealed)
        assert len(frontend._reply_cache) == 1
        clock.advance(6.0)
        assert frontend.reap_idle_sessions() == 1
        assert len(frontend._reply_cache) == 0
        db.close()

    def test_bad_ttl_rejected(self):
        db = make_db()
        with pytest.raises(ProtocolError, match="session_ttl"):
            QueryFrontend(db, session_ttl=0.0)
        db.close()


class TestReplyCachePinning:
    """Eviction must never remove a session's most recent (acknowledged)
    reply: it is exactly what a client retransmits after failover, and
    evicting it would re-execute an acknowledged mutation."""

    def test_latest_reply_per_session_survives_churn(self):
        cache = SealedReplyCache(capacity=4)
        # Session 1's acknowledged reply awaits a possible retransmit
        # while session 2 churns the cache well past its bound.
        cache.put(1, b"acked request", b"pinned reply")
        for index in range(10):
            cache.put(2, b"req-%d" % index, b"reply-%d" % index)
        # The bound held — churn evicted session 2's *older* entries —
        # and both sessions' latest replies are still present.
        assert len(cache) == 4
        assert cache.get(1, b"acked request") == b"pinned reply"
        assert cache.get(2, b"req-9") == b"reply-9"
        assert cache.get(2, b"req-0") is None

    def test_all_pinned_overflows_instead_of_evicting(self):
        # One live session per entry: every entry is a pinned latest, so
        # the cache temporarily exceeds capacity rather than open a
        # double-apply window.
        cache = SealedReplyCache(capacity=2)
        for session_id in range(1, 6):
            cache.put(session_id, b"only", b"reply-%d" % session_id)
        assert len(cache) == 5
        for session_id in range(1, 6):
            assert cache.get(session_id, b"only") is not None

    def test_drop_session_unpins(self):
        cache = SealedReplyCache(capacity=2)
        cache.put(1, b"a", b"ra")
        cache.put(2, b"b", b"rb")
        cache.drop_session(1)
        assert cache.get(1, b"a") is None
        # Unpinned space is reusable: session 2's old entry is now the
        # evictable one once newer traffic arrives.
        cache.put(2, b"c", b"rc")
        cache.put(3, b"d", b"rd")
        assert len(cache) == 2
        assert cache.get(2, b"b") is None
        assert cache.get(2, b"c") == b"rc"

    def test_acked_mutation_dedupes_after_cache_overfill(self):
        """The failover regression, at the frontend level: an update is
        served and acknowledged, the shared cache fills past its bound
        with other sessions' traffic, and the retransmitted sealed bytes
        must still dedupe — not re-execute the mutation."""
        db = make_db()
        frontend = QueryFrontend(
            db, session_id_mode=SESSION_RANDOM,
            reply_cache=SealedReplyCache(capacity=3),
        )
        session_id = frontend.open_session()
        suite = frontend.session_suite(session_id)
        sealed_update = suite.encrypt_page(
            protocol.encode_client_message(
                protocol.Update(3, b"acked write"))
        )
        first = frontend.serve(session_id, sealed_update)
        before = db.engine.request_count
        # Churn: one busy neighbour session floods the cache.
        other = frontend.open_session()
        other_suite = frontend.session_suite(other)
        for page_id in range(8):
            frontend.serve(other, other_suite.encrypt_page(
                protocol.encode_client_message(protocol.Query(page_id))
            ))
        # The retransmission (identical sealed bytes, as after a
        # reconnect or failover) is answered from cache byte-for-byte.
        assert frontend.serve(session_id, sealed_update) == first
        assert frontend.counters.get("requests.duplicate") == 1
        assert db.engine.request_count == before + 8  # churn only
        db.close()


class TestReapingVsInflightRequests:
    """A session with a queued-but-unserved request must not be reaped:
    the server admitted the request, so dropping the session between the
    queue and the worker would refuse work it already accepted."""

    def _frontend(self, ttl=5.0):
        db = make_db()
        clock = FakeTime()
        frontend = QueryFrontend(
            db, session_id_mode=SESSION_RANDOM,
            session_ttl=ttl, time_source=clock,
        )
        return db, clock, frontend

    def test_queued_request_blocks_reaping_until_served(self):
        """The reap-vs-queue race, pinned to its worst interleaving: the
        request is admitted, the TTL expires while it waits in the
        queue, the reaper fires — and the session must survive so the
        worker can still serve the queued request."""
        db, clock, frontend = self._frontend(ttl=5.0)
        session_id = frontend.open_session()
        suite = frontend.session_suite(session_id)
        sealed = suite.encrypt_page(
            protocol.encode_client_message(protocol.Query(2))
        )
        frontend.begin_request(session_id)  # admitted, sitting queued
        clock.advance(6.0)                  # TTL passes while it waits
        assert frontend.reap_idle_sessions() == 0
        assert frontend.session_count == 1
        assert frontend.serve(session_id, sealed) is not None
        frontend.end_request(session_id)
        # With the bracket balanced and the session idle again, the
        # next expiry reaps it normally.
        clock.advance(6.0)
        assert frontend.reap_idle_sessions() == 1
        db.close()

    def test_overlapping_requests_all_must_finish(self):
        db, clock, frontend = self._frontend(ttl=5.0)
        session_id = frontend.open_session()
        frontend.begin_request(session_id)
        frontend.begin_request(session_id)  # pipelined second request
        clock.advance(6.0)
        frontend.end_request(session_id)
        assert frontend.reap_idle_sessions() == 0  # one still in flight
        frontend.end_request(session_id)
        assert frontend.reap_idle_sessions() == 1
        db.close()

    def test_unbalanced_end_is_harmless(self):
        db, clock, frontend = self._frontend(ttl=5.0)
        session_id = frontend.open_session()
        frontend.end_request(session_id)  # stray; never goes negative
        frontend.begin_request(session_id)
        clock.advance(6.0)
        assert frontend.reap_idle_sessions() == 0
        db.close()
