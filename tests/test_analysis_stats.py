"""Statistical machinery: chi-square, Wilson intervals, MLE fits, Spearman."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    chi_square_test,
    fit_geometric,
    spearman_rank_correlation,
    wilson_interval,
)
from repro.crypto.rng import SecureRandom
from repro.errors import ConfigurationError


class TestChiSquare:
    def test_perfect_fit_has_high_p(self):
        result = chi_square_test([250, 250, 250, 250], [0.25] * 4)
        assert result.statistic == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)
        assert not result.rejects_at(0.01)

    def test_gross_misfit_rejected(self):
        result = chi_square_test([900, 50, 25, 25], [0.25] * 4)
        assert result.p_value < 1e-10
        assert result.rejects_at(0.01)

    def test_against_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        observed = [30, 45, 60, 40, 25]
        probabilities = [0.2, 0.2, 0.25, 0.2, 0.15]
        ours = chi_square_test(observed, probabilities)
        expected = [sum(observed) * p for p in probabilities]
        reference = scipy_stats.chisquare(observed, expected)
        assert ours.statistic == pytest.approx(reference.statistic)
        assert ours.p_value == pytest.approx(reference.pvalue, rel=1e-8)

    def test_degrees_of_freedom(self):
        result = chi_square_test([10, 10, 10], [1 / 3] * 3)
        assert result.degrees_of_freedom == 2

    def test_true_distribution_rarely_rejected(self):
        """Sampling from the model itself should usually pass the test."""
        rng = SecureRandom(5)
        probabilities = [0.4, 0.3, 0.2, 0.1]
        cumulative = [0.4, 0.7, 0.9, 1.0]
        rejections = 0
        for _ in range(20):
            counts = [0, 0, 0, 0]
            for _ in range(500):
                roll = rng.random()
                for bin_index, bound in enumerate(cumulative):
                    if roll <= bound:
                        counts[bin_index] += 1
                        break
            if chi_square_test(counts, probabilities).rejects_at(0.01):
                rejections += 1
        assert rejections <= 2  # ~1% expected rejection rate

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chi_square_test([1, 2], [0.5])
        with pytest.raises(ConfigurationError):
            chi_square_test([5], [1.0])
        with pytest.raises(ConfigurationError):
            chi_square_test([1, 2], [0.9, 0.3])
        with pytest.raises(ConfigurationError):
            chi_square_test([0, 0], [0.5, 0.5])


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(40, 100)
        assert low < 0.4 < high

    def test_narrows_with_trials(self):
        narrow = wilson_interval(4000, 10000)
        wide = wilson_interval(40, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_extremes_clamped(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0
        low, high = wilson_interval(10, 10)
        assert high == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(11, 10)


class TestGeometricFit:
    def test_recovers_parameter(self):
        rng = SecureRandom(7)
        m = 10
        samples = []
        for _ in range(4000):
            t = 1
            while rng.random() >= 1 / m:
                t += 1
            samples.append(t)
        assert fit_geometric(samples) == pytest.approx(1 / m, rel=0.08)

    def test_degenerate(self):
        assert fit_geometric([1, 1, 1]) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_geometric([])
        with pytest.raises(ConfigurationError):
            fit_geometric([0, 1])


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman_rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman_rank_correlation([1, 2, 3, 4], [9, 7, 5, 3]) == pytest.approx(-1.0)

    def test_nonlinear_monotone_still_one(self):
        x = [1.0, 2.0, 3.0, 4.0, 5.0]
        y = [math.exp(v) for v in x]
        assert spearman_rank_correlation(x, y) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = SecureRandom(9)
        a = [rng.random() for _ in range(500)]
        b = [rng.random() for _ in range(500)]
        assert abs(spearman_rank_correlation(a, b)) < 0.12

    def test_ties_handled(self):
        rho = spearman_rank_correlation([1, 1, 2, 2], [3, 3, 4, 4])
        assert rho == pytest.approx(1.0)

    def test_constant_sequence_gives_zero(self):
        assert spearman_rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_against_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = SecureRandom(10)
        a = [rng.random() for _ in range(60)]
        b = [v + 0.3 * rng.random() for v in a]
        ours = spearman_rank_correlation(a, b)
        reference = scipy_stats.spearmanr(a, b).statistic
        assert ours == pytest.approx(reference, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spearman_rank_correlation([1], [1])
        with pytest.raises(ConfigurationError):
            spearman_rank_correlation([1, 2], [1])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2,
                    max_size=40))
    def test_self_correlation_property(self, values):
        if len(set(values)) > 1:
            assert spearman_rank_correlation(values, values) == pytest.approx(1.0)
