"""Permutations and the oblivious shuffle (Batcher network)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import SecureRandom
from repro.crypto.suite import CipherSuite
from repro.errors import ConfigurationError
from repro.shuffle.oblivious import (
    ObliviousShuffler,
    batcher_network,
    direct_permute,
    network_size,
)
from repro.shuffle.permutation import Permutation
from repro.sim.clock import VirtualClock
from repro.storage.disk import DiskStore
from repro.storage.page import Page
from repro.storage.trace import READ


class TestPermutation:
    def test_identity(self):
        p = Permutation.identity(5)
        assert p.is_identity()
        assert [p.apply(i) for i in range(5)] == list(range(5))

    def test_apply_invert_roundtrip(self):
        p = Permutation([2, 0, 3, 1])
        for i in range(4):
            assert p.invert(p.apply(i)) == i

    def test_inverse_composes_to_identity(self):
        p = Permutation.random(20, SecureRandom(1))
        assert p.compose(p.inverse()).is_identity()
        assert p.inverse().compose(p).is_identity()

    def test_compose_order(self):
        p = Permutation([1, 2, 0])
        q = Permutation([2, 1, 0])
        composed = p.compose(q)
        for i in range(3):
            assert composed.apply(i) == p.apply(q.apply(i))

    def test_random_is_valid_permutation(self):
        p = Permutation.random(50, SecureRandom(2))
        assert sorted(p.as_list()) == list(range(50))

    def test_random_varies_with_seed(self):
        assert Permutation.random(30, SecureRandom(1)) != Permutation.random(
            30, SecureRandom(2)
        )

    def test_equality_and_hash(self):
        assert Permutation([1, 0]) == Permutation([1, 0])
        assert hash(Permutation([1, 0])) == hash(Permutation([1, 0]))
        assert Permutation([1, 0]) != Permutation([0, 1])

    def test_invalid_mappings(self):
        with pytest.raises(ConfigurationError):
            Permutation([])
        with pytest.raises(ConfigurationError):
            Permutation([0, 0])
        with pytest.raises(ConfigurationError):
            Permutation([0, 2])
        with pytest.raises(ConfigurationError):
            Permutation([0, 1]).apply(5)
        with pytest.raises(ConfigurationError):
            Permutation([0, 1]).compose(Permutation([0, 1, 2]))

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=1, max_value=64), seed=st.integers(0, 1000))
    def test_random_property(self, n, seed):
        p = Permutation.random(n, SecureRandom(seed))
        assert sorted(p.apply(i) for i in range(n)) == list(range(n))


class TestBatcherNetwork:
    @pytest.mark.parametrize("n", list(range(1, 18)) + [32, 33, 64])
    def test_network_sorts(self, n):
        rng = SecureRandom(n)
        data = [rng.randrange(100) for _ in range(n)]
        for i, j in batcher_network(n):
            assert 0 <= i < j < n
            if data[i] > data[j]:
                data[i], data[j] = data[j], data[i]
        assert data == sorted(data)

    def test_network_sorts_adversarial_inputs(self):
        for n in (8, 13):
            for pattern in (list(range(n)), list(range(n))[::-1], [0] * n):
                data = list(pattern)
                for i, j in batcher_network(n):
                    if data[i] > data[j]:
                        data[i], data[j] = data[j], data[i]
                assert data == sorted(pattern)

    def test_network_is_data_independent(self):
        """The comparator sequence depends on n only."""
        assert list(batcher_network(16)) == list(batcher_network(16))

    def test_network_size_power_of_two(self):
        # Batcher odd-even merge sort on 8 elements uses 19 comparators.
        assert network_size(8) == 19

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            list(batcher_network(0))

    @settings(max_examples=30, deadline=None)
    @given(data=st.lists(st.integers(0, 50), min_size=1, max_size=40))
    def test_sorts_property(self, data):
        values = list(data)
        for i, j in batcher_network(len(values)):
            if values[i] > values[j]:
                values[i], values[j] = values[j], values[i]
        assert values == sorted(data)


class TestObliviousShuffler:
    def _shuffler(self, seed=1, capacity=8):
        suite = CipherSuite(b"shuffle-key", backend="blake2", rng=SecureRandom(seed))
        return ObliviousShuffler(suite, SecureRandom(seed + 1), capacity)

    def _disk_for(self, shuffler, n):
        return DiskStore(n, shuffler.tagged_frame_size, clock=VirtualClock())

    def test_shuffle_produces_permutation(self):
        shuffler = self._shuffler()
        pages = [Page(i, bytes([i])) for i in range(16)]
        disk = self._disk_for(shuffler, 16)
        layout = shuffler.shuffle(pages, disk)
        assert sorted(layout) == list(range(16))

    def test_shuffle_moves_pages(self):
        shuffler = self._shuffler(seed=3)
        pages = [Page(i) for i in range(32)]
        layout = shuffler.shuffle(pages, self._disk_for(shuffler, 32))
        assert layout != list(range(32))

    def test_pages_intact_after_shuffle(self):
        shuffler = self._shuffler(seed=4)
        pages = [Page(i, bytes([i, i])) for i in range(12)]
        disk = self._disk_for(shuffler, 12)
        layout = shuffler.shuffle(pages, disk)
        for location in range(12):
            _tag, page = shuffler.unseal_tagged(disk.read(location))
            assert page.page_id == layout[location]
            assert page.payload == bytes([layout[location], layout[location]])

    def test_access_pattern_is_data_independent(self):
        """Two shuffles of different data produce identical trace shapes."""

        def trace_of(seed):
            shuffler = self._shuffler(seed=seed)
            pages = [Page(i, bytes([seed % 250]))
                     for i in range(10)]
            disk = self._disk_for(shuffler, 10)
            shuffler.shuffle(pages, disk)
            return [(e.op, e.location, e.count) for e in disk.trace]

        assert trace_of(5) == trace_of(6)

    def test_every_compare_rewrites_both_frames(self):
        shuffler = self._shuffler(seed=7)
        pages = [Page(i) for i in range(8)]
        disk = self._disk_for(shuffler, 8)
        shuffler.ingest(pages, disk)
        before = len(disk.trace)
        shuffler.sort(disk)
        sort_events = disk.trace.events[before:]
        reads = sum(1 for e in sort_events if e.op == READ)
        writes = len(sort_events) - reads
        assert reads == writes == 2 * network_size(8)

    def test_uniformity_coarse(self):
        """Each page lands in each slot roughly uniformly across seeds."""
        n, rounds = 4, 400
        counts = [[0] * n for _ in range(n)]
        for seed in range(rounds):
            shuffler = self._shuffler(seed=seed + 100, capacity=0)
            pages = [Page(i) for i in range(n)]
            layout = shuffler.shuffle(pages, self._disk_for(shuffler, n))
            for location, page_id in enumerate(layout):
                counts[page_id][location] += 1
        expected = rounds / n
        for row in counts:
            for count in row:
                assert 0.5 * expected < count < 1.6 * expected, counts

    def test_frame_size_mismatch(self):
        shuffler = self._shuffler()
        wrong_disk = DiskStore(4, 10, clock=VirtualClock())
        with pytest.raises(ConfigurationError):
            shuffler.ingest([Page(i) for i in range(4)], wrong_disk)

    def test_page_count_mismatch(self):
        shuffler = self._shuffler()
        disk = self._disk_for(shuffler, 4)
        with pytest.raises(ConfigurationError):
            shuffler.ingest([Page(0)], disk)


class TestDirectPermute:
    def test_applies_forward(self):
        pages = [Page(i) for i in range(4)]
        p = Permutation([2, 0, 3, 1])
        result = direct_permute(pages, p)
        for i in range(4):
            assert result[p.apply(i)].page_id == i

    def test_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            direct_permute([Page(0)], Permutation([0, 1]))
