"""Sealed replication unit tests (repro.cluster.replication).

The cross-member integration drills live in test_cluster_router.py and
test_crash_restart.py; this file pins down the pieces in isolation: the
sealed record codec, the origin-side log (cover traffic, durability,
semi-sync waits), and the peer-side applier's idempotent sequence
tracking.
"""

from __future__ import annotations

import os
import threading

import pytest

from tests.helpers import make_db
from repro.baselines import make_records
from repro.cluster.replication import (
    KIND_DELETE,
    KIND_NOOP,
    KIND_WRITE,
    ReplicationApplier,
    ReplicationLog,
    decode_record,
    encode_record,
    record_size,
)
from repro.core.snapshot import (
    load_sealed_sidecar,
    save_sealed_sidecar,
    save_snapshot,
)
from repro.errors import StorageError

RECORDS = make_records(40, 16)


@pytest.fixture()
def db():
    database = make_db(num_records=40)
    yield database
    database.close()


class TestRecordCodec:
    def test_roundtrip_all_kinds(self, db):
        cop = db.cop
        for kind, page_id, payload in [
            (KIND_NOOP, 0, b""),
            (KIND_WRITE, 7, b"new payload"),
            (KIND_DELETE, 9, b""),
        ]:
            sealed = encode_record(cop, 3, kind, page_id, payload)
            record = decode_record(cop, sealed)
            assert (record.seq, record.kind, record.page_id,
                    record.payload) == (3, kind, page_id, payload)

    def test_all_records_same_size(self, db):
        """The privacy property: a noop cover, a delete, and a max-size
        write are indistinguishable ciphertexts."""
        cop = db.cop
        sizes = {
            len(encode_record(cop, 1, KIND_NOOP, 0, b"")),
            len(encode_record(cop, 2, KIND_DELETE, 30, b"")),
            len(encode_record(cop, 3, KIND_WRITE, 5,
                              b"x" * cop.page_capacity)),
        }
        assert len(sizes) == 1

    def test_payload_bound_enforced(self, db):
        with pytest.raises(StorageError, match="page bound"):
            encode_record(db.cop, 1, KIND_WRITE, 0,
                          b"x" * (db.cop.page_capacity + 1))

    def test_tampered_record_rejected(self, db):
        sealed = bytearray(encode_record(db.cop, 1, KIND_WRITE, 4, b"data"))
        sealed[len(sealed) // 2] ^= 0x40
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            decode_record(db.cop, bytes(sealed))

    def test_cross_replica_readable(self, db, tmp_path):
        """A replica (same master key, different RNG lineage) must unseal
        the record; a foreign deployment must not."""
        from repro.core.snapshot import bootstrap_replica
        replica = bootstrap_replica(db, str(tmp_path / "boot"), seed=9)
        try:
            sealed = encode_record(db.cop, 5, KIND_WRITE, 2, b"shared")
            assert decode_record(replica.cop, sealed).payload == b"shared"
        finally:
            replica.close()
        foreign = make_db(num_records=8, master_key=b"someone-else's key")
        try:
            from repro.errors import ReproError
            with pytest.raises(ReproError):
                decode_record(foreign.cop, sealed)
        finally:
            foreign.close()

    def test_record_size_is_header_plus_page(self, db):
        assert record_size(db.cop) == 4 + 8 + 1 + 8 + 4 + db.cop.page_capacity


class TestReplicationLog:
    def test_emit_assigns_dense_sequences(self, db):
        log = ReplicationLog(db.cop, "o:1")
        assert log.emit("write", 1, b"a") == 1
        assert log.emit("noop") == 2
        assert log.emit("delete", 2) == 3
        assert log.last_seq == 3
        assert [seq for seq, _ in log.records_since(0)] == [1, 2, 3]

    def test_cover_traffic_off_drops_noops(self, db):
        log = ReplicationLog(db.cop, "o:1", cover_traffic=False)
        assert log.emit("noop") == 0
        assert log.emit("write", 1, b"a") == 1
        assert log.emit("noop") == 1  # unchanged high-water mark
        assert log.last_seq == 1

    def test_durable_backlog_reloads_and_discards_torn_tail(self, db, tmp_path):
        path = str(tmp_path / "repl.log")
        log = ReplicationLog(db.cop, "o:1", path=path)
        log.emit("write", 1, b"a")
        log.emit("write", 2, b"b")
        log.close()
        # Torn tail: a partial header from a crash mid-append.
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00\x03")
        reloaded = ReplicationLog(db.cop, "o:1", path=path)
        try:
            assert reloaded.last_seq == 2
            seq, sealed = reloaded.records_since(1)[0]
            assert decode_record(db.cop, sealed).payload == b"b"
            # The torn bytes were truncated away; appending continues.
            assert reloaded.emit("write", 3, b"c") == 3
        finally:
            reloaded.close()

    def test_wait_replicated_tracks_connected_peers_only(self, db):
        log = ReplicationLog(db.cop, "o:1", wait_timeout=0.2)
        seq = log.emit("write", 1, b"a")
        # No peers at all: trivially replicated.
        assert log.wait_replicated(seq)
        log.register_peer("peer:1")
        # Disconnected peers are not waited on (they catch up later).
        assert log.wait_replicated(seq)
        log.mark_connected("peer:1")
        assert not log.wait_replicated(seq)  # connected + lagging: timeout
        assert log.counters.get("wait_timeouts") == 1

        waiter_result = []

        def wait():
            waiter_result.append(log.wait_replicated(seq, timeout=5.0))

        thread = threading.Thread(target=wait)
        thread.start()
        log.record_ack("peer:1", seq)
        thread.join(timeout=5.0)
        assert waiter_result == [True]

    def test_wait_unblocks_when_lagging_peer_disconnects(self, db):
        log = ReplicationLog(db.cop, "o:1")
        seq = log.emit("write", 1, b"a")
        log.mark_connected("peer:1")
        result = []
        thread = threading.Thread(
            target=lambda: result.append(log.wait_replicated(seq, timeout=5.0))
        )
        thread.start()
        log.mark_disconnected("peer:1")
        thread.join(timeout=5.0)
        assert result == [True]


class TestReplicationApplier:
    def _sealed(self, db, seq, kind=KIND_WRITE, page_id=1, payload=b"x"):
        return encode_record(db.cop, seq, kind, page_id, payload)

    def test_apply_in_order(self, db):
        applier = ReplicationApplier(db)
        applier.apply("o:1", 1, self._sealed(db, 1, payload=b"first"))
        applier.apply("o:1", 2, self._sealed(db, 2, payload=b"second"))
        assert applier.applied_for("o:1") == 2
        assert db.engine.retrieve(1).payload == b"second"

    def test_duplicates_apply_exactly_once(self, db):
        """The netchaos duplicate-plan guarantee: a record delivered
        twice mutates once."""
        applier = ReplicationApplier(db)
        sealed = self._sealed(db, 1, payload=b"once")
        before = db.engine.request_count
        applier.apply("o:1", 1, sealed)
        applier.apply("o:1", 1, sealed)
        assert db.engine.request_count == before + 1
        assert applier.counters.get("duplicates") == 1
        assert applier.counters.get("applied") == 1

    def test_out_of_order_waits_for_gap(self, db):
        applier = ReplicationApplier(db)
        applier.apply("o:1", 2, self._sealed(db, 2, payload=b"late"))
        assert applier.applied_for("o:1") == 0  # parked, not applied
        assert applier.counters.get("out_of_order") == 1
        applier.apply("o:1", 1, self._sealed(db, 1, payload=b"early"))
        # The gap filled: both drained, in order.
        assert applier.applied_for("o:1") == 2
        assert db.engine.retrieve(1).payload == b"late"

    def test_origins_tracked_independently(self, db):
        applier = ReplicationApplier(db)
        applier.apply("o:1", 1, self._sealed(db, 1, page_id=1, payload=b"a"))
        applier.apply("o:2", 1, self._sealed(db, 1, page_id=2, payload=b"b"))
        assert applier.applied_for("o:1") == 1
        assert applier.applied_for("o:2") == 1

    def test_spliced_sequence_detected(self, db):
        """A host replaying record body N under envelope seq M is caught
        by the sealed inner sequence and skipped (counted as an error),
        without wedging the stream."""
        applier = ReplicationApplier(db)
        spliced = self._sealed(db, 9, payload=b"evil")
        applier.apply("o:1", 1, spliced)
        assert applier.counters.get("errors") == 1
        assert applier.applied_for("o:1") == 1  # seq advanced anyway
        applier.apply("o:1", 2, self._sealed(db, 2, payload=b"good"))
        assert db.engine.retrieve(1).payload == b"good"

    def test_delete_of_missing_page_burns_cover_request(self, db):
        applier = ReplicationApplier(db)
        db.engine.delete(3)
        before = db.engine.request_count
        applier.apply("o:1", 1, self._sealed(db, 1, kind=KIND_DELETE,
                                             page_id=3, payload=b""))
        # Identical trace shape: the apply still costs one request.
        assert db.engine.request_count == before + 1
        assert applier.applied_for("o:1") == 1

    def test_state_roundtrip_via_sealed_sidecar(self, db, tmp_path):
        """The applied-vector checkpoint that rides with a snapshot:
        save sealed, reload, restore — catch-up replays only the tail."""
        applier = ReplicationApplier(db)
        applier.apply("o:1", 1, self._sealed(db, 1, payload=b"a"))
        applier.apply("o:2", 1, self._sealed(db, 1, payload=b"b"))
        directory = str(tmp_path / "snap")
        save_snapshot(db, directory)
        save_sealed_sidecar(db, directory, "repl-state",
                            applier.encode_state())
        blob = load_sealed_sidecar(db, directory, "repl-state")
        assert blob is not None
        state = ReplicationApplier.decode_state(blob)
        assert state == {"o:1": 1, "o:2": 1}
        fresh = ReplicationApplier(db)
        fresh.restore_state(state)
        assert fresh.applied_for("o:1") == 1
        # Replaying the already-checkpointed record is now a duplicate.
        fresh.apply("o:1", 1, self._sealed(db, 1, payload=b"a"))
        assert fresh.counters.get("duplicates") == 1

    def test_missing_sidecar_returns_none(self, db, tmp_path):
        directory = str(tmp_path / "snap")
        save_snapshot(db, directory)
        assert load_sealed_sidecar(db, directory, "repl-state") is None

    def test_corrupt_state_blob_rejected(self, db):
        applier = ReplicationApplier(db)
        applier.apply("o:1", 1, self._sealed(db, 1))
        blob = applier.encode_state()
        with pytest.raises(StorageError):
            ReplicationApplier.decode_state(blob + b"trailing")
        with pytest.raises(StorageError):
            ReplicationApplier.decode_state(blob[:-1])


class TestBacklogCompaction:
    def test_compact_drops_prefix_and_reindexes(self, db):
        log = ReplicationLog(db.cop, "o:1")
        for i in range(8):
            log.emit("write", i % 4, b"p%d" % i)
        assert log.compact(5) == 5
        assert log.compacted_seq == 5
        assert log.last_seq == 8
        assert [seq for seq, _ in log.records_since(5)] == [6, 7, 8]
        seq, sealed = log.next_record(6)
        assert seq == 7
        assert decode_record(db.cop, sealed).seq == 7
        # Sequences keep growing from the old high-water mark.
        assert log.emit("write", 1, b"after") == 9

    def test_compact_clamps_and_noops(self, db):
        log = ReplicationLog(db.cop, "o:1")
        log.emit("write", 1, b"a")
        log.emit("write", 2, b"b")
        assert log.compact(100) == 2  # clamped to last_seq
        assert log.last_seq == 2
        assert log.compact(1) == 0  # below the base: nothing to do
        assert log.counters.get("compacted") == 2

    def test_stale_consumer_is_refused_not_skipped(self, db):
        log = ReplicationLog(db.cop, "o:1")
        for i in range(6):
            log.emit("write", i % 4, b"x")
        log.compact(4)
        with pytest.raises(StorageError):
            log.records_since(3)
        with pytest.raises(StorageError):
            log.next_record(2)
        assert log.counters.get("too_stale") == 2

    def test_durable_file_trimmed_and_reloads_with_base(self, db, tmp_path):
        path = str(tmp_path / "repl-a.log")
        log = ReplicationLog(db.cop, "o:1", path=path)
        for i in range(10):
            log.emit("write", i % 4, b"p%d" % i)
        size_full = os.path.getsize(path)
        log.compact(7)
        assert os.path.getsize(path) < size_full
        log.emit("write", 0, b"tail")
        log.close()

        reloaded = ReplicationLog(db.cop, "o:1", path=path)
        try:
            assert reloaded.compacted_seq == 7
            assert reloaded.last_seq == 11
            seqs = [seq for seq, _ in reloaded.records_since(7)]
            assert seqs == [8, 9, 10, 11]
            for seq, sealed in reloaded.records_since(7):
                assert decode_record(db.cop, sealed).seq == seq
        finally:
            reloaded.close()

    def test_snapshot_then_compact_catchup_flow(self, db, tmp_path):
        """The intended lifecycle: checkpoint applied state with a
        snapshot sidecar, compact everything the snapshot covers, and
        serve newer records from the trimmed stream."""
        log = ReplicationLog(db.cop, "o:1")
        applier = ReplicationApplier(db)
        for i in range(4):
            seq = log.emit("noop")
            applier.apply("o:1", seq, log.records_since(seq - 1)[0][1])
        directory = str(tmp_path / "snap")
        save_snapshot(db, directory)
        save_sealed_sidecar(db, directory, "repl-state",
                            applier.encode_state())
        log.compact(applier.applied_for("o:1"))
        assert log.compacted_seq == 4
        # A rebuilt peer restores the vector, then streams only the tail.
        state = ReplicationApplier.decode_state(
            load_sealed_sidecar(db, directory, "repl-state")
        )
        assert state == {"o:1": 4}
        log.emit("noop")
        assert [seq for seq, _ in log.records_since(state["o:1"])] == [5]
