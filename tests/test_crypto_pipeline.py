"""Keystream prefetch pipeline: determinism, hit accounting, lifecycle.

The load-bearing property is that enabling the pipeline — sync or
background — changes *nothing* observable except wall time: payloads,
disk frames, virtual clock and RNG streams must be byte/tick-identical
to a run without it.  The hit/miss counters themselves are deterministic
too (one expected miss per request: the unpredictable (k+1)-th frame).
"""

import pytest

from repro.core.database import PirDatabase
from repro.crypto.pipeline import KeystreamPipeline
from repro.crypto.rng import SecureRandom
from repro.crypto.suite import CipherSuite
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry

RECORDS = [f"page-{i:03d}".encode() * 3 for i in range(48)]
K = 8  # block size → expected steady-state hit rate k/(k+1)


def _make_db(pipeline, metrics=None, backend="aes", journal=None):
    return PirDatabase.create(
        RECORDS,
        cache_capacity=4,
        block_size=K,
        page_capacity=48,
        seed=1234,
        cipher_backend=backend,
        keystream_pipeline=pipeline,
        metrics=metrics,
        journal=journal,
    )


def _run_workload(db, queries=30):
    payloads = [db.query(i % len(RECORDS)) for i in range(queries)]
    frames = [db.disk.peek(loc) for loc in range(db.disk.num_locations)]
    return payloads, frames, db.clock.now


# -- unit behaviour ----------------------------------------------------------


def test_pipeline_take_consumes_entry():
    suite = CipherSuite(b"unit-key", backend="aes", rng=SecureRandom(3))
    pipe = KeystreamPipeline()
    nonce = bytes(12)
    pipe.note_written(0, suite, nonce)
    assert pipe.prefetch([0], 64) == 64
    expected = suite.compute_keystream(nonce, 64)
    assert pipe.take(suite, nonce, 64) == expected
    # consumed: the second take for the same entry is a miss
    assert pipe.take(suite, nonce, 64) is None
    assert pipe.counters.get("hit") == 1
    assert pipe.counters.get("miss") == 1


def test_pipeline_unknown_location_and_foreign_suite_miss():
    suite = CipherSuite(b"unit-key", backend="aes", rng=SecureRandom(3))
    other = CipherSuite(b"other-key", backend="aes", rng=SecureRandom(4))
    pipe = KeystreamPipeline()
    assert pipe.prefetch([5], 64) == 0  # nonce never recorded
    pipe.note_written(0, suite, bytes(12))
    pipe.prefetch([0], 64)
    # Entries are keyed by suite identity: another suite cannot consume them.
    assert pipe.take(other, bytes(12), 64) is None
    assert pipe.take(suite, bytes(12), 64) is not None


def test_pipeline_memory_bound_evicts_oldest():
    suite = CipherSuite(b"unit-key", backend="aes", rng=SecureRandom(3))
    pipe = KeystreamPipeline(max_bytes=3 * 64)
    for loc in range(5):
        pipe.note_written(loc, suite, loc.to_bytes(12, "big"))
    pipe.prefetch(range(5), 64)
    assert pipe.cached_bytes <= 3 * 64
    assert pipe.counters.get("evicted") == 2
    # Oldest entries went first; the newest survives.
    assert pipe.take(suite, (4).to_bytes(12, "big"), 64) is not None
    assert pipe.take(suite, (0).to_bytes(12, "big"), 64) is None


def test_pipeline_rejects_nonpositive_bound():
    with pytest.raises(ConfigurationError):
        KeystreamPipeline(max_bytes=0)


def test_pipeline_close_idempotent_and_inert():
    pipe = KeystreamPipeline(background=True)
    pipe.close()
    pipe.close()
    suite = CipherSuite(b"unit-key", backend="aes", rng=SecureRandom(3))
    pipe.note_written(0, suite, bytes(12))
    assert pipe.prefetch([0], 64) == 0  # closed: nothing scheduled


def test_database_rejects_unknown_pipeline_mode():
    with pytest.raises(ConfigurationError):
        _make_db("eager")


# -- determinism at the database level ---------------------------------------


@pytest.mark.parametrize("mode", ["sync", "background"])
def test_pipeline_is_byte_identical_to_disabled(mode):
    db_off = _make_db(None)
    base = _run_workload(db_off)
    with _make_db(mode) as db_on:
        assert db_on.cop.pipeline is not None
        result = _run_workload(db_on)
        db_on.consistency_check()
    assert result == base


def test_pipeline_hit_rate_and_counters():
    metrics = MetricsRegistry()
    with _make_db("sync", metrics=metrics) as db:
        queries = 40
        _run_workload(db, queries)
        counters = db.cop.pipeline.counters
        # Every request hits for the k scheduled block frames and misses
        # exactly once, on the unpredictable (k+1)-th frame.
        assert counters.get("hit") == queries * K
        assert counters.get("miss") == queries
        assert db.cop.pipeline.hit_rate() == pytest.approx(K / (K + 1))
        # Counters mirror into the shared registry under the pipeline prefix.
        assert metrics.counter("pipeline.hit").value == queries * K


def test_pipeline_survives_key_rotation_byte_identically():
    def rotate_workload(db):
        out = [db.query(i) for i in range(10)]
        db.rotate_master_key(b"fresh-key")
        out += [db.query(i % len(RECORDS)) for i in range(db.params.scan_period + 4)]
        assert db.engine.rotation_requests_remaining is None  # completed
        frames = [db.disk.peek(loc) for loc in range(db.disk.num_locations)]
        return out, frames, db.clock.now

    base = rotate_workload(_make_db(None))
    with _make_db("sync") as db:
        assert rotate_workload(db) == base
        # Post-rotation steady state keeps hitting (new-key entries).
        hits_before = db.cop.pipeline.counters.get("hit")
        db.query(0)
        assert db.cop.pipeline.counters.get("hit") == hits_before + K
        # consistency_check decrypts every location; it consumes any
        # prefetched entries (benign) but must still pass with them live.
        db.consistency_check()


def test_pipeline_with_journal_and_writes_byte_identical():
    def workload(db):
        db.update(3, b"updated!")
        db.delete(7)
        new_id = db.insert(b"fresh page")
        out = [db.query(i % len(RECORDS)) for i in range(12) if i != 7]
        out.append(db.query(new_id))
        frames = [db.disk.peek(loc) for loc in range(db.disk.num_locations)]
        return out, frames, db.clock.now

    from repro.core.journal import MemoryJournal

    base = workload(_make_db(None, journal=MemoryJournal()))
    with _make_db("sync", journal=MemoryJournal()) as db:
        assert workload(db) == base


def test_pipeline_noop_on_null_backend():
    with _make_db("sync", backend="null") as db:
        _run_workload(db, 10)
        counters = db.cop.pipeline.counters.as_dict()
        # Nothing to cache and the decrypt path never consults: all zero.
        assert counters.get("hit", 0) == 0
        assert counters.get("miss", 0) == 0
        assert counters.get("prefetched", 0) == 0


def test_pipeline_blake2_backend_hits_too():
    with _make_db("sync", backend="blake2") as db:
        queries = 20
        base_off = _make_db(None, backend="blake2")
        assert _run_workload(db, queries) == _run_workload(base_off, queries)
        assert db.cop.pipeline.counters.get("hit") == queries * K
