"""ASCII plotting helpers and the long-run mixing analysis."""

from __future__ import annotations

import pytest

from repro.analysis.mixing import measure_displacement, measure_location_mixing
from repro.analysis.plots import ascii_bar_chart, ascii_plot
from repro.crypto.rng import SecureRandom
from repro.errors import ConfigurationError

from tests.helpers import make_db


class TestAsciiPlot:
    def test_renders_points_and_legend(self):
        chart = ascii_plot(
            [("ours", [1, 10, 100], [0.5, 0.05, 0.005])],
            width=30, height=8, log_x=True, log_y=True,
            title="demo", x_label="m", y_label="s",
        )
        assert "demo" in chart
        assert "*" in chart
        assert "ours" in chart
        assert "[s log] vs [m log]" in chart

    def test_multiple_series_distinct_markers(self):
        chart = ascii_plot(
            [("a", [1, 2], [1, 2]), ("b", [1, 2], [2, 1])],
            width=20, height=6, log_y=False,
        )
        assert "*" in chart and "o" in chart

    def test_constant_series_handled(self):
        chart = ascii_plot([("flat", [1, 2, 3], [5.0, 5.0, 5.0])],
                           log_y=False)
        assert "flat" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([])
        with pytest.raises(ConfigurationError):
            ascii_plot([("bad", [1], [1, 2])])
        with pytest.raises(ConfigurationError):
            ascii_plot([("neg", [1], [-1])], log_y=True)

    def test_grid_dimensions(self):
        chart = ascii_plot([("s", [1, 2], [1, 2])], width=25, height=5,
                           log_y=False)
        plot_rows = [line for line in chart.splitlines() if "|" in line]
        assert len(plot_rows) == 5
        assert all(line.count("|") == 2 for line in plot_rows)


class TestAsciiBarChart:
    def test_bars_scale_with_values(self):
        chart = ascii_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_value_bar(self):
        chart = ascii_bar_chart(["z"], [0.0])
        assert "#" not in chart.splitlines()[0].split("|")[1].rstrip()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_bar_chart([], [])
        with pytest.raises(ConfigurationError):
            ascii_bar_chart(["a"], [-1])
        with pytest.raises(ConfigurationError):
            ascii_bar_chart(["a"], [1, 2])


class TestMixing:
    @pytest.fixture(scope="class")
    def db(self):
        return make_db(num_records=40, reserve_fraction=0.2, seed=321,
                       cipher_backend="null", trace_enabled=False)

    def test_displacement_grows_then_saturates(self, db):
        series = measure_displacement(db, total_requests=1200,
                                      checkpoints=6, rng=SecureRandom(1))
        assert len(series.checkpoints) == len(series.mean_displacement)
        # Early displacement far below the uniform plateau; final near it.
        assert series.mean_displacement[0] < series.mean_displacement[-1]
        assert 0.6 < series.final_relative_to_uniform() < 1.5

    def test_location_mixing_near_uniform(self):
        db = make_db(num_records=40, reserve_fraction=0.2, seed=322,
                     cipher_backend="null", trace_enabled=False)
        tv = measure_location_mixing(db, tracked_page=3, samples=120,
                                     rng=SecureRandom(2),
                                     interval_requests=60)
        # 120 samples over 48 locations: multinomial noise floor ~ 0.25;
        # a *non*-mixing scheme would sit near 1.0.
        assert tv < 0.45

    def test_validation(self, db):
        with pytest.raises(ConfigurationError):
            measure_displacement(db, total_requests=0)
        with pytest.raises(ConfigurationError):
            measure_location_mixing(db, 0, samples=0)
