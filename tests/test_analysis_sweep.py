"""Executed parameter sweeps and CSV export."""

from __future__ import annotations

import csv

import pytest

from repro.analysis.sweep import EnginePoint, run_engine_sweep, write_csv
from repro.errors import ConfigurationError


class TestEngineSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return run_engine_sweep(
            num_records=40,
            cache_capacities=[4, 8, 16],
            trials=120,
            workload_length=60,
            seed=7,
        )

    def test_one_point_per_cache_size(self, points):
        assert [p.cache_capacity for p in points] == [4, 8, 16]

    def test_block_size_shrinks_with_cache(self, points):
        block_sizes = [p.block_size for p in points]
        assert block_sizes == sorted(block_sizes, reverse=True)

    def test_latency_decreases_with_cache(self, points):
        latencies = [p.mean_latency for p in points]
        assert latencies == sorted(latencies, reverse=True)

    def test_measured_c_tracks_achieved(self, points):
        for point in points:
            assert point.measured_c == pytest.approx(point.achieved_c, rel=0.5)
            assert point.achieved_c <= point.target_c * (1 + 1e-9)

    def test_storage_grows_with_cache(self, points):
        # At toy scale the shrinking serverBlock term (k+1)B can locally
        # offset the growing cache term mB, so only compare the endpoints.
        assert points[-1].secure_storage_bytes > points[0].secure_storage_bytes

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            run_engine_sweep(40, [])


class TestCsvExport:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.csv"
        rows = [[1, "a", 0.5], [2, "b", 1.5]]
        written = write_csv(str(path), ["id", "name", "value"], rows)
        assert written == 2
        with open(path, newline="") as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0] == ["id", "name", "value"]
        assert parsed[1] == ["1", "a", "0.5"]

    def test_engine_point_csv_shape(self):
        header = EnginePoint.csv_header()
        assert "measured_c" in header and "mean_latency" in header

    def test_mismatched_row_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv(str(tmp_path / "x.csv"), ["a", "b"], [[1]])

    def test_empty_header_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv(str(tmp_path / "x.csv"), [], [])
