"""Differential tests: accelerated AES kernel vs the auditable reference.

The T-table / vectorised fast path must be *byte-identical* to the
reference transform — same FIPS-197 vectors, same CTR keystreams for
every key size, length and counter, and the same sealed frames and MACs
at the cipher-suite level.  Everything here is seeded, so a divergence
reproduces exactly.
"""

import random

import pytest

from repro.crypto.aes import (
    AES,
    VECTOR_THRESHOLD_BLOCKS,
    default_accel,
    set_default_accel,
)
from repro.crypto.modes import ctr_keystream, ctr_keystream_batch, ctr_transform
from repro.crypto.rng import SecureRandom
from repro.crypto.suite import CipherSuite
from repro.errors import CryptoError

# FIPS-197 appendix C vectors: the same key/plaintext for all three sizes.
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_VECTORS = [
    (bytes(range(16)), "69c4e0d86a7b0430d8cdb78070b4c55a"),
    (bytes(range(24)), "dda97ca4864cdfe06eaf70a0ec0d7191"),
    (bytes(range(32)), "8ea2b7ca516745bfeafc49904b496089"),
]

KEY_SIZES = (16, 24, 32)


@pytest.mark.parametrize("key,expected", FIPS_VECTORS,
                         ids=["aes128", "aes192", "aes256"])
@pytest.mark.parametrize("accel", [False, True], ids=["reference", "accel"])
def test_fips_vectors_both_paths(key, expected, accel):
    cipher = AES(key, accel=accel)
    assert cipher.accel is accel
    assert cipher.encrypt_block(FIPS_PLAINTEXT).hex() == expected
    # decrypt_block has no fast path; it must invert either way.
    assert cipher.decrypt_block(bytes.fromhex(expected)) == FIPS_PLAINTEXT


@pytest.mark.parametrize("key_size", KEY_SIZES)
def test_encrypt_blocks_differential_all_lanes(key_size):
    """reference == int T-table lane == vectorised lane, block for block."""
    rng = random.Random(0xACE1 + key_size)
    for trial in range(8):
        key = rng.randbytes(key_size)
        ref = AES(key, accel=False)
        fast = AES(key, accel=True)
        # Below the threshold exercises the int lane, above it the numpy
        # lane (when numpy is importable); both must match the reference.
        for count in (1, 2, VECTOR_THRESHOLD_BLOCKS - 1,
                      VECTOR_THRESHOLD_BLOCKS, 3 * VECTOR_THRESHOLD_BLOCKS + 5):
            data = rng.randbytes(16 * count)
            expected = b"".join(
                ref.encrypt_block(data[i : i + 16])
                for i in range(0, len(data), 16)
            )
            assert ref.encrypt_blocks(data) == expected
            assert fast.encrypt_blocks(data) == expected


@pytest.mark.parametrize("key_size", KEY_SIZES)
def test_ctr_keystream_differential(key_size):
    """Seeded sweep over odd lengths and counters, reference vs accel."""
    rng = random.Random(0xC7B + key_size)
    lengths = [0, 1, 15, 16, 17, 31, 100, 257, 16 * VECTOR_THRESHOLD_BLOCKS + 3]
    counters = [0, 1, 7, 2**16, 2**32 - 64]
    for trial in range(4):
        key = rng.randbytes(key_size)
        nonce = rng.randbytes(12)
        ref = AES(key, accel=False)
        fast = AES(key, accel=True)
        for length in lengths:
            for counter in counters:
                if counter + (length + 15) // 16 > 2**32:
                    continue
                assert ctr_keystream(ref, nonce, length, counter) == \
                    ctr_keystream(fast, nonce, length, counter)


def test_ctr_transform_differential_roundtrip():
    rng = random.Random(7)
    key = rng.randbytes(16)
    nonce = rng.randbytes(12)
    data = rng.randbytes(1000)
    ref = AES(key, accel=False)
    fast = AES(key, accel=True)
    ct = ctr_transform(fast, nonce, data)
    assert ct == ctr_transform(ref, nonce, data)
    assert ctr_transform(ref, nonce, ct) == data
    assert ctr_transform(fast, nonce, ct) == data


def test_ctr_keystream_batch_matches_per_frame():
    rng = random.Random(21)
    cipher = AES(rng.randbytes(16))
    nonces = [rng.randbytes(12) for _ in range(9)]
    lengths = [0, 1, 16, 17, 48, 100, 5, 33, 256]
    batch = ctr_keystream_batch(cipher, nonces, lengths)
    assert batch == [
        ctr_keystream(cipher, nonce, length)
        for nonce, length in zip(nonces, lengths)
    ]
    with pytest.raises(CryptoError):
        ctr_keystream_batch(cipher, nonces, lengths[:-1])


@pytest.mark.parametrize("accel", [False, True], ids=["reference", "accel"])
def test_ctr_counter_overflow_guard(accel):
    cipher = AES(bytes(16), accel=accel)
    nonce = bytes(12)
    # Exactly at the boundary is fine; one block past 2^32 must raise.
    assert len(ctr_keystream(cipher, nonce, 16, 2**32 - 1)) == 16
    with pytest.raises(CryptoError):
        ctr_keystream(cipher, nonce, 17, 2**32 - 1)
    with pytest.raises(CryptoError):
        ctr_keystream(cipher, nonce, 16, 2**32)


def test_encrypt_blocks_rejects_partial_blocks():
    cipher = AES(bytes(16))
    assert cipher.encrypt_blocks(b"") == b""
    with pytest.raises(CryptoError):
        cipher.encrypt_blocks(b"\x00" * 15)
    with pytest.raises(CryptoError):
        cipher.encrypt_blocks(b"\x00" * 17)


def test_for_key_caches_instances():
    key = bytes(range(16))
    a = AES.for_key(key, accel=True)
    b = AES.for_key(key, accel=True)
    assert a is b
    # The accel flag is part of the cache key: both variants coexist.
    c = AES.for_key(key, accel=False)
    assert c is not a and not c.accel and a.accel


def test_for_key_cache_is_bounded():
    start = len(AES._instances)
    for i in range(AES._INSTANCE_CACHE_SIZE + 8):
        AES.for_key(i.to_bytes(2, "big") + bytes(14), accel=True)
    assert len(AES._instances) <= AES._INSTANCE_CACHE_SIZE
    assert start <= AES._INSTANCE_CACHE_SIZE


def test_default_accel_toggling():
    previous = set_default_accel(False)
    try:
        assert default_accel() is False
        assert AES(bytes(16)).accel is False
        set_default_accel(True)
        assert AES(bytes(16)).accel is True
    finally:
        set_default_accel(previous)


def test_suite_frames_identical_accel_on_off():
    """Sealed frames (nonce, ciphertext AND MAC) match across kernels."""
    payloads = [bytes([i]) * (96 + i) for i in range(6)]
    frames = {}
    for accel in (False, True):
        previous = set_default_accel(accel)
        try:
            suite = CipherSuite(b"accel-diff-key", backend="aes",
                                rng=SecureRandom(99))
            frames[accel] = suite.encrypt_pages(payloads)
            assert suite.decrypt_pages(frames[accel]) == payloads
        finally:
            set_default_accel(previous)
    assert frames[False] == frames[True]


def test_suite_single_frame_identical_accel_on_off():
    payload = b"the quick brown fox" * 7
    frames = {}
    for accel in (False, True):
        previous = set_default_accel(accel)
        try:
            suite = CipherSuite(b"accel-diff-key", backend="aes",
                                rng=SecureRandom(5))
            frames[accel] = suite.encrypt_page(payload)
            assert suite.decrypt_page(frames[accel]) == payload
        finally:
            set_default_accel(previous)
    assert frames[False] == frames[True]
