"""Cross-module integration scenarios."""

from __future__ import annotations

import pytest

from repro import PirDatabase
from repro.analysis.adversary import TrackingAdversary
from repro.analysis.costmodel import AnalyticalCostModel
from repro.baselines import make_records
from repro.crypto.rng import SecureRandom
from repro.errors import PageDeletedError
from repro.hardware.specs import HardwareSpec
from repro.index.private_index import PrivateKeyValueStore
from repro.storage.trace import shapes_identical
from repro.twoparty import TwoPartySession
from repro.workload import zipf_stream

from tests.helpers import make_db


class TestThreePartyEndToEnd:
    def test_oblivious_setup_then_long_workload(self):
        records = make_records(24, 16)
        db = PirDatabase.create(
            records, cache_capacity=4, page_capacity=16, block_size=4,
            setup_mode="oblivious", seed=61,
        )
        rng = SecureRandom(62)
        for page_id in zipf_stream(24, 150, rng, theta=0.9):
            assert db.query(page_id) == records[page_id]
        db.consistency_check()
        assert shapes_identical(db.trace, 0)

    def test_measured_time_tracks_eq8_at_scale(self):
        """Executed engine time equals the analytical model across shapes."""
        model = AnalyticalCostModel()
        for block_size, cache in ((2, 4), (6, 8), (12, 4)):
            db = make_db(num_records=36, cache_capacity=cache,
                         page_capacity=16, block_size=block_size,
                         spec=HardwareSpec(), seed=63)
            start = db.clock.now
            db.query(0)
            measured = db.clock.now - start
            expected = model.query_time(block_size, db.cop.frame_size)
            assert measured == pytest.approx(expected, rel=1e-9)

    def test_adversary_on_skewed_workload(self):
        """Even a maximally skewed workload leaves the tracking adversary
        inside the c envelope once a scan completes."""
        db = make_db(num_records=40, reserve_fraction=0.2, seed=64,
                     cipher_backend="null")
        params = db.params
        adversary = TrackingAdversary(
            params.num_locations, params.block_size, params.cache_capacity
        )
        for step in range(8 * params.num_blocks):
            db.query(0 if step % 3 else 1)  # two hot pages only
            outcome = db.engine.last_outcome
            adversary.observe_request(outcome.block_start, outcome.extra_location)
        assert adversary.posterior_ratio() <= params.achieved_c * 1.05


class TestTwoPartyVersusLocal:
    def test_identical_results_with_identical_seed(self):
        """The engine's logic is deployment-independent: same records, same
        operation stream, both deployments return the same payloads."""
        records = make_records(30, 16)
        local = PirDatabase.create(records, cache_capacity=6, block_size=5,
                                   page_capacity=16, seed=71)
        remote = TwoPartySession.create(records, cache_capacity=6, block_size=5,
                                        page_capacity=16, seed=72)
        stream = zipf_stream(30, 60, SecureRandom(73))
        for page_id in stream:
            assert local.query(page_id) == remote.query(page_id) == records[page_id]

    def test_network_dominates_two_party_latency(self):
        records = make_records(30, 16)
        session = TwoPartySession.create(
            records, cache_capacity=6, block_size=5, page_capacity=16,
            seed=74, rtt=0.05, bandwidth=2.33e6,
        )
        series = session.measure_queries([1, 2, 3, 4])
        k = session.owner.params.block_size
        frame = session.owner.cop.frame_size
        transfer = 2 * (k + 1) * frame / 2.33e6
        # RTT (2 round trips x 50 ms) + transfer should account for almost
        # all of the latency at this scale.
        assert series.mean() >= 0.1 + transfer


class TestPrivateIndexOverTwoDeployments:
    def test_btree_on_pir_database_under_updates(self):
        items = [(i, f"rec{i}".encode()) for i in range(100)]
        store = PrivateKeyValueStore.create(
            items, cache_capacity=8, page_capacity=128, seed=75
        )
        # Index pages can be modified like any page; prove the plumbing by
        # deleting an unrelated reserve page and re-querying the index.
        assert store.get(42) == b"rec42"
        assert store.get(41) == b"rec41"
        assert store.retrievals == 2 * store.height

    def test_deleted_page_error_propagates_through_index(self):
        items = [(i, bytes(4)) for i in range(60)]
        store = PrivateKeyValueStore.create(
            items, cache_capacity=8, page_capacity=128, seed=76
        )
        store.database.delete(store.root_page_id)
        with pytest.raises(PageDeletedError):
            store.get(0)
