"""Every quantitative claim in the paper, pinned in one place.

Other test modules verify these facts alongside their subsystems; this file
is the cross-reference — one test per claim, named after where the paper
makes it, so a reviewer can map the paper onto the reproduction directly.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.costmodel import AnalyticalCostModel, TwoPartyCostModel
from repro.core.params import (
    achieved_privacy,
    required_block_size,
    scan_period_for_privacy,
)
from repro.hardware.specs import GIGABYTE, IBM_4764

_KB = 1000
_MODEL = AnalyticalCostModel()


class TestSection3Definitions:
    def test_definition_1_c_equals_one_is_perfect(self):
        """Def. 1 / §3.1: c = 1 means every location equally likely."""
        assert achieved_privacy(1000, 50, 1000) == pytest.approx(1.0)

    def test_table_1_symbols_consistency(self):
        """Table 1: N = n/k blocks; T = n/k scan period."""
        from repro.core.params import SystemParameters

        params = SystemParameters.from_block_size(120, 10, 6)
        assert params.num_blocks == 120 // 6
        assert params.scan_period == params.num_blocks


class TestSection4Analysis:
    def test_eq1_geometric_eviction(self):
        """Eq. 1: P_t = (1 - 1/m)^(t-1) / m."""
        from repro.core.params import eviction_probability

        m = 25
        for t in (1, 2, 10):
            assert eviction_probability(m, t) == pytest.approx(
                (1 - 1 / m) ** (t - 1) / m
            )

    def test_eq5_ratio(self):
        """Eq. 5: P_max / P_min = (1 - 1/m)^-(T-1)."""
        from repro.analysis.privacy import privacy_ratio

        n, m, k = 120, 10, 6
        period = n // k
        assert privacy_ratio(n, m, k) == pytest.approx(
            (1 - 1 / m) ** (-(period - 1))
        )

    def test_eq6_block_size(self):
        """Eq. 6: k = n / (log(1/c)/log(1-1/m) + 1)."""
        n, m, c = 10**6, 50_000, 2.0
        exact = n / (math.log(1 / c) / math.log(1 - 1 / m) + 1)
        assert required_block_size(n, m, c) == math.ceil(exact)

    def test_section_4_2_c_converges_to_one_with_m(self):
        """End of §4.2: for fixed T, c -> 1 as m increases."""
        values = [
            1 / (1 - 1 / m) ** (scan_period_for_privacy(m, 2.0) - 1)
            for m in (10, 100, 1000)
        ]
        # Round-trip identity check plus the convergence claim itself:
        assert all(v == pytest.approx(2.0) for v in values)
        fixed_T = [achieved_privacy(10_000, m, 100) for m in (10, 100, 10_000)]
        assert fixed_T[0] > fixed_T[1] > fixed_T[2] >= 1.0


class TestSection5Numbers:
    @pytest.mark.parametrize(
        "db_gb,page,m,paper_ms",
        [
            (1, _KB, 50_000, 27),
            (1, 10 * _KB, 5_000, 94),
            (10, _KB, 20_000, 197),
            (10, _KB, 80_000, 65),
            (100, _KB, 200_000, 197),
            (1000, _KB, 500_000, 727),
        ],
    )
    def test_prose_response_times(self, db_gb, page, m, paper_ms):
        point = _MODEL.point(db_gb * GIGABYTE, page, m, 2.0)
        assert point.query_time * 1000 == pytest.approx(paper_ms, rel=0.05)

    def test_four_random_accesses_per_query(self):
        """§5: 'the secure hardware needs to perform 4 random accesses'."""
        from tests.helpers import make_db

        db = make_db(seed=1)
        db.query(0)
        assert len(db.trace.events_for_request(0)) == 4

    def test_two_transfers_of_k_plus_one_pages(self):
        """§5: k+1 pages transferred twice (read + write)."""
        from tests.helpers import make_db

        db = make_db(seed=2)
        db.query(0)
        k = db.params.block_size
        moved = sum(e.count for e in db.trace.events_for_request(0))
        assert moved == 2 * (k + 1)

    def test_100gb_needs_about_10_units(self):
        """§5: '100GB databases will require 10 coprocessors'."""
        point = _MODEL.point(100 * GIGABYTE, _KB, 500_000, 2.0)
        assert 9 <= _MODEL.units_required(point) <= 14

    def test_1tb_subsecond_needs_over_4gb(self):
        """§5: 1 TB sub-second 'only feasible with over 4GB of secure storage'."""
        point = _MODEL.cache_required(1000 * GIGABYTE, _KB, 2.0, 1.0)
        assert point.secure_storage_bytes > 4e9

    def test_figure7_two_party_anchor(self):
        """§5: 6 GB owner state, 2M-page cache -> 0.737 s on 1 TB."""
        model = TwoPartyCostModel()
        point = model.point(1000 * GIGABYTE, _KB, 2_000_000, 2.0)
        assert point.query_time == pytest.approx(0.737, rel=0.05)
        assert point.secure_storage_gb == pytest.approx(5.9, rel=0.05)

    def test_sub_second_at_c_1_1_up_to_100gb(self):
        """§5: 'for databases up to 100GB, sub-second query response times
        are achievable even for c = 1.1'."""
        for db_gb, m in ((1, 50_000), (10, 100_000), (100, 500_000)):
            point = _MODEL.point(db_gb * GIGABYTE, _KB, m, 1.1)
            assert point.query_time < 1.0, db_gb

    def test_table2_constants(self):
        assert IBM_4764.secure_memory == 64 * 10**6
        assert IBM_4764.disk.seek_time == 5e-3
        assert IBM_4764.disk.read_bandwidth == 100e6
        assert IBM_4764.link_bandwidth == 80e6
        assert IBM_4764.crypto_throughput == 10e6
