"""The Bayesian tracking adversary: posterior bounded by Definition 1."""

from __future__ import annotations

import pytest

from repro.analysis.adversary import TrackingAdversary
from repro.core.params import achieved_privacy
from repro.errors import ConfigurationError

from tests.helpers import make_db


def _synthetic_round_robin(adversary, num_blocks, block_size, rounds,
                           extra_location=0):
    """Feed the adversary a plain round-robin observation stream."""
    n = num_blocks * block_size
    for step in range(rounds):
        block_start = (step % num_blocks) * block_size
        extra = (block_start + block_size) % n  # always outside the block
        adversary.observe_request(block_start, extra)


class TestBeliefBookkeeping:
    def test_initial_state(self):
        adversary = TrackingAdversary(48, 8, 8)
        assert adversary.belief()["cached"] == 1.0
        assert adversary.belief()["on_disk"] == 0.0

    def test_probability_mass_conserved(self):
        adversary = TrackingAdversary(48, 8, 8)
        _synthetic_round_robin(adversary, 6, 8, 100)
        assert adversary.normalisation_error() < 1e-9

    def test_cache_mass_decays(self):
        adversary = TrackingAdversary(48, 8, 8)
        before = adversary.belief()["cached"]
        _synthetic_round_robin(adversary, 6, 8, 10)
        after = adversary.belief()["cached"]
        assert after < before

    def test_posterior_ratio_undefined_before_full_scan(self):
        adversary = TrackingAdversary(48, 8, 8)
        _synthetic_round_robin(adversary, 6, 8, 3)
        with pytest.raises(ConfigurationError):
            adversary.posterior_ratio()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrackingAdversary(10, 3, 8)  # n % k != 0
        with pytest.raises(ConfigurationError):
            TrackingAdversary(12, 3, 1)
        adversary = TrackingAdversary(12, 3, 4)
        with pytest.raises(ConfigurationError):
            adversary.observe_request(1, 0)  # misaligned block
        with pytest.raises(ConfigurationError):
            adversary.observe_request(0, 99)


class TestDefinitionOneBound:
    def test_posterior_ratio_respects_c_on_synthetic_stream(self):
        n, k, m = 48, 8, 8
        c = achieved_privacy(n, m, k)
        adversary = TrackingAdversary(n, k, m)
        _synthetic_round_robin(adversary, n // k, k, 5 * (n // k))
        # After several full sweeps the posterior over disk locations should
        # be within the c-approximate envelope (up to pickup-respread noise,
        # which only flattens the distribution).
        assert adversary.posterior_ratio() <= c * 1.05

    def test_guess_prefers_recent_blocks(self):
        adversary = TrackingAdversary(48, 8, 8)
        _synthetic_round_robin(adversary, 6, 8, 6)
        # The best guess should be in the first block observed (offset 1 of
        # the scan: highest landing probability per Eq. 3).
        assert 0 <= adversary.guess() < 8

    def test_real_trace_feed(self):
        """Drive the adversary with the actual engine's observable trace."""
        db = make_db(num_records=40, reserve_fraction=0.2, seed=31,
                     cipher_backend="null")
        params = db.params
        db.query(7)  # tracked page enters the cache here
        adversary = TrackingAdversary(
            params.num_locations, params.block_size, params.cache_capacity
        )
        for step in range(6 * params.num_blocks):
            db.query((step * 11) % 40 or 1)  # background churn, avoid id 7... mostly
            outcome = db.engine.last_outcome
            adversary.observe_request(outcome.block_start, outcome.extra_location)
        assert adversary.normalisation_error() < 1e-9
        c = params.achieved_c
        assert adversary.posterior_ratio() <= c * 1.05
