"""Workload trace persistence and replay."""

from __future__ import annotations

import pytest

from repro.crypto.rng import SecureRandom
from repro.errors import ConfigurationError
from repro.workload import (
    Operation,
    load_trace,
    operation_stream,
    queries_as_operations,
    replay_trace,
    save_trace,
    uniform_stream,
)

from tests.helpers import make_db


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        operations = [
            Operation("query", 5),
            Operation("update", 3, b"\x00\xffpayload"),
            Operation("insert", None, b"new"),
            Operation("delete", 7),
        ]
        path = tmp_path / "trace.jsonl"
        assert save_trace(str(path), operations) == 4
        assert load_trace(str(path)) == operations

    def test_generated_stream_roundtrip(self, tmp_path):
        operations = operation_stream(30, 80, SecureRandom(4))
        path = tmp_path / "gen.jsonl"
        save_trace(str(path), operations)
        assert load_trace(str(path)) == operations

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"op": "query", "page": 1}\n\n{"op": "delete", "page": 2}\n')
        assert len(load_trace(str(path))) == 2

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError, match="line 1|:1:"):
            load_trace(str(path))

    def test_missing_op_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"page": 3}\n')
        with pytest.raises(ConfigurationError):
            load_trace(str(path))

    def test_unknown_op_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"op": "explode", "page": 3}\n')
        with pytest.raises(ConfigurationError):
            load_trace(str(path))

    def test_bad_hex_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"op": "insert", "payload": "zz"}\n')
        with pytest.raises(ConfigurationError):
            load_trace(str(path))


class TestReplay:
    def test_replay_applies_operations(self):
        db = make_db(num_records=30, reserve_fraction=0.3, seed=610)
        operations = [
            Operation("update", 2, b"replayed"),
            Operation("query", 2),
            Operation("insert", None, b"added"),
            Operation("delete", 5),
        ]
        counters = replay_trace(db, operations)
        assert counters.get("update") == 1
        assert counters.get("insert") == 1
        assert db.query(2) == b"replayed"

    def test_replay_counts_expected_failures(self):
        db = make_db(num_records=30, seed=611)
        operations = [
            Operation("delete", 4),
            Operation("delete", 4),  # double delete fails
            Operation("query", 4),   # deleted page fails
        ]
        counters = replay_trace(db, operations)
        assert counters.get("delete") == 1
        assert counters.get("delete_failed") == 1
        assert counters.get("query_failed") == 1

    def test_replay_is_deterministic_per_seed(self, tmp_path):
        operations = queries_as_operations(
            uniform_stream(30, 50, SecureRandom(9))
        )
        path = tmp_path / "queries.jsonl"
        save_trace(str(path), operations)
        loaded = load_trace(str(path))
        a = make_db(num_records=30, seed=612)
        b = make_db(num_records=30, seed=612)
        replay_trace(a, loaded)
        replay_trace(b, loaded)
        assert [a.disk.peek(i) for i in range(5)] == [
            b.disk.peek(i) for i in range(5)
        ]

    def test_same_trace_two_schemes(self, tmp_path):
        """The point of trace files: identical workloads across schemes."""
        from repro.twoparty import TwoPartySession
        from repro.baselines import make_records

        operations = queries_as_operations(
            uniform_stream(30, 30, SecureRandom(10))
        )
        records = make_records(30, 16)
        local = make_db(num_records=30, seed=613)
        session = TwoPartySession.create(records, cache_capacity=8,
                                         page_capacity=16, seed=614)
        for op in operations:
            assert local.query(op.page_id) == session.query(op.page_id)
