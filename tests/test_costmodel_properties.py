"""Property-based tests of the §5 cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.costmodel import AnalyticalCostModel, TwoPartyCostModel
from repro.core.params import required_block_size

_MODEL = AnalyticalCostModel()
_TWO_PARTY = TwoPartyCostModel()


class TestEq8Properties:
    @settings(max_examples=60, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=10**6),
        page=st.integers(min_value=1, max_value=10**5),
    )
    def test_query_time_positive_and_bounded_below_by_seeks(self, k, page):
        time = _MODEL.query_time(k, page)
        assert time > 4 * _MODEL.spec.disk.seek_time

    @settings(max_examples=40, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=10**5),
        page=st.integers(min_value=1, max_value=10**4),
    )
    def test_query_time_monotone_in_k_and_page(self, k, page):
        assert _MODEL.query_time(k + 1, page) > _MODEL.query_time(k, page)
        assert _MODEL.query_time(k, page + 1) > _MODEL.query_time(k, page)

    @settings(max_examples=40, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=10**5),
        page=st.integers(min_value=1, max_value=10**4),
    )
    def test_query_time_linear_in_block(self, k, page):
        """Eq. 8 is affine in (k+1)B: doubling both block terms doubles
        the transfer component exactly."""
        base = _MODEL.query_time(k, page) - 4 * _MODEL.spec.disk.seek_time
        doubled = _MODEL.query_time(2 * k + 1, page) - 4 * _MODEL.spec.disk.seek_time
        assert doubled == pytest.approx(2 * base, rel=1e-12)


class TestEq7Properties:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=10**9),
        m=st.integers(min_value=1, max_value=10**6),
        k=st.integers(min_value=1, max_value=10**5),
        page=st.integers(min_value=1, max_value=10**5),
    )
    def test_storage_monotone_in_everything(self, n, m, k, page):
        base = AnalyticalCostModel.secure_storage_bytes(n, m, k, page)
        assert AnalyticalCostModel.secure_storage_bytes(n + 1, m, k, page) > base
        assert AnalyticalCostModel.secure_storage_bytes(n, m + 1, k, page) > base
        assert AnalyticalCostModel.secure_storage_bytes(n, m, k + 1, page) > base

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=2, max_value=10**9))
    def test_pagemap_term_matches_closed_form(self, n):
        import math

        storage = AnalyticalCostModel.secure_storage_bytes(n, 1, 1, 1)
        page_map = n * (math.log2(n) + 1) / 8.0
        assert storage == pytest.approx(page_map + 3, abs=1e-6)


class TestModelConsistency:
    @settings(max_examples=40, deadline=None)
    @given(
        db_pages=st.integers(min_value=1000, max_value=10**8),
        m=st.integers(min_value=10, max_value=10**6),
        c=st.floats(min_value=1.01, max_value=16.0),
    )
    def test_point_uses_eq6_block_size(self, db_pages, m, c):
        page = 1000
        point = _MODEL.point(db_pages * page, page, m, c)
        assert point.block_size == required_block_size(db_pages, m, c)
        assert point.query_time == pytest.approx(
            _MODEL.query_time(point.block_size, page)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        m_small=st.integers(min_value=10, max_value=10**4),
        factor=st.integers(min_value=2, max_value=50),
    )
    def test_bigger_cache_never_slower(self, m_small, factor):
        db_bytes = 10**9
        slow = _MODEL.point(db_bytes, 1000, m_small, 2.0)
        fast = _MODEL.point(db_bytes, 1000, m_small * factor, 2.0)
        assert fast.query_time <= slow.query_time

    @settings(max_examples=30, deadline=None)
    @given(
        c_loose=st.floats(min_value=1.5, max_value=16.0),
        tighten=st.floats(min_value=0.05, max_value=0.4),
    )
    def test_better_privacy_never_cheaper(self, c_loose, tighten):
        c_tight = 1.0 + (c_loose - 1.0) * tighten
        loose = _MODEL.point(10**9, 1000, 10**5, c_loose)
        tight = _MODEL.point(10**9, 1000, 10**5, c_tight)
        assert tight.query_time >= loose.query_time
        assert tight.block_size >= loose.block_size

    @settings(max_examples=30, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=10**5),
        page=st.integers(min_value=100, max_value=10**4),
    )
    def test_two_party_at_least_rtt(self, k, page):
        assert _TWO_PARTY.query_time(k, page) > _TWO_PARTY.rtt
