"""repro.plan offline planner: inversion round-trips and infeasibility.

The property sweep feeds a grid of (p99, QPS, c) targets through
:func:`repro.plan.plan` and checks each solved plan back against the
analytical model — Eq. 8 for the latency bound, Eq. 6 for the privacy
bound, Eq. 7 for the secure-memory bound — while infeasible targets must
raise :class:`repro.errors.PlanInfeasibleError` naming the binding
constraint.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.costmodel import AnalyticalCostModel, eq8_terms
from repro.errors import ConfigurationError, PlanInfeasibleError
from repro.hardware.specs import IBM_4764, HardwareSpec
from repro.plan import CalibratedCostModel, PlanTarget, plan, verify_plan
from repro.plan.model import OTHER_PHASE, PHASE_NAMES, frame_size_for


def _target(**overrides):
    base = dict(
        num_pages=10**6,
        page_size=1000,
        p99_seconds=0.05,
        qps=10.0,
        privacy_c=2.0,
    )
    base.update(overrides)
    return PlanTarget(**base)


class TestPlanTarget:
    def test_requires_exactly_one_privacy_bound(self):
        with pytest.raises(ConfigurationError):
            _target(privacy_c=2.0, epsilon=0.5)
        with pytest.raises(ConfigurationError):
            _target(privacy_c=None)

    def test_epsilon_resolves_to_exp(self):
        target = _target(privacy_c=None, epsilon=0.7)
        assert target.resolved_c == pytest.approx(math.exp(0.7))

    @pytest.mark.parametrize("field", ["num_pages", "page_size"])
    def test_rejects_nonpositive_sizes(self, field):
        with pytest.raises(ConfigurationError):
            _target(**{field: 0})

    @pytest.mark.parametrize("field", ["p99_seconds", "qps"])
    def test_rejects_nonpositive_rates(self, field):
        with pytest.raises(ConfigurationError):
            _target(**{field: 0.0})


class TestSpecModel:
    def test_matches_eq8_at_frame_size(self):
        """Spec mode is Eq. 8 evaluated at the on-disk frame size."""
        model = CalibratedCostModel.from_spec(IBM_4764, page_size=1000)
        frame = frame_size_for(1000)
        for k in (1, 8, 24, 100):
            expected = eq8_terms(IBM_4764, k, frame)["total"]
            assert model.query_time(k) == pytest.approx(expected)

    def test_crypto_cost_lands_in_link_phases(self):
        """The tracer folds crypto into link.ingest/egress; so must the model."""
        model = CalibratedCostModel.from_spec(IBM_4764, page_size=64)
        assert model.coefficients["decrypt"].gamma == 0.0
        assert model.coefficients["reencrypt"].gamma == 0.0
        frame = frame_size_for(64)
        assert model.coefficients["link.ingest"].gamma == pytest.approx(
            frame * (1 / IBM_4764.link_bandwidth
                     + 1 / IBM_4764.crypto_throughput)
        )

    def test_query_time_monotone_in_k(self):
        model = CalibratedCostModel.from_spec()
        times = [model.query_time(k) for k in range(1, 200)]
        assert times == sorted(times)

    def test_rejects_unknown_phase(self):
        from repro.plan.model import PhaseCoefficients

        with pytest.raises(ConfigurationError):
            CalibratedCostModel(
                {"disk.levitate": PhaseCoefficients(0.0, 1.0)}, page_size=64
            )


class TestRoundTripSweep:
    """Satellite (d): every solved plan, fed back through the analytical
    model, meets the target it was solved for."""

    P99S = (0.03, 0.05, 0.2)
    QPSS = (1.0, 20.0, 200.0)
    CS = (1.2, 2.0, 5.0)

    def test_sweep_meets_targets_or_names_constraint(self):
        feasible = 0
        frame = frame_size_for(1000)
        for p99 in self.P99S:
            for qps in self.QPSS:
                for c in self.CS:
                    target = _target(
                        p99_seconds=p99, qps=qps, privacy_c=c
                    )
                    try:
                        built = plan(target)
                    except PlanInfeasibleError as exc:
                        assert exc.constraint in (
                            "latency", "privacy", "secure_memory",
                            "throughput",
                        )
                        continue
                    feasible += 1
                    # Latency: Eq. 8 at the planned k fits the headroom.
                    predicted = eq8_terms(
                        IBM_4764, built.block_size, frame
                    )["total"]
                    assert predicted <= 0.8 * p99 * (1 + 1e-9)
                    assert built.predicted_query_seconds == pytest.approx(
                        predicted
                    )
                    # Privacy: the padded layout meets the bound.
                    assert built.achieved_c <= c * (1 + 1e-9)
                    # Secure memory: Eq. 7 state fits the hardware.
                    storage = AnalyticalCostModel.secure_storage_bytes(
                        built.num_locations, built.cache_pages,
                        built.block_size, 1000,
                    )
                    assert storage <= IBM_4764.total_secure_memory
                    assert built.secure_storage_bytes == pytest.approx(
                        storage
                    )
                    # Throughput: provisioned capacity covers the rate.
                    assert built.capacity_qps >= qps * (1 - 1e-9)
        assert feasible >= 9, "sweep should not be mostly infeasible"

    def test_epsilon_and_c_statements_agree(self):
        eps = 0.5
        via_c = plan(_target(privacy_c=math.exp(eps)))
        via_eps = plan(_target(privacy_c=None, epsilon=eps))
        assert via_c.block_size == via_eps.block_size
        assert via_c.cache_pages == via_eps.cache_pages
        assert via_c.achieved_c == pytest.approx(via_eps.achieved_c)

    def test_tighter_privacy_needs_more_cache(self):
        loose = plan(_target(privacy_c=5.0))
        tight = plan(_target(privacy_c=1.5))
        assert tight.secure_storage_bytes > loose.secure_storage_bytes


class TestInfeasible:
    def test_privacy_c_at_or_below_one(self):
        for c in (1.0, 0.5):
            with pytest.raises(PlanInfeasibleError) as info:
                plan(_target(privacy_c=c))
            assert info.value.constraint == "privacy"

    def test_latency_below_seek_floor(self):
        # 4 t_s = 20 ms: no block size can beat the fixed seek cost.
        with pytest.raises(PlanInfeasibleError) as info:
            plan(_target(p99_seconds=0.005))
        assert info.value.constraint == "latency"

    def test_secure_memory_exhausted(self):
        tiny = HardwareSpec(secure_memory=10**6)
        with pytest.raises(PlanInfeasibleError) as info:
            plan(_target(), spec=tiny)
        assert info.value.constraint == "secure_memory"
        assert "MB" in str(info.value)

    def test_throughput_exceeds_shard_ceiling(self):
        with pytest.raises(PlanInfeasibleError) as info:
            plan(_target(qps=1000.0), max_shards=2)
        assert info.value.constraint == "throughput"

    def test_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            plan(_target(privacy_c=1.0))


class TestDerivedBudgets:
    def test_budget_invariants(self):
        built = plan(_target(qps=200.0))
        frame = frame_size_for(1000)
        assert built.batch_window >= 1
        assert built.batch_window <= built.block_size
        assert built.pipeline_max_bytes >= max(
            64 * 1024, 2 * (built.block_size + built.batch_window) * frame
        )
        assert built.hot_tier_frames == 0 or (
            built.hot_tier_frames >= 2 * built.block_size
        )
        assert built.admission_burst >= 1.0
        assert built.shard_count >= 1

    def test_as_dict_is_json_serializable(self):
        built = plan(_target())
        payload = json.loads(json.dumps(built.as_dict()))
        assert payload["block_size"] == built.block_size
        assert payload["target"]["resolved_c"] == pytest.approx(2.0)
        assert set(payload["predicted_phase_seconds"]) == (
            set(PHASE_NAMES) | {OTHER_PHASE}
        )


class TestObsCalibration:
    ALPHA = {"disk.read": 0.01, "disk.write": 0.01}
    GAMMA = {
        "disk.read": 1e-5,
        "disk.write": 1e-5,
        "link.ingest": 2e-6,
        "link.egress": 2e-6,
    }

    def _run(self, block_size, queries=10):
        rows = [{"kind": "meta", "block_size": block_size,
                 "queries": queries}]
        request = 0.0
        for name in PHASE_NAMES:
            seconds = queries * (
                self.ALPHA.get(name, 0.0)
                + self.GAMMA.get(name, 0.0) * (block_size + 1)
            )
            request += seconds
            rows.append({"kind": "phase", "name": name,
                         "virtual_s": seconds, "wall_s": 0.0})
        rows.append({"kind": "phase", "name": "request",
                     "virtual_s": request * 1.01, "wall_s": 0.0})
        return rows

    def test_two_runs_recover_the_affine_truth(self):
        model = CalibratedCostModel.from_obs_rows(
            [self._run(4), self._run(16)], page_size=64
        )
        for k in (2, 8, 32):
            for name in PHASE_NAMES:
                expected = (self.ALPHA.get(name, 0.0)
                            + self.GAMMA.get(name, 0.0) * (k + 1))
                assert model.predict(k)[name] == pytest.approx(expected)
        assert model.source == "obs:virtual"

    def test_single_run_falls_back_to_proportional(self):
        model = CalibratedCostModel.from_obs_rows(
            [self._run(4)], page_size=64
        )
        coeffs = model.coefficients["disk.read"]
        assert coeffs.alpha == 0.0
        assert coeffs.gamma == pytest.approx(
            (self.ALPHA["disk.read"] + self.GAMMA["disk.read"] * 5) / 5
        )

    def test_missing_meta_row_is_rejected(self):
        rows = self._run(4)[1:]
        with pytest.raises(ConfigurationError):
            CalibratedCostModel.from_obs_rows([rows], page_size=64)

    def test_empty_input_is_rejected(self):
        with pytest.raises(ConfigurationError):
            CalibratedCostModel.from_obs_rows([], page_size=64)


class TestProbeAndVerify:
    def test_probe_is_deterministic_and_verifies(self):
        kwargs = dict(page_size=64, num_records=96, queries=16, seed=7)
        first = CalibratedCostModel.from_probe(**kwargs)
        second = CalibratedCostModel.from_probe(**kwargs)
        assert first.coefficients == second.coefficients
        target = PlanTarget(
            num_pages=256, page_size=64, p99_seconds=0.05, qps=5.0,
            privacy_c=3.0,
        )
        built = plan(target, model=first)
        rows = verify_plan(built, first, queries=16, seed=7)
        assert {row["phase"] for row in rows} == (
            set(PHASE_NAMES) | {OTHER_PHASE, "total"}
        )
        for row in rows:
            assert row["error"] <= 0.15, row

    def test_verify_scales_down_oversized_targets(self):
        """Per-query phase cost depends only on (k, page size), so
        verification of a million-page plan runs on a small build."""
        built = plan(_target())
        model = CalibratedCostModel.from_spec(IBM_4764, page_size=1000)
        rows = verify_plan(built, model, queries=4, build_pages=256)
        for row in rows:
            assert row["error"] <= 0.15, row
