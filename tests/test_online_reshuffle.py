"""Online background re-permutation: correctness, interleaving, lifecycle."""

from __future__ import annotations

import time

import pytest

from tests.helpers import make_db
from repro.baselines import make_records
from repro.core.journal import MemoryJournal
from repro.core.sharded import ShardedPirDatabase
from repro.core.snapshot import load_snapshot, resume_reshuffle, save_snapshot
from repro.errors import ConfigurationError, RecoveryError, StorageError
from repro.faults import (
    SITE_DISK_READ,
    SITE_DISK_WRITE,
    FaultInjector,
    FaultyDiskStore,
    transient_reads,
    transient_writes,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.shuffle.online import OnlineReshuffler, ReshuffleIntent, _tag
from repro.shuffle.oblivious import ObliviousShuffler, batcher_network, network_size
from repro.storage.disk import DiskStore


def wait_until(predicate, timeout=15.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def faulty_memory_factory(injector):
    def build(num_locations, frame_size, timing, clock, trace):
        return FaultyDiskStore(
            DiskStore(num_locations=num_locations, frame_size=frame_size,
                      timing=timing, clock=clock, trace=trace),
            injector,
        )

    return build


def assert_batcher_order(db, driver):
    """The finished epoch left the *canonical* Batcher result: resident
    pages sorted by the epoch's secret PRF tags.  A driver that skipped,
    repeated or mis-positioned comparators (e.g. after a replay or a
    retried batch) stays content-consistent but fails this."""
    tags = [
        _tag(driver._epoch_key, db.cop.unseal(db.disk.peek(loc)).page_id)
        for loc in range(db.params.num_locations)
    ]
    assert tags == sorted(tags)


class TestForegroundEpoch:
    def test_epoch_preserves_content_and_repermutes(self):
        db = make_db(seed=21, journal=MemoryJournal())
        digest = db.content_digest()
        n = db.params.num_locations
        before = [db.cop.page_map.lookup(i).position for i in range(n)]

        driver = db.begin_reshuffle(batch_size=24, journal=MemoryJournal())
        assert driver is db.reshuffle
        assert driver.total_units == network_size(n) + n
        done = driver.run()
        assert done == driver.total_units
        assert not driver.active and driver.progress == 1.0

        db.consistency_check()
        assert db.content_digest() == digest
        after = [db.cop.page_map.lookup(i).position for i in range(n)]
        moved = sum(1 for a, b in zip(before, after) if a != b)
        assert moved > n // 2  # a fresh uniform permutation moved most pages
        db.close()

    def test_serving_interleaves_between_batches(self):
        db = make_db(seed=8, journal=MemoryJournal())
        expected = {i: db.query(i) for i in range(db.num_pages)}
        driver = db.begin_reshuffle(batch_size=4, journal=MemoryJournal())
        i = 0
        while driver.active:
            assert db.query(i % db.num_pages) == expected[i % db.num_pages]
            driver.step()
            i += 1
        db.consistency_check()
        assert i > 10  # the epoch really was incremental
        db.close()

    def test_updates_during_epoch_survive(self):
        db = make_db(seed=13, journal=MemoryJournal())
        driver = db.begin_reshuffle(batch_size=16, journal=MemoryJournal())
        driver.step()
        db.update(3, b"mid-epoch write")
        new_id = db.insert(b"mid-epoch insert")
        driver.run()
        db.consistency_check()
        assert db.query(3) == b"mid-epoch write"
        assert db.query(new_id) == b"mid-epoch insert"
        db.close()

    def test_second_epoch_while_active_is_refused(self):
        db = make_db(seed=2)
        db.begin_reshuffle(batch_size=4)
        with pytest.raises(ConfigurationError):
            db.begin_reshuffle()
        db.reshuffle.run()
        # After completion a new epoch may begin (a fresh driver).  Epoch
        # numbering is database-global, never per-driver: a restart at
        # epoch 1 would respawn the "reshuffle-epoch-1" sibling label and
        # replay its nonce stream against the same master key.
        driver2 = db.begin_reshuffle(batch_size=4)
        assert driver2.epoch == 2
        db.close()

    def test_journal_must_not_alias_engines(self):
        journal = MemoryJournal()
        db = make_db(seed=2, journal=journal)
        with pytest.raises(ConfigurationError):
            db.begin_reshuffle(journal=journal)
        db.close()


class TestKeyRotationPiggyback:
    def test_rotation_completes_with_the_sweep(self):
        db = make_db(seed=31, journal=MemoryJournal())
        digest = db.content_digest()
        driver = db.begin_reshuffle(batch_size=32, rotate_to=b"epoch-key-2",
                                    journal=MemoryJournal())
        assert db.cop.rotation_in_progress
        # Serving mid-rotation works: legacy frames still authenticate.
        db.query(1)
        driver.run()
        assert not db.cop.rotation_in_progress
        assert db.cop.legacy_master_key is None
        db.consistency_check()
        assert db.content_digest() == digest
        db.close()


class TestBackgroundWorker:
    def test_epoch_finishes_while_serving(self):
        metrics = MetricsRegistry()
        db = make_db(seed=5, journal=MemoryJournal(), metrics=metrics)
        expected = {i: db.query(i) for i in range(db.num_pages)}
        driver = db.begin_reshuffle(batch_size=8, background=True,
                                    journal=MemoryJournal(),
                                    idle_interval=0.0001)
        i = 0
        while driver.active and i < 50000:
            assert db.query(i % db.num_pages) == expected[i % db.num_pages]
            i += 1
        assert wait_until(lambda: not driver.active)
        db.consistency_check()
        assert metrics.gauge("reshuffle.progress").value == 1.0
        assert driver.counters.get("epochs") == 1
        db.close()

    def test_close_stops_worker_and_context_manager_parity(self):
        with make_db(seed=5, journal=MemoryJournal()) as db:
            driver = db.begin_reshuffle(batch_size=2, background=True,
                                        journal=MemoryJournal())
            worker = driver._worker
            assert worker is not None and worker.is_alive()
        assert not worker.is_alive()
        assert driver._heal_pending not in db.engine._background_healers
        db.close()  # idempotent

    def test_sharded_close_stops_all_reshufflers(self):
        sharded = ShardedPirDatabase.create(
            make_records(60, 16), num_shards=3, cache_capacity_per_shard=4,
            page_capacity=16, seed=9,
        )
        workers = []
        for shard in sharded.shards:
            shard.begin_reshuffle(batch_size=2, background=True)
            workers.append(shard.reshuffle._worker)
        assert all(w.is_alive() for w in workers)
        sharded.close()
        assert all(not w.is_alive() for w in workers)
        sharded.close()  # idempotent


class TestRecoverySemantics:
    def test_clean_and_stale_records(self):
        journal = MemoryJournal()
        db = make_db(seed=4, journal=MemoryJournal())
        driver = db.begin_reshuffle(batch_size=8, journal=journal)
        assert driver.recover() == "clean"
        driver.step()
        # A record from an already-applied batch is discarded as stale.
        replay = ReshuffleIntent(epoch=driver.epoch, frontier_before=0,
                                 frontier_after=4)
        journal.write(driver._suite.encrypt_page(replay.encode()))
        assert driver.recover() == "discarded_stale"
        db.close()

    def test_torn_record_rolls_back(self):
        journal = MemoryJournal()
        db = make_db(seed=4, journal=MemoryJournal())
        driver = db.begin_reshuffle(batch_size=8, journal=journal)
        journal.write(b"\x00garbage that never sealed")
        assert driver.recover() == "rolled_back"
        assert journal.read() is None
        db.close()

    def test_journal_ahead_of_state_is_rejected(self):
        journal = MemoryJournal()
        db = make_db(seed=4, journal=MemoryJournal())
        driver = db.begin_reshuffle(batch_size=8, journal=journal)
        ahead = ReshuffleIntent(epoch=driver.epoch, frontier_before=80,
                                frontier_after=88)
        journal.write(driver._suite.encrypt_page(ahead.encode()))
        with pytest.raises(RecoveryError):
            driver.recover()
        db.close()

    def test_record_from_earlier_epoch_is_discarded(self):
        journal = MemoryJournal()
        db = make_db(seed=4, journal=MemoryJournal())
        driver = db.begin_reshuffle(batch_size=8, journal=journal)
        old_suite = driver._suite
        driver.run()
        driver2 = db.begin_reshuffle(batch_size=8, journal=journal)
        stale = ReshuffleIntent(epoch=1, frontier_before=0, frontier_after=4)
        journal.write(old_suite.encrypt_page(stale.encode()))
        assert driver2.recover() == "discarded_stale"
        assert journal.read() is None
        db.close()

    def test_recover_before_restore_raises_and_retains_record(self):
        """recover() on a driver that has not adopted the sidecar yet must
        refuse — clearing the record would lose the only roll-forward for
        a torn batch — and succeed once restore_state has run."""
        journal = MemoryJournal()
        db = make_db(seed=4, journal=MemoryJournal())
        driver = db.begin_reshuffle(batch_size=8, journal=journal)
        driver.step()
        state = driver.state_blob()
        torn = ReshuffleIntent(epoch=driver.epoch,
                               frontier_before=driver.frontier,
                               frontier_after=driver.frontier + 4)
        journal.write(driver._suite.encrypt_page(torn.encode()))
        driver.close()

        fresh = OnlineReshuffler(db, journal=journal)
        with pytest.raises(RecoveryError):
            fresh.recover()
        assert journal.read() is not None  # the roll-forward survives
        fresh.restore_state(state)
        assert fresh.recover() == "replayed"
        assert fresh.frontier == torn.frontier_after
        fresh.close()
        db.close()


class TestFrontierPurity:
    """A batch's comparators are a function of the frontier, not of how
    often (or how unsuccessfully) earlier batches ran."""

    def test_transient_compute_fault_retries_same_comparators(self):
        injector = FaultInjector(seed=3)
        db = make_db(seed=11, journal=MemoryJournal(),
                     disk_factory=faulty_memory_factory(injector))
        digest = db.content_digest()
        driver = db.begin_reshuffle(batch_size=8, journal=MemoryJournal())
        driver.step()
        frontier = driver.frontier
        injector.add(transient_reads(times=1))
        with pytest.raises(StorageError):
            driver.step()
        assert driver.frontier == frontier  # nothing applied
        # The retry must re-execute the very units the failed batch
        # consumed; a shifted stream either mis-sorts or exhausts early.
        driver.run()
        assert not driver.active
        db.consistency_check()
        assert db.content_digest() == digest
        assert_batcher_order(db, driver)
        db.close()

    def test_background_worker_survives_transient_fault(self):
        injector = FaultInjector(seed=3)
        db = make_db(seed=12, journal=MemoryJournal(),
                     disk_factory=faulty_memory_factory(injector))
        injector.add(transient_reads(times=1))
        driver = db.begin_reshuffle(batch_size=8, background=True,
                                    journal=MemoryJournal(),
                                    idle_interval=0.0001)
        assert wait_until(lambda: not driver.active)
        assert driver.counters.get("worker.errors") >= 1
        db.consistency_check()
        assert_batcher_order(db, driver)
        db.close()


class TestPacing:
    def test_set_pacing_validates(self):
        db = make_db(seed=3)
        driver = db.begin_reshuffle(batch_size=8)
        with pytest.raises(ConfigurationError):
            driver.set_pacing(batch_size=0)
        with pytest.raises(ConfigurationError):
            driver.set_pacing(idle_interval=-1.0)
        assert driver.batch_size == 8
        db.close()

    def test_mid_epoch_pacing_change_preserves_batcher_order(self):
        """Re-slicing the epoch's unit stream (batch 16 -> 3 -> 11 mid-sort)
        must execute exactly the canonical comparator sequence: pacing
        changes when units run, never which.  A driver that rebuilt its
        iterator from batch history instead of the frontier would shift
        the stream and fail the final-order oracle."""
        db = make_db(seed=22, journal=MemoryJournal())
        digest = db.content_digest()
        driver = db.begin_reshuffle(batch_size=16, journal=MemoryJournal())
        driver.step()
        driver.set_pacing(batch_size=3)
        driver.step()
        driver.step()
        driver.set_pacing(batch_size=11, idle_interval=0.0)
        driver.run()
        assert not driver.active
        db.consistency_check()
        assert db.content_digest() == digest
        assert_batcher_order(db, driver)
        db.close()

    def test_background_pacing_change_mid_epoch(self):
        """Retuning the worker while it runs (the controller's usage) wakes
        it and leaves the epoch's final order canonical."""
        db = make_db(seed=26, journal=MemoryJournal())
        driver = db.begin_reshuffle(batch_size=2, background=True,
                                    journal=MemoryJournal(),
                                    idle_interval=0.05)
        assert wait_until(lambda: driver.frontier > 0)
        driver.set_pacing(batch_size=32, idle_interval=0.0001)
        assert wait_until(lambda: not driver.active)
        db.consistency_check()
        assert_batcher_order(db, driver)
        db.close()


class TestResumeUniqueness:
    def test_two_resumes_use_distinct_nonce_streams(self):
        db = make_db(seed=23, journal=MemoryJournal())
        driver = db.begin_reshuffle(batch_size=8, journal=MemoryJournal())
        driver.step()
        state = driver.state_blob()
        driver.close()
        first = OnlineReshuffler(db, journal=MemoryJournal())
        first.restore_state(state)
        second = OnlineReshuffler(db, journal=MemoryJournal())
        second.restore_state(state)
        # Same epoch, same frontier, same derived keys: only the per-resume
        # spawn label keeps the nonce streams apart.  Identical ciphertexts
        # for one plaintext would mean keystream reuse across resumes.
        assert (first._suite.encrypt_page(b"x" * 32)
                != second._suite.encrypt_page(b"x" * 32))
        first.close()
        second.close()
        db.close()

    def test_restored_database_continues_epoch_numbering(self, tmp_path):
        db = make_db(seed=24, journal=MemoryJournal())
        db.begin_reshuffle(batch_size=8, journal=MemoryJournal()).run()
        driver = db.begin_reshuffle(batch_size=8, journal=MemoryJournal())
        driver.step()
        snap = str(tmp_path / "snap")
        save_snapshot(db, snap)

        db2 = load_snapshot(snap, seed=25)
        resumed = resume_reshuffle(db2, snap, journal=MemoryJournal())
        assert resumed is not None and resumed.epoch == 2
        resumed.run()
        # A fresh driver must continue the database-global numbering from
        # the restored epoch, not restart at 1 (which would respawn epoch
        # 1's sibling label and replay its nonce stream).
        assert db2.begin_reshuffle(journal=MemoryJournal()).epoch == 3
        db.close()
        db2.close()


class TestSnapshotHealsRetainedWriteBack:
    def test_snapshot_heals_journal_less_pending_apply(self, tmp_path):
        """A transiently failed batch apply retains its intent in memory;
        with no reshuffle journal armed, save_snapshot must heal it under
        the op lock — otherwise the dumped frames are ahead of the sealed
        page map and the restored instance is inconsistent."""
        injector = FaultInjector(seed=5)
        db = make_db(seed=29, disk_factory=faulty_memory_factory(injector))
        digest = db.content_digest()
        driver = db.begin_reshuffle(batch_size=8)  # journal-less
        driver.step()
        # Let two frames of the next batch's write-back land, then fail.
        injector.add(transient_writes(times=1, after=2))
        with pytest.raises(StorageError):
            driver.step()
        assert driver.write_back_pending

        snap = str(tmp_path / "snap")
        save_snapshot(db, snap)
        assert not driver.write_back_pending  # healed under the lock

        db2 = load_snapshot(snap, seed=30)
        db2.consistency_check()
        assert db2.content_digest() == digest
        db.close()
        db2.close()


class TestPipelineInteraction:
    def test_reshuffle_consumes_prefetched_keystreams(self):
        db = make_db(seed=17, journal=MemoryJournal(),
                     keystream_pipeline="sync")
        driver = db.begin_reshuffle(batch_size=16, journal=MemoryJournal())
        expected = {i: db.query(i) for i in range(db.num_pages)}
        hits_before = db.cop.pipeline.counters.get("hit")
        i = 0
        while driver.active:
            driver.step()  # reads frames the engine prefetched: hits
            assert db.query(i % db.num_pages) == expected[i % db.num_pages]
            i += 1
        assert db.cop.pipeline.counters.get("hit") > hits_before
        db.consistency_check()
        db.close()

    def test_unread_rewrite_drops_stale_keystream(self):
        """An apply-without-read (recovery replay) orphans prefetched
        entries; they must be dropped, and an *identical* rewrite (a
        replay of the same frames) must not drop a still-valid entry."""
        from repro.crypto.pipeline import KeystreamPipeline
        from repro.crypto.rng import SecureRandom
        from repro.crypto.suite import CipherSuite

        rng = SecureRandom(3)
        suite = CipherSuite(b"k", rng=rng)
        pipe = KeystreamPipeline()
        suite.pipeline = pipe
        frame_a = suite.encrypt_page(b"a" * 32)
        pipe.note_written_frames([0], suite, [frame_a])
        pipe.prefetch([0], 32)
        assert pipe.cached_bytes > 0
        # Identical rewrite: the entry is still current — keep it.
        pipe.note_written_frames([0], suite, [frame_a])
        assert pipe.counters.get("stale_dropped") == 0
        assert pipe.cached_bytes > 0
        # Fresh-nonce rewrite without a read: the entry is dead — drop it.
        frame_b = suite.encrypt_page(b"b" * 32)
        pipe.note_written_frames([0], suite, [frame_b])
        assert pipe.counters.get("stale_dropped") == 1
        assert pipe.cached_bytes == 0


class TestSetupSortObservability:
    def test_progress_gauge_and_pass_spans(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        db = make_db(num_records=12, cache_capacity=4, page_capacity=16,
                     seed=7, setup_mode="oblivious", metrics=metrics,
                     tracer=tracer)
        # The tracer is reset after setup, but the gauge survives: a
        # SETUP_OBLIVIOUS build reports its sort progress while running.
        assert metrics.gauge("shuffle.progress").value == 1.0
        db.close()

    def test_sort_emits_one_span_per_pass(self):
        from repro.crypto.rng import SecureRandom
        from repro.crypto.suite import CipherSuite
        from repro.sim.clock import VirtualClock
        from repro.storage.disk import DiskStore
        from repro.storage.page import Page
        from repro.storage.trace import AccessTrace

        metrics = MetricsRegistry()
        tracer = Tracer()
        rng = SecureRandom(3)
        suite = CipherSuite(b"k", rng=rng.spawn("suite"))
        shuffler = ObliviousShuffler(suite, rng.spawn("tags"), 16,
                                     tracer=tracer, metrics=metrics)
        n = 10
        disk = DiskStore(num_locations=n,
                         frame_size=shuffler.tagged_frame_size,
                         timing=None, clock=VirtualClock(),
                         trace=AccessTrace(enabled=False))
        shuffler.shuffle([Page(i, bytes([i])) for i in range(n)], disk)
        passes = [s for s in tracer.spans if s.name == "shuffle.pass"]
        from repro.shuffle.oblivious import batcher_passes
        nonempty = sum(1 for _, _, c in batcher_passes(n) if c)
        assert len(passes) == nonempty
        assert metrics.gauge("shuffle.progress").value == 1.0

    def test_batcher_passes_concatenate_to_network(self):
        for n in (1, 2, 5, 16, 33):
            from repro.shuffle.oblivious import batcher_passes
            flat = [pair for _, _, cs in batcher_passes(n) for pair in cs]
            assert flat == list(batcher_network(n))


class TestFrontendVisibility:
    def test_requests_during_reshuffle_counter(self):
        from repro.service.frontend import QueryFrontend, ServiceClient

        db = make_db(seed=19, journal=MemoryJournal())
        frontend = QueryFrontend(db)
        client = ServiceClient(frontend)
        client.query(1)
        assert frontend.counters.get("requests.during_reshuffle") == 0
        driver = db.begin_reshuffle(batch_size=4, journal=MemoryJournal())
        client.query(2)
        driver.run()
        client.query(3)
        assert frontend.counters.get("requests.during_reshuffle") == 1
        client.close()
        db.close()
