"""Three-party service layer: protocol codec, sessions, multi-client use."""

from __future__ import annotations

import pytest

from repro.baselines import make_records
from repro.errors import PageDeletedError, PageNotFoundError, ProtocolError
from repro.service import (
    MAX_BATCH_OPS,
    Batch,
    BatchReply,
    Delete,
    Insert,
    Ok,
    Query,
    QueryFrontend,
    Refused,
    Result,
    SealedReplyCache,
    ServiceClient,
    Update,
    decode_client_message,
    encode_client_message,
)
from repro.storage.trace import shapes_identical

from tests.helpers import make_db

RECORDS = make_records(40, 16)


class TestProtocolCodec:
    @pytest.mark.parametrize(
        "message",
        [
            Query(7),
            Update(3, b"payload"),
            Insert(b"fresh bytes"),
            Delete(12),
            Result(9, b"data"),
            Ok(),
            Refused("nope"),
        ],
    )
    def test_roundtrip(self, message):
        assert decode_client_message(encode_client_message(message)) == message

    def test_empty_payloads(self):
        assert decode_client_message(encode_client_message(Insert(b""))) == Insert(b"")

    def test_malformed(self):
        with pytest.raises(ProtocolError):
            decode_client_message(b"")
        with pytest.raises(ProtocolError):
            decode_client_message(b"\xaa")
        with pytest.raises(ProtocolError):
            decode_client_message(b"\x10\x00")  # truncated QUERY
        good = encode_client_message(Update(1, b"xy"))
        with pytest.raises(ProtocolError):
            decode_client_message(good + b"\x00")  # trailing garbage

    def test_batch_roundtrip(self):
        batch = Batch((Query(1), Update(2, b"pay"), Insert(b"new"), Delete(3)))
        assert decode_client_message(encode_client_message(batch)) == batch
        reply = BatchReply((Result(1, b"pay"), Ok(), Refused("no", "deleted")))
        assert decode_client_message(encode_client_message(reply)) == reply

    def test_batch_validation(self):
        with pytest.raises(ProtocolError):
            encode_client_message(Batch(()))  # empty
        with pytest.raises(ProtocolError):
            encode_client_message(Batch((Batch((Query(1),)),)))  # nested
        with pytest.raises(ProtocolError):
            encode_client_message(Batch((Result(1, b"x"),)))  # reply in batch
        with pytest.raises(ProtocolError):
            encode_client_message(Batch(tuple(
                Query(i) for i in range(MAX_BATCH_OPS + 1)
            )))
        with pytest.raises(ProtocolError):
            encode_client_message(BatchReply((Query(1),)))  # op in reply

    def test_batch_malformed_wire_bytes(self):
        good = encode_client_message(Batch((Query(1), Delete(2))))
        with pytest.raises(ProtocolError):
            decode_client_message(good + b"\x00")  # trailing garbage
        with pytest.raises(ProtocolError):
            decode_client_message(good[:-3])  # truncated inner item
        with pytest.raises(ProtocolError):
            decode_client_message(b"\x14\x00\x00\x00\x00")  # zero count
        # A batch whose inner item is itself a batch must be refused even
        # when hand-crafted on the wire (the encoder already refuses it).
        inner = encode_client_message(Query(1))
        nested = encode_client_message(Batch((Query(1),)))
        crafted = (b"\x14" + (2).to_bytes(4, "big")
                   + len(inner).to_bytes(4, "big") + inner
                   + len(nested).to_bytes(4, "big") + nested)
        with pytest.raises(ProtocolError):
            decode_client_message(crafted)


class TestFrontend:
    @pytest.fixture
    def frontend(self):
        return QueryFrontend(make_db(num_records=40, reserve_fraction=0.2,
                                     seed=500))

    def test_single_client_operations(self, frontend):
        client = ServiceClient(frontend)
        assert client.query(5) == RECORDS[5]
        client.update(5, b"via service")
        assert client.query(5) == b"via service"
        new_id = client.insert(b"svc insert")
        assert client.query(new_id) == b"svc insert"
        client.delete(3)
        # The refusal surfaces with the server's error class, not a
        # generic client error.
        with pytest.raises(PageDeletedError):
            client.query(3)

    def test_multiple_clients_share_the_database(self, frontend):
        alice = ServiceClient(frontend)
        bob = ServiceClient(frontend)
        alice.update(2, b"from alice")
        assert bob.query(2) == b"from alice"
        assert frontend.counters.get("sessions") == 2
        assert frontend.counters.get("requests") == 2

    def test_sessions_are_cryptographically_separate(self, frontend):
        alice = ServiceClient(frontend)
        bob = ServiceClient(frontend)
        sealed = alice._suite.encrypt_page(
            encode_client_message(Query(1))
        )
        # Bob's session key cannot open Alice's request.
        reply = frontend.serve(bob.session_id, sealed)
        decoded = decode_client_message(bob._suite.decrypt_page(reply))
        assert isinstance(decoded, Refused)

    def test_unknown_session_rejected(self, frontend):
        with pytest.raises(ProtocolError):
            frontend.serve(999, b"blob")

    def test_closed_session_rejected(self, frontend):
        client = ServiceClient(frontend)
        client.close()
        with pytest.raises(ProtocolError):
            client.query(0)

    def test_client_latency_includes_rtt(self, frontend):
        client = ServiceClient(frontend, rtt=0.02)
        client.query(1)
        assert client.latencies.minimum() >= 0.02

    def test_trace_uniform_across_clients_and_ops(self, frontend):
        alice = ServiceClient(frontend)
        bob = ServiceClient(frontend)
        alice.query(0)
        bob.update(1, b"x")
        alice.insert(b"y")
        bob.query(0)
        assert shapes_identical(frontend.database.trace, 0)

    def test_refusal_does_not_crash_session(self, frontend):
        client = ServiceClient(frontend)
        with pytest.raises(PageNotFoundError):
            client.query(10**9)  # out of range -> Refused
        assert client.query(4) == RECORDS[4]  # session still healthy


class TestBatchRequests:
    @pytest.fixture
    def frontend(self):
        return QueryFrontend(make_db(num_records=40, reserve_fraction=0.2,
                                     seed=510))

    def test_mixed_batch(self, frontend):
        client = ServiceClient(frontend)
        replies = client.batch([
            Query(5),
            Update(6, b"batched"),
            Insert(b"batch insert"),
            Query(6),
        ])
        assert replies[0] == Result(5, RECORDS[5])
        assert replies[1] == Ok()
        assert isinstance(replies[2], Result)
        assert replies[3] == Result(6, b"batched")
        assert client.query(replies[2].page_id) == b"batch insert"

    def test_batch_pays_session_crypto_once(self, frontend):
        client = ServiceClient(frontend)
        client.batch([Query(i) for i in range(8)])
        # One sealed request frame in, one sealed reply frame out.
        assert frontend.counters.get("requests") == 1
        assert frontend.counters.get("batch.requests") == 1
        assert frontend.counters.get("batch.ops") == 8

    def test_failures_are_per_operation(self, frontend):
        client = ServiceClient(frontend)
        client.delete(3)
        replies = client.batch([Query(2), Query(3), Query(10**9), Query(4)])
        assert replies[0] == Result(2, RECORDS[2])
        assert isinstance(replies[1], Refused)
        assert replies[1].code == "deleted"
        assert isinstance(replies[2], Refused)
        assert replies[2].code == "not-found"
        assert replies[3] == Result(4, RECORDS[4])

    def test_query_many(self, frontend):
        client = ServiceClient(frontend)
        assert client.query_many([1, 7, 13]) == [
            RECORDS[1], RECORDS[7], RECORDS[13]
        ]
        client.delete(7)
        with pytest.raises(PageDeletedError):
            client.query_many([1, 7, 13])

    def test_duplicate_batch_not_reexecuted(self, frontend):
        session = frontend.open_session()
        suite = frontend.session_suite(session)
        sealed = suite.encrypt_page(encode_client_message(
            Batch((Insert(b"once"), Query(1)))
        ))
        first = frontend.serve(session, sealed)
        count = frontend.database.engine.request_count
        assert frontend.serve(session, sealed) == first
        assert frontend.database.engine.request_count == count
        assert frontend.counters.get("requests.duplicate") == 1

    def test_batch_trace_indistinguishable_from_serial(self):
        # Pins the *serial* dispatch loop's trace: each batch op must look
        # exactly like a standalone request.  The fused path has its own
        # (window-level) shape invariant, tested in test_batch_fused.py.
        frontend = QueryFrontend(
            make_db(num_records=40, reserve_fraction=0.2, seed=500),
            fused_batches=False,
        )
        client = ServiceClient(frontend)
        client.batch([Query(0), Update(1, b"x"), Query(2)])
        client.query(3)
        assert shapes_identical(frontend.database.trace, 0)


class TestSealedReplyCache:
    def test_lru_eviction_bound(self):
        cache = SealedReplyCache(capacity=3)
        for i in range(5):
            cache.put(1, b"req%d" % i, b"rep%d" % i)
        assert len(cache) == 3
        assert cache.get(1, b"req0") is None
        assert cache.get(1, b"req4") == b"rep4"

    def test_get_refreshes_recency(self):
        cache = SealedReplyCache(capacity=2)
        cache.put(1, b"a", b"ra")
        cache.put(1, b"b", b"rb")
        assert cache.get(1, b"a") == b"ra"  # refresh a
        cache.put(1, b"c", b"rc")  # evicts b, not a
        assert cache.get(1, b"b") is None
        assert cache.get(1, b"a") == b"ra"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ProtocolError):
            SealedReplyCache(0)

    def test_frontend_cache_stays_bounded_under_load(self):
        frontend = QueryFrontend(
            make_db(num_records=40, reserve_fraction=0.2, seed=511),
            reply_cache_size=4,
        )
        session = frontend.open_session()
        suite = frontend.session_suite(session)
        sealed_requests = [
            suite.encrypt_page(encode_client_message(Query(i % 40)))
            for i in range(12)
        ]
        for sealed in sealed_requests:
            frontend.serve(session, sealed)
        assert len(frontend._reply_cache) == 4
        # Recent transmissions still deduplicate ...
        count = frontend.database.engine.request_count
        frontend.serve(session, sealed_requests[-1])
        assert frontend.database.engine.request_count == count
        assert frontend.counters.get("requests.duplicate") == 1
        # ... while evicted ones re-execute (safe: queries are idempotent).
        frontend.serve(session, sealed_requests[0])
        assert frontend.database.engine.request_count == count + 1
