"""Three-party service layer: protocol codec, sessions, multi-client use."""

from __future__ import annotations

import pytest

from repro.baselines import make_records
from repro.errors import PageDeletedError, PageNotFoundError, ProtocolError
from repro.service import (
    Delete,
    Insert,
    Ok,
    Query,
    QueryFrontend,
    Refused,
    Result,
    ServiceClient,
    Update,
    decode_client_message,
    encode_client_message,
)
from repro.storage.trace import shapes_identical

from tests.helpers import make_db

RECORDS = make_records(40, 16)


class TestProtocolCodec:
    @pytest.mark.parametrize(
        "message",
        [
            Query(7),
            Update(3, b"payload"),
            Insert(b"fresh bytes"),
            Delete(12),
            Result(9, b"data"),
            Ok(),
            Refused("nope"),
        ],
    )
    def test_roundtrip(self, message):
        assert decode_client_message(encode_client_message(message)) == message

    def test_empty_payloads(self):
        assert decode_client_message(encode_client_message(Insert(b""))) == Insert(b"")

    def test_malformed(self):
        with pytest.raises(ProtocolError):
            decode_client_message(b"")
        with pytest.raises(ProtocolError):
            decode_client_message(b"\xaa")
        with pytest.raises(ProtocolError):
            decode_client_message(b"\x10\x00")  # truncated QUERY
        good = encode_client_message(Update(1, b"xy"))
        with pytest.raises(ProtocolError):
            decode_client_message(good + b"\x00")  # trailing garbage


class TestFrontend:
    @pytest.fixture
    def frontend(self):
        return QueryFrontend(make_db(num_records=40, reserve_fraction=0.2,
                                     seed=500))

    def test_single_client_operations(self, frontend):
        client = ServiceClient(frontend)
        assert client.query(5) == RECORDS[5]
        client.update(5, b"via service")
        assert client.query(5) == b"via service"
        new_id = client.insert(b"svc insert")
        assert client.query(new_id) == b"svc insert"
        client.delete(3)
        # The refusal surfaces with the server's error class, not a
        # generic client error.
        with pytest.raises(PageDeletedError):
            client.query(3)

    def test_multiple_clients_share_the_database(self, frontend):
        alice = ServiceClient(frontend)
        bob = ServiceClient(frontend)
        alice.update(2, b"from alice")
        assert bob.query(2) == b"from alice"
        assert frontend.counters.get("sessions") == 2
        assert frontend.counters.get("requests") == 2

    def test_sessions_are_cryptographically_separate(self, frontend):
        alice = ServiceClient(frontend)
        bob = ServiceClient(frontend)
        sealed = alice._suite.encrypt_page(
            encode_client_message(Query(1))
        )
        # Bob's session key cannot open Alice's request.
        reply = frontend.serve(bob.session_id, sealed)
        decoded = decode_client_message(bob._suite.decrypt_page(reply))
        assert isinstance(decoded, Refused)

    def test_unknown_session_rejected(self, frontend):
        with pytest.raises(ProtocolError):
            frontend.serve(999, b"blob")

    def test_closed_session_rejected(self, frontend):
        client = ServiceClient(frontend)
        client.close()
        with pytest.raises(ProtocolError):
            client.query(0)

    def test_client_latency_includes_rtt(self, frontend):
        client = ServiceClient(frontend, rtt=0.02)
        client.query(1)
        assert client.latencies.minimum() >= 0.02

    def test_trace_uniform_across_clients_and_ops(self, frontend):
        alice = ServiceClient(frontend)
        bob = ServiceClient(frontend)
        alice.query(0)
        bob.update(1, b"x")
        alice.insert(b"y")
        bob.query(0)
        assert shapes_identical(frontend.database.trace, 0)

    def test_refusal_does_not_crash_session(self, frontend):
        client = ServiceClient(frontend)
        with pytest.raises(PageNotFoundError):
            client.query(10**9)  # out of range -> Refused
        assert client.query(4) == RECORDS[4]  # session still healthy
