"""Partitioned multi-coprocessor deployment."""

from __future__ import annotations

import pytest

from repro.baselines import make_records
from repro.core.sharded import ShardedPirDatabase
from repro.errors import ConfigurationError, PageDeletedError, PageNotFoundError
from repro.hardware.specs import HardwareSpec

RECORDS = make_records(60, 16)


def _sharded(num_shards=3, cover=True, seed=7, **options):
    defaults = dict(
        cache_capacity_per_shard=4,
        target_c=2.0,
        page_capacity=16,
        reserve_fraction=0.2,
    )
    defaults.update(options)
    return ShardedPirDatabase.create(
        RECORDS, num_shards, cover_traffic=cover, seed=seed, **defaults
    )


class TestRoutingAndCorrectness:
    def test_every_record_retrievable(self):
        db = _sharded()
        for global_id in range(60):
            assert db.query(global_id) == RECORDS[global_id]

    def test_updates_route_correctly(self):
        db = _sharded(seed=8)
        db.update(0, b"first shard")
        db.update(59, b"last shard")
        assert db.query(0) == b"first shard"
        assert db.query(59) == b"last shard"

    def test_delete_and_error(self):
        db = _sharded(seed=9)
        db.delete(25)
        with pytest.raises(PageDeletedError):
            db.query(25)

    def test_insert_returns_routable_global_id(self):
        db = _sharded(seed=10)
        ids = [db.insert(f"extra-{i}".encode()) for i in range(6)]
        assert len(set(ids)) == 6
        assert all(gid >= 60 for gid in ids)
        for i, gid in enumerate(ids):
            assert db.query(gid) == f"extra-{i}".encode()

    def test_unknown_global_id(self):
        db = _sharded(seed=11)
        with pytest.raises(PageNotFoundError):
            db.query(10**9)

    def test_consistency_across_shards(self):
        db = _sharded(seed=12)
        for step in range(40):
            db.query(step % 60)
        db.consistency_check()

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedPirDatabase.create(RECORDS, 0, cache_capacity_per_shard=4)
        with pytest.raises(ConfigurationError):
            ShardedPirDatabase.create(RECORDS[:2], 3,
                                      cache_capacity_per_shard=4,
                                      page_capacity=16)


class TestCoverTraffic:
    def test_cover_traffic_equalises_shard_loads(self):
        db = _sharded(cover=True, seed=13)
        for _ in range(30):
            db.query(0)  # always shard 0
        counts = db.shard_request_counts()
        assert len(set(counts)) == 1, counts

    def test_without_cover_traffic_loads_leak(self):
        db = _sharded(cover=False, seed=14)
        for _ in range(30):
            db.query(0)
        counts = db.shard_request_counts()
        assert counts[0] == 30 and counts[1] == 0 and counts[2] == 0

    def test_total_requests_cost_of_cover(self):
        covered = _sharded(cover=True, seed=15)
        bare = _sharded(cover=False, seed=16)
        for db in (covered, bare):
            for step in range(10):
                db.query(step % 60)
        assert covered.total_requests() == 3 * bare.total_requests()

    def test_access_order_independent_of_target_shard(self):
        """The cross-shard issue order must not reveal the real shard.

        The old dispatcher ran the real operation first and the covers
        after it, so the *position* of each shard in the access sequence
        leaked the target.  In serial mode operations run inline in
        submission order, so recording per-shard entry observes exactly
        the order the dispatcher issues.
        """
        orders = {}
        for target in (0, 25, 59):  # one id per shard
            db = _sharded(seed=22, parallel=False)
            observed = []

            def _instrument(index, shard):
                real_touch = shard.touch
                real_query = shard.query

                def touch():
                    observed.append(index)
                    return real_touch()

                def query(page_id):
                    observed.append(index)
                    return real_query(page_id)

                shard.touch = touch
                shard.query = query

            for index, shard in enumerate(db.shards):
                _instrument(index, shard)
            db.query(target)
            orders[target] = tuple(observed)
        assert set(orders.values()) == {(0, 1, 2)}, orders

    def test_failed_operation_still_issues_covers(self):
        """Covers run even when the real op fails: loads stay equalised."""
        db = _sharded(seed=23)
        db.delete(10)
        before = db.shard_request_counts()
        with pytest.raises(PageNotFoundError):
            db.query(10**9)
        # Routing errors never reach the shards at all ...
        assert db.shard_request_counts() == before
        # ... but a failure *inside* the target shard still drives every
        # cover, so the executor never leaves cover traffic half-issued.
        shard0 = db.shards[0]
        original = shard0.query
        shard0.query = lambda page_id: (_ for _ in ()).throw(
            PageNotFoundError("injected shard fault")
        )
        try:
            with pytest.raises(PageNotFoundError, match="injected"):
                db.query(0)
        finally:
            shard0.query = original
        after = db.shard_request_counts()
        assert after[1] == before[1] + 1
        assert after[2] == before[2] + 1


class TestRoutingStaleness:
    def test_deleted_inserted_id_does_not_alias_new_insert(self):
        """delete -> insert must not resurrect the old global id.

        The old routing table never removed entries on delete, so once a
        shard recycled the freed slot the stale global id silently aliased
        the *new* record.
        """
        db = _sharded(seed=24)
        old_id = db.insert(b"short-lived")
        db.delete(old_id)
        new_id = db.insert(b"replacement")
        assert db.query(new_id) == b"replacement"
        with pytest.raises(PageNotFoundError):
            db.query(old_id)

    def test_deleted_base_id_stays_dead_after_reinsert(self):
        db = _sharded(seed=25)
        db.delete(5)
        # Inserts may recycle shard 0's freed slot under a fresh id.
        fresh = [db.insert(f"recycled-{i}".encode()) for i in range(3)]
        with pytest.raises(PageDeletedError):
            db.query(5)
        for i, gid in enumerate(fresh):
            assert db.query(gid) == f"recycled-{i}".encode()

    def test_delete_is_idempotent_error(self):
        db = _sharded(seed=26)
        db.delete(7)
        with pytest.raises(PageDeletedError):
            db.delete(7)


class TestParallelExecution:
    def test_parallel_and_serial_streams_identical(self):
        """Each shard owns its clock/RNG, so interleaving changes nothing."""
        results = {}
        for parallel in (False, True):
            with _sharded(seed=27, parallel=parallel,
                          spec=HardwareSpec()) as db:
                payloads = [db.query(step % 60) for step in range(20)]
                db.update(3, b"parallel-proof")
                payloads.append(db.query(3))
                results[parallel] = (
                    payloads,
                    [shard.clock.now for shard in db.shards],
                    db.shard_request_counts(),
                )
                db.consistency_check()
        assert results[False] == results[True]

    def test_elapsed_serial_sums_shard_clocks(self):
        with _sharded(seed=28, spec=HardwareSpec()) as db:
            for step in range(9):
                db.query(step % 60)
            assert db.elapsed_serial() == pytest.approx(
                sum(s.clock.now for s in db.shards)
            )
            # Cover traffic keeps shard loads equal, so the parallel
            # deployment's speedup approaches the shard count.
            assert db.elapsed_serial() / db.elapsed() > 2.0

    def test_executor_counters(self):
        with _sharded(seed=29) as db:
            db.query(0)
            db.query(42)
        assert db.counters.get("dispatches") == 2
        assert db.counters.get("operations") == 6
        assert db.counters.get("covers") == 4

    def test_shared_tracer_forces_serial(self):
        from repro.obs.tracer import Tracer

        db = _sharded(seed=30, tracer=Tracer())
        assert db.executor.parallel is False
        db.query(1)


class TestAggregates:
    def test_achieved_c_is_worst_shard(self):
        db = _sharded(seed=17)
        assert db.achieved_c == max(s.achieved_c for s in db.shards)
        assert db.achieved_c <= 2.0 + 1e-9

    def test_storage_aggregates(self):
        db = _sharded(seed=18)
        report = db.storage_report()
        assert report.total == sum(s.storage_report().total for s in db.shards)

    def test_parallel_elapsed_is_max(self):
        db = _sharded(seed=19, spec=HardwareSpec())
        db.query(5)
        assert db.elapsed() == max(s.clock.now for s in db.shards)
        assert db.elapsed() > 0

    def test_smaller_shards_give_smaller_blocks(self):
        """Partitioning shrinks each instance's n, hence k and per-unit cost."""
        whole = make_records(60, 16)
        from repro.core.database import PirDatabase

        single = PirDatabase.create(whole, cache_capacity=4, target_c=2.0,
                                    page_capacity=16, seed=20)
        sharded = _sharded(seed=21)
        assert all(
            s.params.block_size <= single.params.block_size
            for s in sharded.shards
        )
