"""Partitioned multi-coprocessor deployment."""

from __future__ import annotations

import pytest

from repro.baselines import make_records
from repro.core.sharded import ShardedPirDatabase
from repro.errors import ConfigurationError, PageDeletedError, PageNotFoundError
from repro.hardware.specs import HardwareSpec

RECORDS = make_records(60, 16)


def _sharded(num_shards=3, cover=True, seed=7, **options):
    defaults = dict(
        cache_capacity_per_shard=4,
        target_c=2.0,
        page_capacity=16,
        reserve_fraction=0.2,
    )
    defaults.update(options)
    return ShardedPirDatabase.create(
        RECORDS, num_shards, cover_traffic=cover, seed=seed, **defaults
    )


class TestRoutingAndCorrectness:
    def test_every_record_retrievable(self):
        db = _sharded()
        for global_id in range(60):
            assert db.query(global_id) == RECORDS[global_id]

    def test_updates_route_correctly(self):
        db = _sharded(seed=8)
        db.update(0, b"first shard")
        db.update(59, b"last shard")
        assert db.query(0) == b"first shard"
        assert db.query(59) == b"last shard"

    def test_delete_and_error(self):
        db = _sharded(seed=9)
        db.delete(25)
        with pytest.raises(PageDeletedError):
            db.query(25)

    def test_insert_returns_routable_global_id(self):
        db = _sharded(seed=10)
        ids = [db.insert(f"extra-{i}".encode()) for i in range(6)]
        assert len(set(ids)) == 6
        assert all(gid >= 60 for gid in ids)
        for i, gid in enumerate(ids):
            assert db.query(gid) == f"extra-{i}".encode()

    def test_unknown_global_id(self):
        db = _sharded(seed=11)
        with pytest.raises(PageNotFoundError):
            db.query(10**9)

    def test_consistency_across_shards(self):
        db = _sharded(seed=12)
        for step in range(40):
            db.query(step % 60)
        db.consistency_check()

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedPirDatabase.create(RECORDS, 0, cache_capacity_per_shard=4)
        with pytest.raises(ConfigurationError):
            ShardedPirDatabase.create(RECORDS[:2], 3,
                                      cache_capacity_per_shard=4,
                                      page_capacity=16)


class TestCoverTraffic:
    def test_cover_traffic_equalises_shard_loads(self):
        db = _sharded(cover=True, seed=13)
        for _ in range(30):
            db.query(0)  # always shard 0
        counts = db.shard_request_counts()
        assert len(set(counts)) == 1, counts

    def test_without_cover_traffic_loads_leak(self):
        db = _sharded(cover=False, seed=14)
        for _ in range(30):
            db.query(0)
        counts = db.shard_request_counts()
        assert counts[0] == 30 and counts[1] == 0 and counts[2] == 0

    def test_total_requests_cost_of_cover(self):
        covered = _sharded(cover=True, seed=15)
        bare = _sharded(cover=False, seed=16)
        for db in (covered, bare):
            for step in range(10):
                db.query(step % 60)
        assert covered.total_requests() == 3 * bare.total_requests()


class TestAggregates:
    def test_achieved_c_is_worst_shard(self):
        db = _sharded(seed=17)
        assert db.achieved_c == max(s.achieved_c for s in db.shards)
        assert db.achieved_c <= 2.0 + 1e-9

    def test_storage_aggregates(self):
        db = _sharded(seed=18)
        report = db.storage_report()
        assert report.total == sum(s.storage_report().total for s in db.shards)

    def test_parallel_elapsed_is_max(self):
        db = _sharded(seed=19, spec=HardwareSpec())
        db.query(5)
        assert db.elapsed() == max(s.clock.now for s in db.shards)
        assert db.elapsed() > 0

    def test_smaller_shards_give_smaller_blocks(self):
        """Partitioning shrinks each instance's n, hence k and per-unit cost."""
        whole = make_records(60, 16)
        from repro.core.database import PirDatabase

        single = PirDatabase.create(whole, cache_capacity=4, target_c=2.0,
                                    page_capacity=16, seed=20)
        sharded = _sharded(seed=21)
        assert all(
            s.params.block_size <= single.params.block_size
            for s in sharded.shards
        )
