"""Storage substrate: pages, disk, timing model, access trace."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, StorageError
from repro.sim.clock import VirtualClock
from repro.storage.disk import DiskStore
from repro.storage.page import DUMMY_ID, HEADER_SIZE, Page
from repro.storage.timing import DiskTimingModel
from repro.storage.trace import READ, WRITE, AccessEvent, AccessTrace, shapes_identical


class TestPage:
    def test_roundtrip(self):
        page = Page(7, b"payload bytes")
        assert Page.decode(page.encode(32)) == page

    def test_fixed_encoding_size(self):
        assert len(Page(1, b"abc").encode(100)) == HEADER_SIZE + 100
        assert len(Page(1, b"").encode(100)) == HEADER_SIZE + 100

    def test_deleted_flag_roundtrip(self):
        page = Page(3, b"", deleted=True)
        assert Page.decode(page.encode(8)).deleted

    def test_dummy(self):
        dummy = Page.dummy()
        assert dummy.is_dummy and dummy.is_free
        assert Page.decode(dummy.encode(4)).page_id == DUMMY_ID

    def test_is_free(self):
        assert Page(1, b"", deleted=True).is_free
        assert not Page(1, b"x").is_free

    def test_with_payload_and_mark_deleted(self):
        page = Page(5, b"old")
        updated = page.with_payload(b"new")
        assert updated.payload == b"new" and not updated.deleted
        gone = updated.mark_deleted()
        assert gone.deleted and gone.payload == b""
        assert page.payload == b"old"  # immutability

    def test_payload_too_large(self):
        with pytest.raises(StorageError):
            Page(1, bytes(10)).encode(9)

    def test_bad_id(self):
        with pytest.raises(StorageError):
            Page(-1)
        with pytest.raises(StorageError):
            Page(DUMMY_ID + 1)

    def test_decode_truncated(self):
        with pytest.raises(StorageError):
            Page.decode(bytes(HEADER_SIZE - 1))

    def test_decode_lying_header(self):
        raw = bytearray(Page(1, b"ab").encode(2))
        raw[9:13] = (100).to_bytes(4, "big")  # claims 100-byte payload
        with pytest.raises(StorageError):
            Page.decode(bytes(raw))

    @settings(max_examples=40, deadline=None)
    @given(
        page_id=st.integers(min_value=0, max_value=DUMMY_ID),
        payload=st.binary(max_size=64),
        deleted=st.booleans(),
    )
    def test_roundtrip_property(self, page_id, payload, deleted):
        page = Page(page_id, payload, deleted)
        assert Page.decode(page.encode(64)) == page


class TestTimingModel:
    def test_table2_read_time(self):
        model = DiskTimingModel()
        # 5 ms seek + 1 MB / (100 MB/s) = 15 ms.
        assert model.read_time(10**6) == pytest.approx(0.015)

    def test_write_time(self):
        model = DiskTimingModel(seek_time=0.001, write_bandwidth=1e6)
        assert model.write_time(1000) == pytest.approx(0.002)

    def test_instantaneous(self):
        model = DiskTimingModel.instantaneous()
        assert model.read_time(10**9) == 0.0
        assert model.write_time(10**9) == 0.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            DiskTimingModel(seek_time=-1)
        with pytest.raises(ConfigurationError):
            DiskTimingModel(read_bandwidth=0)
        with pytest.raises(ConfigurationError):
            DiskTimingModel().read_time(-1)


class TestDiskStore:
    def _disk(self, n=16, frame=8, timing=None):
        return DiskStore(n, frame, timing=timing, clock=VirtualClock())

    def test_write_then_read(self):
        disk = self._disk()
        disk.write(3, b"12345678")
        assert disk.read(3) == b"12345678"

    def test_range_roundtrip(self):
        disk = self._disk()
        frames = [bytes([i]) * 8 for i in range(4)]
        disk.write_range(2, frames)
        assert disk.read_range(2, 4) == frames

    def test_read_uninitialised(self):
        with pytest.raises(StorageError):
            self._disk().read(0)

    def test_bounds(self):
        disk = self._disk()
        with pytest.raises(StorageError):
            disk.read_range(14, 3)
        with pytest.raises(StorageError):
            disk.write(-1, bytes(8))
        with pytest.raises(StorageError):
            disk.read_range(0, 0)

    def test_frame_size_enforced(self):
        disk = self._disk()
        with pytest.raises(StorageError):
            disk.write(0, bytes(7))

    def test_timing_charged(self):
        disk = self._disk(timing=DiskTimingModel(seek_time=0.01, read_bandwidth=800,
                                                 write_bandwidth=800))
        disk.write_range(0, [bytes(8)] * 2)  # 0.01 + 16/800 = 0.03
        assert disk.clock.now == pytest.approx(0.03)
        disk.read_range(0, 2)
        assert disk.clock.now == pytest.approx(0.06)

    def test_trace_records_request_attribution(self):
        disk = self._disk()
        disk.write_range(0, [bytes(8)] * 4)
        disk.current_request = 9
        disk.read_range(0, 2)
        disk.read(3)
        events = disk.trace.events_for_request(9)
        assert [(e.op, e.location, e.count) for e in events] == [
            (READ, 0, 2),
            (READ, 3, 1),
        ]

    def test_request_combined_calls_match_split_calls(self):
        disk = self._disk()
        disk.write_range(0, [bytes([i]) * 8 for i in range(16)])
        frames, extra = disk.read_request(4, 3, 11)
        assert frames == disk.read_range(4, 3)
        assert extra == disk.read(11)
        disk.write_request(0, [bytes(8)] * 3, 9, b"y" * 8)
        assert disk.read(9) == b"y" * 8
        assert disk.read_range(0, 3) == [bytes(8)] * 3

    def test_peek_has_no_side_effects(self):
        disk = self._disk(timing=DiskTimingModel())
        disk.write(0, bytes(8))
        before_time, before_events = disk.clock.now, len(disk.trace)
        assert disk.peek(0) == bytes(8)
        assert disk.peek(1) is None
        assert disk.clock.now == before_time
        assert len(disk.trace) == before_events

    def test_initialised_locations(self):
        disk = self._disk()
        assert disk.initialised_locations() == 0
        disk.write_range(0, [bytes(8)] * 5)
        assert disk.initialised_locations() == 5

    def test_invalid_construction(self):
        with pytest.raises(StorageError):
            DiskStore(0, 8)
        with pytest.raises(StorageError):
            DiskStore(4, 0)


class TestAccessTrace:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            AccessEvent("move", 0, 1)
        with pytest.raises(ConfigurationError):
            AccessEvent(READ, -1, 1)
        with pytest.raises(ConfigurationError):
            AccessEvent(READ, 0, 0)

    def test_disabled_trace_records_nothing(self):
        trace = AccessTrace(enabled=False)
        trace.record(AccessEvent(READ, 0, 1))
        assert len(trace) == 0

    def test_location_counts(self):
        trace = AccessTrace()
        trace.record(AccessEvent(READ, 0, 3, 0))
        trace.record(AccessEvent(READ, 2, 2, 1))
        trace.record(AccessEvent(WRITE, 2, 1, 1))
        reads = trace.location_read_counts()
        assert reads[2] == 2 and reads[0] == 1 and reads[4] == 0
        assert trace.location_write_counts()[2] == 1

    def test_request_shapes(self):
        trace = AccessTrace()
        for request in range(3):
            trace.record(AccessEvent(READ, request, 4, request))
            trace.record(AccessEvent(READ, 10, 1, request))
            trace.record(AccessEvent(WRITE, request, 4, request))
            trace.record(AccessEvent(WRITE, 10, 1, request))
        assert trace.request_shape(1) == [(READ, 4), (READ, 1), (WRITE, 4), (WRITE, 1)]
        assert shapes_identical(trace, 0)
        assert trace.num_requests() == 3

    def test_shapes_differ_detected(self):
        trace = AccessTrace()
        trace.record(AccessEvent(READ, 0, 4, 0))
        trace.record(AccessEvent(READ, 0, 5, 1))
        assert not shapes_identical(trace, 0, 1)

    def test_bytes_transferred(self):
        trace = AccessTrace()
        trace.record(AccessEvent(READ, 0, 3, 0))
        trace.record(AccessEvent(WRITE, 0, 2, 0))
        assert trace.bytes_transferred(100) == 500
        with pytest.raises(ConfigurationError):
            trace.bytes_transferred(0)

    def test_summary_and_clear(self):
        trace = AccessTrace()
        trace.record(AccessEvent(READ, 0, 1, 0))
        assert trace.summary()["reads"] == 1
        trace.clear()
        assert len(trace) == 0
