"""Admission-control tests (repro.net.admission)."""

import pytest

from repro.errors import ConfigurationError
from repro.net.admission import AdmissionController, TokenBucket
from repro.obs import MetricsRegistry


class FakeTime:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeTime()
        bucket = TokenBucket(rate=1.0, capacity=3.0, time_source=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        clock = FakeTime()
        bucket = TokenBucket(rate=2.0, capacity=2.0, time_source=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # +1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_capacity(self):
        clock = FakeTime()
        bucket = TokenBucket(rate=10.0, capacity=2.0, time_source=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_retry_after_reflects_deficit(self):
        clock = FakeTime()
        bucket = TokenBucket(rate=4.0, capacity=1.0, time_source=clock)
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.25)
        clock.advance(0.25)
        assert bucket.retry_after() == pytest.approx(0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, capacity=-1.0)


class TestAdmissionController:
    def test_session_cap(self):
        controller = AdmissionController(max_sessions=2)
        assert controller.admit_session(0) is None
        assert controller.admit_session(1) is None
        refusal = controller.admit_session(2)
        assert refusal is not None
        assert refusal.code == "unavailable"
        assert refusal.retryable
        assert controller.counters.get("shed.sessions") == 1
        assert controller.counters.get("shed") == 1

    def test_queue_depth_gate(self):
        controller = AdmissionController(max_queue_depth=4)
        assert controller.admit_request(3) is None
        refusal = controller.admit_request(4)
        assert refusal is not None and refusal.retryable
        assert controller.counters.get("shed.queue") == 1

    def test_rate_gate_uses_bucket_hint(self):
        clock = FakeTime()
        bucket = TokenBucket(rate=1.0, capacity=1.0, time_source=clock)
        controller = AdmissionController(bucket=bucket, retry_hint=0.01)
        assert controller.admit_request(0) is None
        refusal = controller.admit_request(0)
        assert refusal is not None
        assert refusal.code == "unavailable"
        assert refusal.retry_after == pytest.approx(1.0)
        assert controller.counters.get("shed.rate") == 1

    def test_disabled_gates_admit_everything(self):
        controller = AdmissionController()
        for depth in (0, 10, 10_000):
            assert controller.admit_request(depth) is None
        assert controller.admit_session(10_000) is None
        assert controller.counters.get("shed") == 0

    def test_retry_hint_floors_retry_after(self):
        controller = AdmissionController(max_sessions=1, retry_hint=0.5)
        refusal = controller.admit_session(1)
        assert refusal.retry_after >= 0.5

    def test_counters_mirror_into_registry(self):
        registry = MetricsRegistry()
        controller = AdmissionController(max_sessions=1, metrics=registry)
        controller.admit_session(5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["net.shed"] == 1
        assert snapshot["counters"]["net.shed.sessions"] == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_sessions=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue_depth=-1)
        with pytest.raises(ConfigurationError):
            AdmissionController(retry_hint=-0.1)
