"""Secure-hardware substrate: specs, cache, page map, coprocessor."""

from __future__ import annotations

import math

import pytest

from repro.crypto.rng import SecureRandom
from repro.errors import (
    CapacityError,
    ConfigurationError,
    PageNotFoundError,
)
from repro.hardware.cache import LRU_POLICY, PageCache
from repro.hardware.coprocessor import SecureCoprocessor
from repro.hardware.pagemap import PageMap
from repro.hardware.specs import IBM_4764, MEGABYTE, HardwareSpec
from repro.sim.clock import VirtualClock
from repro.storage.page import Page


class TestHardwareSpec:
    def test_table2_defaults(self):
        assert IBM_4764.secure_memory == 64 * MEGABYTE
        assert IBM_4764.link_bandwidth == 80e6
        assert IBM_4764.crypto_throughput == 10e6
        assert IBM_4764.disk.seek_time == 5e-3
        assert IBM_4764.disk.read_bandwidth == 100e6

    def test_scaled_units(self):
        two = IBM_4764.scaled(2)
        assert two.total_secure_memory == 128 * MEGABYTE
        assert two.link_bandwidth == IBM_4764.link_bandwidth

    def test_timing(self):
        assert IBM_4764.link_time(80e6) == pytest.approx(1.0)
        assert IBM_4764.crypto_time(10e6) == pytest.approx(1.0)
        assert IBM_4764.ingest_time(0) == 0.0

    def test_instantaneous(self):
        spec = HardwareSpec.instantaneous()
        assert spec.ingest_time(10**12) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HardwareSpec(secure_memory=0)
        with pytest.raises(ConfigurationError):
            HardwareSpec(units=0)
        with pytest.raises(ConfigurationError):
            IBM_4764.link_time(-1)


class TestPageCache:
    def _cache(self, m=8, policy="random", seed=1):
        cache = PageCache(m, SecureRandom(seed), policy)
        cache.fill([Page(100 + slot, b"") for slot in range(m)])
        return cache

    def test_fill_and_get(self):
        cache = self._cache()
        assert cache.get(3).page_id == 103
        assert cache.is_full and len(cache) == 8

    def test_put_returns_previous(self):
        cache = self._cache()
        previous = cache.put(2, Page(7, b"x"))
        assert previous.page_id == 102
        assert cache.get(2).page_id == 7

    def test_fill_requires_exact_count(self):
        cache = PageCache(4, SecureRandom(1))
        with pytest.raises(CapacityError):
            cache.fill([Page(1)])

    def test_victim_uniformity(self):
        cache = self._cache(m=4, seed=3)
        counts = [0, 0, 0, 0]
        for _ in range(4000):
            counts[cache.victim_slot()] += 1
        assert all(850 < c < 1150 for c in counts), counts

    def test_victim_requires_full_cache(self):
        cache = PageCache(4, SecureRandom(1))
        with pytest.raises(CapacityError):
            cache.victim_slot()

    def test_lru_policy_evicts_oldest(self):
        cache = self._cache(m=3, policy=LRU_POLICY)
        cache.put(0, Page(1, b""))
        cache.put(1, Page(2, b""))
        # Slot 2 was never re-stored since fill -> least recently used.
        assert cache.victim_slot() == 2

    def test_slot_of(self):
        cache = self._cache()
        assert cache.slot_of(105) == 5
        assert cache.slot_of(999) is None

    def test_iteration(self):
        cache = self._cache(m=3)
        assert sorted(p.page_id for p in cache) == [100, 101, 102]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            PageCache(0, SecureRandom(1))
        with pytest.raises(ConfigurationError):
            PageCache(2, SecureRandom(1), policy="fifo")
        cache = self._cache()
        with pytest.raises(ConfigurationError):
            cache.get(8)


class TestPageMap:
    def test_disk_and_cache_transitions(self):
        pm = PageMap(10)
        pm.set_disk(3, 7)
        assert not pm.is_cached(3)
        assert pm.disk_location(3) == 7
        pm.set_cached(3, 2)
        assert pm.is_cached(3)
        assert pm.lookup(3).position == 2
        assert pm.cached_count == 1
        pm.set_disk(3, 1)
        assert pm.cached_count == 0

    def test_cached_count_idempotent(self):
        pm = PageMap(4)
        pm.set_cached(0, 0)
        pm.set_cached(0, 1)
        assert pm.cached_count == 1

    def test_disk_location_of_cached_page_fails(self):
        pm = PageMap(4)
        pm.set_cached(1, 0)
        with pytest.raises(PageNotFoundError):
            pm.disk_location(1)

    def test_unset_page(self):
        pm = PageMap(4)
        with pytest.raises(PageNotFoundError):
            pm.lookup(0)

    def test_out_of_range(self):
        pm = PageMap(4)
        with pytest.raises(PageNotFoundError):
            pm.lookup(4)
        with pytest.raises(PageNotFoundError):
            pm.is_cached(-1)

    def test_free_pool(self):
        pm = PageMap(6)
        for page_id in range(6):
            pm.set_disk(page_id, page_id)
        pm.mark_deleted(2)
        pm.mark_deleted(4)
        assert pm.free_count == 2
        assert pm.any_free_id() in {2, 4}
        assert pm.is_deleted(4)
        pm.mark_live(4)
        assert pm.free_count == 1 and not pm.is_deleted(4)

    def test_no_free_pages(self):
        with pytest.raises(PageNotFoundError):
            PageMap(3).any_free_id()

    def test_storage_accounting(self):
        pm = PageMap(1024)
        # 1024 * (10 + 1) bits = 1408 bytes.
        assert pm.storage_bits() == 1024 * 11
        assert pm.storage_bytes() == math.ceil(1024 * 11 / 8)

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            PageMap(0)
        pm = PageMap(2)
        with pytest.raises(ConfigurationError):
            pm.set_disk(0, -1)
        with pytest.raises(ConfigurationError):
            pm.set_cached(0, -1)


class TestSecureCoprocessor:
    def _cop(self, **overrides):
        options = dict(
            num_pages=20,
            cache_capacity=4,
            block_size=4,
            page_capacity=16,
            clock=VirtualClock(),
            rng=SecureRandom(5),
        )
        options.update(overrides)
        return SecureCoprocessor(**options)

    def test_seal_unseal(self):
        cop = self._cop()
        page = Page(3, b"hello")
        assert cop.unseal(cop.seal(page)) == page

    def test_frame_size_consistent(self):
        cop = self._cop()
        assert len(cop.seal(Page(0, b""))) == cop.frame_size

    def test_storage_report_mirrors_eq7(self):
        cop = self._cop()
        report = cop.storage_report()
        page_bytes = cop.plaintext_page_size
        assert report.page_cache == 4 * page_bytes
        assert report.server_block == 5 * page_bytes
        assert report.page_map == cop.page_map.storage_bytes()
        assert report.total == report.page_map + report.page_cache + report.server_block

    def test_memory_limit_enforced(self):
        tiny = HardwareSpec(secure_memory=64)  # bytes, absurdly small
        with pytest.raises(CapacityError):
            self._cop(spec=tiny, enforce_memory_limit=True)

    def test_memory_limit_pass(self):
        cop = self._cop(spec=IBM_4764, enforce_memory_limit=True)
        assert cop.storage_report().total < IBM_4764.secure_memory

    def test_timing_charges(self):
        clock = VirtualClock()
        cop = self._cop(spec=IBM_4764, clock=clock)
        cop.charge_ingest(2)
        expected = IBM_4764.ingest_time(2 * cop.frame_size)
        assert clock.now == pytest.approx(expected)
        cop.charge_egress(2)
        assert clock.now == pytest.approx(2 * expected)
