"""repro.plan online controller: windowed observation, guardrails, freeze.

The controller is driven synchronously here — ``step()`` runs one cycle —
with the registry's histograms and counters populated by hand, so every
decision path is deterministic: back off when the windowed p99 breaches
the target, open up when the latency budget is idle, clamp at the
guardrails, and never, under any input, touch a privacy parameter.
"""

from __future__ import annotations

import time

import pytest

from repro.core.params import SystemParameters
from repro.errors import ConfigurationError
from repro.net.admission import AdmissionController, TokenBucket
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.plan import Guardrail, PlanController

HIST = "engine.query_seconds"


class FakePipeline:
    """Just the surface the controller touches: max_bytes / cached_bytes."""

    def __init__(self, max_bytes=1 << 20, cached_bytes=0):
        self.max_bytes = max_bytes
        self.cached_bytes = cached_bytes
        self.calls = []

    def set_max_bytes(self, max_bytes):
        self.calls.append(max_bytes)
        self.max_bytes = max_bytes


class FakeReshuffler:
    def __init__(self, batch_size=8, idle_interval=0.01, active=True):
        self.batch_size = batch_size
        self.idle_interval = idle_interval
        self.active = active
        self.calls = []

    def set_pacing(self, batch_size=None, idle_interval=None):
        self.calls.append((batch_size, idle_interval))
        if batch_size is not None:
            self.batch_size = batch_size
        if idle_interval is not None:
            self.idle_interval = idle_interval


def make_controller(registry=None, **overrides):
    registry = registry or MetricsRegistry()
    defaults = dict(target_p99=0.1, histogram=HIST, interval=0.01)
    defaults.update(overrides)
    return registry, PlanController(registry, **defaults)


def observe(registry, *values):
    hist = registry.histogram(HIST)
    for value in values:
        hist.observe(value)


class TestValidation:
    def test_rejects_bad_parameters(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            PlanController(registry, target_p99=0.0)
        with pytest.raises(ConfigurationError):
            PlanController(registry, target_p99=0.1, interval=0.0)
        with pytest.raises(ConfigurationError):
            PlanController(registry, target_p99=0.1,
                           low_water=0.9, high_water=0.5)
        with pytest.raises(ConfigurationError):
            Guardrail(floor=2.0, ceiling=1.0)

    def test_guardrail_clamps(self):
        rail = Guardrail(1.0, 10.0)
        assert rail.clamp(0.5) == 1.0
        assert rail.clamp(5.0) == 5.0
        assert rail.clamp(50.0) == 10.0


class TestWindowedP99:
    def test_first_cycle_uses_whole_distribution(self):
        registry, ctrl = make_controller()
        observe(registry, *[0.01] * 98, 5.0, 5.0)
        p99 = ctrl.step()
        assert p99 is not None and p99 > 0.1

    def test_window_is_the_delta_not_the_total(self):
        registry, ctrl = make_controller()
        observe(registry, *[5.0] * 100)  # old slow samples
        ctrl.step()
        observe(registry, *[0.01] * 100)  # the new window is all fast
        p99 = ctrl.step()
        assert p99 is not None and p99 < 0.1

    def test_empty_window_returns_none(self):
        registry, ctrl = make_controller()
        observe(registry, 0.05)
        ctrl.step()
        assert ctrl.step() is None

    def test_cycle_counters_and_gauge(self):
        registry, ctrl = make_controller()
        observe(registry, 0.05)
        ctrl.step()
        ctrl.step()
        assert registry.counter("plan.cycles").value == 2
        assert registry.gauge("plan.window_p99").value > 0

    def test_step_runs_inside_controller_span(self):
        tracer = Tracer()
        registry, ctrl = make_controller(tracer=tracer)
        ctrl.step()
        assert "plan.controller" in tracer.phase_totals()


class TestAdmissionTuning:
    def _admission(self, rate=100.0, capacity=10.0):
        return AdmissionController(
            bucket=TokenBucket(rate=rate, capacity=capacity)
        )

    def test_backs_off_when_p99_breaches_target(self):
        admission = self._admission()
        registry, ctrl = make_controller(admission=admission)
        observe(registry, *[0.5] * 10)
        ctrl.step()
        assert admission.bucket.rate == pytest.approx(70.0)
        assert registry.counter("plan.adjust.admission").value == 1
        assert ctrl.adjustments[-1].tunable == "admission"

    def test_opens_up_when_shedding_with_idle_latency(self):
        admission = self._admission()
        registry, ctrl = make_controller(admission=admission)
        registry.counter("net.shed").inc(5)
        observe(registry, *[0.001] * 10)
        ctrl.step()
        assert admission.bucket.rate == pytest.approx(125.0)
        # Burst stays proportional to the sustained rate.
        assert admission.bucket.capacity == pytest.approx(12.5)

    def test_no_change_without_pressure(self):
        admission = self._admission()
        registry, ctrl = make_controller(admission=admission)
        observe(registry, *[0.05] * 10)  # mid-band: no action
        ctrl.step()
        assert admission.bucket.rate == 100.0
        assert registry.counter("plan.adjust.admission").value == 0
        assert ctrl.adjustments == []

    def test_guardrail_floor_holds(self):
        admission = self._admission(rate=1.5)
        registry, ctrl = make_controller(
            admission=admission,
            admission_guardrail=Guardrail(1.0, 1e6),
        )
        for _ in range(5):
            observe(registry, *[0.5] * 10)
            ctrl.step()
        assert admission.bucket.rate >= 1.0

    def test_bucketless_admission_is_ignored(self):
        admission = AdmissionController(max_sessions=4)
        registry, ctrl = make_controller(admission=admission)
        observe(registry, *[0.5] * 10)
        ctrl.step()  # must not raise
        assert registry.counter("plan.adjust.admission").value == 0


class TestPipelineTuning:
    def test_grows_on_miss_pressure(self):
        pipeline = FakePipeline(max_bytes=1 << 20)
        registry, ctrl = make_controller(pipeline=pipeline)
        registry.counter("pipeline.miss").inc(80)
        registry.counter("pipeline.hit").inc(20)
        ctrl.step()
        assert pipeline.max_bytes == 2 << 20
        assert registry.counter("plan.adjust.pipeline").value == 1

    def test_shrinks_when_overprovisioned(self):
        pipeline = FakePipeline(max_bytes=1 << 20, cached_bytes=1000)
        registry, ctrl = make_controller(pipeline=pipeline)
        registry.counter("pipeline.hit").inc(100)
        ctrl.step()
        assert pipeline.max_bytes == 1 << 19

    def test_idle_window_leaves_budget_alone(self):
        pipeline = FakePipeline()
        registry, ctrl = make_controller(pipeline=pipeline)
        ctrl.step()
        assert pipeline.calls == []

    def test_ceiling_holds(self):
        pipeline = FakePipeline(max_bytes=1 << 20)
        registry, ctrl = make_controller(
            pipeline=pipeline,
            pipeline_guardrail=Guardrail(64 * 1024, 1 << 21),
        )
        for _ in range(4):
            registry.counter("pipeline.miss").inc(100)
            ctrl.step()
        assert pipeline.max_bytes == 1 << 21


class TestReshuffleTuning:
    def test_speeds_up_when_latency_is_idle(self):
        reshuffler = FakeReshuffler(batch_size=8, idle_interval=0.01)
        registry, ctrl = make_controller(reshuffler=reshuffler)
        observe(registry, *[0.001] * 10)
        ctrl.step()
        assert reshuffler.batch_size == 16
        assert reshuffler.idle_interval == pytest.approx(0.005)
        assert registry.counter("plan.adjust.reshuffle").value == 1

    def test_backs_off_near_the_target(self):
        reshuffler = FakeReshuffler(batch_size=8, idle_interval=0.01)
        registry, ctrl = make_controller(reshuffler=reshuffler)
        observe(registry, *[0.095] * 10)
        ctrl.step()
        assert reshuffler.batch_size == 4
        assert reshuffler.idle_interval == pytest.approx(0.02)

    def test_inactive_reshuffler_is_left_alone(self):
        reshuffler = FakeReshuffler(active=False)
        registry, ctrl = make_controller(reshuffler=reshuffler)
        observe(registry, *[0.001] * 10)
        ctrl.step()
        assert reshuffler.calls == []

    def test_callable_source_tracks_fresh_drivers(self):
        """Epochs create fresh drivers; a callable source follows them."""
        drivers = [FakeReshuffler(batch_size=8)]
        registry, ctrl = make_controller(reshuffler=lambda: drivers[-1])
        observe(registry, *[0.001] * 10)
        ctrl.step()
        assert drivers[-1].batch_size == 16
        drivers.append(FakeReshuffler(batch_size=8))
        observe(registry, *[0.001] * 10)
        ctrl.step()
        assert drivers[-1].batch_size == 16
        assert drivers[0].batch_size == 16  # untouched since replacement

    def test_batch_guardrail_floor(self):
        reshuffler = FakeReshuffler(batch_size=2, idle_interval=0.01)
        registry, ctrl = make_controller(
            reshuffler=reshuffler,
            batch_guardrail=Guardrail(1, 1024),
        )
        for _ in range(4):
            observe(registry, *[0.099] * 10)
            ctrl.step()
        assert reshuffler.batch_size >= 1


class TestPrivacyFreeze:
    def test_no_input_changes_privacy_parameters(self):
        """The controller can re-tune every cost knob while the privacy
        triple (k, m, n) — and hence the achieved c — never moves."""
        params = SystemParameters.from_block_size(4096, 64, 8)
        before = (params.block_size, params.cache_capacity,
                  params.num_locations, params.achieved_c)
        admission = AdmissionController(
            bucket=TokenBucket(rate=100.0, capacity=10.0)
        )
        pipeline = FakePipeline()
        reshuffler = FakeReshuffler()
        registry, ctrl = make_controller(
            admission=admission, pipeline=pipeline, reshuffler=reshuffler
        )
        # Slam every decision branch: breach, idle, sheds, misses.
        for values in ([0.5] * 20, [0.001] * 20, [0.095] * 20):
            registry.counter("net.shed").inc(3)
            registry.counter("pipeline.miss").inc(50)
            observe(registry, *values)
            ctrl.step()
        assert len(ctrl.adjustments) >= 3
        after = (params.block_size, params.cache_capacity,
                 params.num_locations, params.achieved_c)
        assert after == before
        # Every recorded adjustment names a cost-side tunable only.
        assert {a.tunable for a in ctrl.adjustments} <= {
            "admission", "pipeline", "reshuffle"
        }


class TestLifecycle:
    def test_background_loop_runs_and_stops(self):
        registry, ctrl = make_controller(interval=0.005)
        observe(registry, *[0.05] * 10)
        with ctrl.start():
            deadline = time.time() + 2.0
            while (registry.counter("plan.cycles").value < 3
                   and time.time() < deadline):
                time.sleep(0.005)
        cycles = registry.counter("plan.cycles").value
        assert cycles >= 3
        time.sleep(0.03)
        assert registry.counter("plan.cycles").value == cycles

    def test_close_is_idempotent_and_step_survives(self):
        registry, ctrl = make_controller()
        ctrl.start()
        ctrl.close()
        ctrl.close()
        observe(registry, 0.05)
        assert ctrl.step() is not None

    def test_start_after_close_is_rejected(self):
        _, ctrl = make_controller()
        ctrl.close()
        with pytest.raises(ConfigurationError):
            ctrl.start()
