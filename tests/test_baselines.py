"""Baseline schemes: correctness and the constant-vs-amortized contrast."""

from __future__ import annotations

import pytest

from repro.baselines import (
    CApproxScheme,
    SquareRootOram,
    TrivialPir,
    WangPir,
    make_records,
    measure_latencies,
)
from repro.crypto.rng import SecureRandom
from repro.errors import ConfigurationError, PageNotFoundError
from repro.hardware.specs import HardwareSpec
from repro.storage.trace import READ

from tests.helpers import make_db

RECORDS = make_records(64, 16)


def _ids(count, seed=5):
    rng = SecureRandom(seed)
    return [rng.randrange(len(RECORDS)) for _ in range(count)]


class TestTrivialPir:
    def test_correctness(self):
        scheme = TrivialPir.create(RECORDS, page_capacity=16, seed=1)
        for page_id in (0, 17, 63):
            assert scheme.retrieve(page_id) == RECORDS[page_id]

    def test_reads_whole_database_every_query(self):
        scheme = TrivialPir.create(RECORDS, page_capacity=16, seed=2)
        scheme.retrieve(5)
        read_pages = sum(e.count for e in scheme.trace if e.op == READ)
        assert read_pages == len(RECORDS)

    def test_trace_independent_of_target(self):
        scheme = TrivialPir.create(RECORDS, page_capacity=16, seed=3)
        scheme.trace.clear()  # drop setup writes
        scheme.retrieve(0)
        first = [(e.op, e.location, e.count) for e in scheme.trace]
        scheme.trace.clear()
        scheme.retrieve(63)
        second = [(e.op, e.location, e.count) for e in scheme.trace]
        assert first == second

    def test_constant_latency(self):
        scheme = TrivialPir.create(RECORDS, page_capacity=16,
                                   spec=HardwareSpec(), seed=4)
        series = measure_latencies(scheme, _ids(6))
        assert series.coefficient_of_variation() < 1e-9

    def test_bad_id(self):
        scheme = TrivialPir.create(RECORDS, page_capacity=16, seed=5)
        with pytest.raises(PageNotFoundError):
            scheme.retrieve(64)

    def test_empty_records(self):
        with pytest.raises(ConfigurationError):
            TrivialPir.create([], page_capacity=16)


class TestWangPir:
    def test_correctness_across_reshuffles(self):
        scheme = WangPir.create(RECORDS, storage_capacity=8, page_capacity=16,
                                seed=6)
        for step in range(40):
            page_id = (step * 13) % len(RECORDS)
            assert scheme.retrieve(page_id) == RECORDS[page_id]
        assert scheme.reshuffle_count >= 4

    def test_repeated_same_page(self):
        scheme = WangPir.create(RECORDS, storage_capacity=8, page_capacity=16,
                                seed=7)
        for _ in range(20):
            assert scheme.retrieve(3) == RECORDS[3]

    def test_each_location_read_once_per_epoch(self):
        scheme = WangPir.create(RECORDS, storage_capacity=8, page_capacity=16,
                                seed=8)
        for step in range(7):  # stay within one epoch
            scheme.retrieve(step)
        single_reads = [
            e.location for e in scheme.trace if e.op == READ and e.count == 1
        ]
        assert len(single_reads) == len(set(single_reads))

    def test_latency_spikes(self):
        scheme = WangPir.create(RECORDS, storage_capacity=8, page_capacity=16,
                                spec=HardwareSpec(), seed=9)
        series = measure_latencies(scheme, _ids(32))
        assert series.maximum() > 2.5 * series.percentile(50)

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            WangPir.create(RECORDS, storage_capacity=0, page_capacity=16)
        with pytest.raises(ConfigurationError):
            WangPir.create(RECORDS, storage_capacity=64, page_capacity=16)


class TestSquareRootOram:
    def test_correctness_across_epochs(self):
        scheme = SquareRootOram.create(RECORDS, page_capacity=16, seed=10)
        for step in range(30):
            page_id = (step * 7) % len(RECORDS)
            assert scheme.retrieve(page_id) == RECORDS[page_id]
        assert scheme.reshuffle_count >= 3

    def test_shelter_scan_every_access(self):
        scheme = SquareRootOram.create(RECORDS, page_capacity=16, seed=11)
        scheme.trace.clear()
        scheme.retrieve(1)
        shelter_scans = [
            e for e in scheme.trace
            if e.op == READ and e.count == scheme._shelter_size
        ]
        assert len(shelter_scans) == 1

    def test_update_freshness_via_shelter(self):
        """Re-reading a page during the same epoch must hit the shelter copy."""
        scheme = SquareRootOram.create(RECORDS, page_capacity=16, seed=12)
        assert scheme.retrieve(5) == RECORDS[5]
        assert scheme.retrieve(5) == RECORDS[5]  # now sheltered

    def test_latency_spikes(self):
        scheme = SquareRootOram.create(RECORDS, page_capacity=16,
                                       spec=HardwareSpec(), seed=13)
        series = measure_latencies(scheme, _ids(24))
        assert series.maximum() > 1.8 * series.percentile(50)

    def test_shelter_size_validation(self):
        with pytest.raises(ConfigurationError):
            SquareRootOram.create(RECORDS, page_capacity=16, shelter_size=0)
        with pytest.raises(ConfigurationError):
            SquareRootOram.create(RECORDS, page_capacity=16, shelter_size=64)


class TestContrastWithCApprox:
    def test_constant_vs_amortized(self):
        """The paper's core selling point, executed end to end: the
        c-approximate scheme's latency is constant while the perfect-privacy
        schemes show reshuffle spikes."""
        ids = _ids(40, seed=20)
        db = make_db(num_records=64, cache_capacity=8, page_capacity=16,
                     spec=HardwareSpec(), seed=21)
        ours = measure_latencies(CApproxScheme(db), ids)
        wang = measure_latencies(
            WangPir.create(RECORDS, storage_capacity=8, page_capacity=16,
                           spec=HardwareSpec(), seed=22),
            ids,
        )
        oram = measure_latencies(
            SquareRootOram.create(RECORDS, page_capacity=16,
                                  spec=HardwareSpec(), seed=23),
            ids,
        )
        assert ours.coefficient_of_variation() < 1e-9
        assert wang.coefficient_of_variation() > 0.5
        assert oram.coefficient_of_variation() > 0.3
        # Worst case equals median for us; the baselines spike well above it.
        # (At paper scale the absolute worst case also favours this scheme —
        # that comparison lives in the cost model / bench_baselines, because
        # at n=64 a full reshuffle is artificially cheap.)
        assert ours.maximum() == pytest.approx(ours.percentile(50))
        assert wang.maximum() > 2.5 * wang.percentile(50)
        assert oram.maximum() > 1.8 * oram.percentile(50)

    def test_scheme_interface(self):
        db = make_db(seed=24)
        scheme = CApproxScheme(db)
        assert scheme.num_pages == db.num_pages
        assert scheme.retrieve(0) == make_records(40, 16)[0]
