"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestSolve:
    def test_solve_prints_parameters(self, capsys):
        assert main(["solve", "--pages", "1000000", "--cache", "50000",
                     "--c", "2.0", "--page-size", "1000"]) == 0
        out = capsys.readouterr().out
        assert "block size k" in out
        assert "29" in out  # the paper's 1 GB point
        assert "query time" in out

    def test_solve_invalid_config_exits_nonzero(self, capsys):
        assert main(["solve", "--pages", "100", "--cache", "1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestHeadline:
    def test_table_has_all_rows(self, capsys):
        assert main(["headline"]) == 0
        out = capsys.readouterr().out
        assert "1GB" in out and "1TB" in out
        assert "0.027" in out


class TestFigure:
    @pytest.mark.parametrize("number", ["4", "5", "6", "7"])
    def test_each_figure_prints_panels(self, capsys, number):
        assert main(["figure", number]) == 0
        out = capsys.readouterr().out
        assert f"Figure {number}" in out
        assert "response (s)" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "9"])


class TestPrivacy:
    def test_small_run(self, capsys):
        assert main(["privacy", "--trials", "60", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "measured c" in out
        assert "offset t" in out


class TestSweep:
    def test_sweep_prints_and_writes_csv(self, capsys, tmp_path):
        out = tmp_path / "sweep.csv"
        assert main(["sweep", "--pages", "40", "--caches", "4,8",
                     "--trials", "50", "--workload", "30",
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "c measured" in printed
        assert out.exists()
        assert out.read_text().count("\n") == 3  # header + 2 rows


class TestDemo:
    def test_demo_runs_clean(self, capsys):
        assert main(["demo", "--pages", "32", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "consistency check passed" in out
        assert "trace uniform: True" in out


class TestReport:
    def test_report_to_file(self, tmp_path):
        out = tmp_path / "REPORT.md"
        assert main(["report", "--out", str(out), "--trials", "60"]) == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "Figure 4" in text and "Figure 7" in text
        assert "measured c" in text
        # Valid markdown tables throughout.
        assert text.count("|---|") >= 5

    def test_report_to_stdout(self, capsys):
        assert main(["report", "--trials", "40"]) == 0
        assert "headline" in capsys.readouterr().out


class TestParser:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entry_point_importable(self):
        import repro.cli

        assert callable(repro.cli.main)
