"""HMAC-SHA256 against RFC 4231 and HKDF against RFC 5869."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.kdf import derive_key, hkdf_expand, hkdf_extract
from repro.crypto.mac import TAG_SIZE, hmac_sha256, verify_hmac
from repro.errors import CryptoError


class TestHmacVectors:
    def test_rfc4231_case1(self):
        key = bytes.fromhex("0b" * 20)
        data = b"Hi There"
        expected = bytes.fromhex(
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )
        assert hmac_sha256(key, data) == expected

    def test_rfc4231_case2(self):
        key = b"Jefe"
        data = b"what do ya want for nothing?"
        expected = bytes.fromhex(
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )
        assert hmac_sha256(key, data) == expected

    def test_rfc4231_case3(self):
        key = bytes.fromhex("aa" * 20)
        data = bytes.fromhex("dd" * 50)
        expected = bytes.fromhex(
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        )
        assert hmac_sha256(key, data) == expected

    def test_rfc4231_case6_long_key(self):
        key = bytes.fromhex("aa" * 131)
        data = b"Test Using Larger Than Block-Size Key - Hash Key First"
        expected = bytes.fromhex(
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        )
        assert hmac_sha256(key, data) == expected


class TestVerify:
    def test_accepts_full_and_truncated_tags(self):
        tag = hmac_sha256(b"k", b"message")
        assert verify_hmac(b"k", b"message", tag)
        assert verify_hmac(b"k", b"message", tag[:TAG_SIZE])

    def test_rejects_wrong_tag(self):
        tag = bytearray(hmac_sha256(b"k", b"message"))
        tag[0] ^= 1
        assert not verify_hmac(b"k", b"message", bytes(tag))

    def test_rejects_wrong_key_or_message(self):
        tag = hmac_sha256(b"k", b"message")
        assert not verify_hmac(b"other", b"message", tag)
        assert not verify_hmac(b"k", b"other", tag)

    def test_rejects_empty_tag(self):
        assert not verify_hmac(b"k", b"message", b"")

    def test_empty_key_is_an_error(self):
        with pytest.raises(CryptoError):
            hmac_sha256(b"", b"x")

    @settings(max_examples=30, deadline=None)
    @given(key=st.binary(min_size=1, max_size=80), msg=st.binary(max_size=200))
    def test_self_verification_property(self, key, msg):
        assert verify_hmac(key, msg, hmac_sha256(key, msg))


class TestHkdfVectors:
    def test_rfc5869_case1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk == bytes.fromhex(
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_rfc5869_case3_empty_salt_info(self):
        ikm = bytes.fromhex("0b" * 22)
        prk = hkdf_extract(b"", ikm)
        okm = hkdf_expand(prk, b"", 42)
        assert okm == bytes.fromhex(
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )


class TestDeriveKey:
    def test_purpose_separation(self):
        assert derive_key(b"m", "a") != derive_key(b"m", "b")

    def test_master_separation(self):
        assert derive_key(b"m1", "a") != derive_key(b"m2", "a")

    def test_deterministic(self):
        assert derive_key(b"m", "a", 32) == derive_key(b"m", "a", 32)

    def test_length(self):
        assert len(derive_key(b"m", "a", 57)) == 57

    def test_prefix_consistency(self):
        assert derive_key(b"m", "a", 64)[:16] == derive_key(b"m", "a", 16)

    def test_empty_master(self):
        with pytest.raises(CryptoError):
            derive_key(b"", "purpose")

    def test_empty_purpose(self):
        with pytest.raises(CryptoError):
            derive_key(b"m", "")

    def test_expand_bounds(self):
        prk = hkdf_extract(b"", b"ikm")
        with pytest.raises(CryptoError):
            hkdf_expand(prk, b"", 0)
        with pytest.raises(CryptoError):
            hkdf_expand(prk, b"", 255 * 32 + 1)
