"""The §1 frequency-analysis attack: encryption leaks, this scheme doesn't."""

from __future__ import annotations

import pytest

from repro.analysis.frequency import (
    FrequencyAnalyst,
    StaticEncryptedStore,
    run_frequency_experiment,
)
from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.crypto.rng import SecureRandom
from repro.errors import ConfigurationError, PageNotFoundError
from repro.workload import zipf_stream

RECORDS = make_records(60, 16)


def _static(seed=1):
    return StaticEncryptedStore.create(RECORDS, page_capacity=16, seed=seed)


def _pir(seed=2):
    return PirDatabase.create(
        RECORDS, cache_capacity=8, target_c=2.0, page_capacity=16,
        cipher_backend="null", seed=seed,
    )


class TestStaticEncryptedStore:
    def test_correctness(self):
        store = _static()
        for page_id in (0, 17, 59):
            assert store.retrieve(page_id) == RECORDS[page_id]

    def test_fixed_locations(self):
        store = _static()
        store.trace.clear()
        store.retrieve(5)
        store.retrieve(5)
        reads = [e.location for e in store.trace if e.op == "read"]
        assert reads[0] == reads[1] == store.location_of(5)

    def test_contents_are_hidden(self):
        """The one thing the strawman does protect: bytes are encrypted."""
        store = _static()
        frame = store._disk.peek(store.location_of(3))
        assert RECORDS[3] not in frame

    def test_bad_id(self):
        with pytest.raises(PageNotFoundError):
            _static().retrieve(60)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticEncryptedStore.create([])


class TestFrequencyAnalyst:
    def test_read_counts(self):
        store = _static(seed=3)
        store.trace.clear()
        for _ in range(4):
            store.retrieve(7)
        store.retrieve(9)
        analyst = FrequencyAnalyst(store.num_pages)
        counts = analyst.read_counts(store.trace)
        assert counts[store.location_of(7)] == 4
        assert counts[store.location_of(9)] == 1

    def test_hottest_location(self):
        store = _static(seed=4)
        store.trace.clear()
        for _ in range(10):
            store.retrieve(2)
        store.retrieve(3)
        analyst = FrequencyAnalyst(store.num_pages)
        assert analyst.hottest_locations(store.trace, 1)[0] == store.location_of(2)

    def test_uniformity_gap_bounds(self):
        store = _static(seed=5)
        store.trace.clear()
        store.retrieve(0)
        analyst = FrequencyAnalyst(store.num_pages)
        gap = analyst.uniformity_gap(store.trace)
        assert 0 < gap <= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FrequencyAnalyst(0)


class TestExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        workload = zipf_stream(60, 600, SecureRandom(6), theta=1.1)
        return run_frequency_experiment(workload, _static(seed=7), _pir(seed=8))

    def test_static_store_leaks_everything(self, results):
        static = next(r for r in results if r.scheme == "static-encrypted")
        assert static.popularity_correlation > 0.9
        assert static.hot_page_identified
        assert static.uniformity_gap > 0.3

    def test_c_approx_flattens_the_signal(self, results):
        ours = next(r for r in results if r.scheme == "c-approx")
        # Residual correlation is small sampling noise; the hot-page guess
        # degenerates to chance (ties in a near-uniform count vector), so it
        # is not asserted here.
        assert abs(ours.popularity_correlation) < 0.4
        assert ours.uniformity_gap < 0.05

    def test_gap_between_schemes_is_large(self, results):
        static = next(r for r in results if r.scheme == "static-encrypted")
        ours = next(r for r in results if r.scheme == "c-approx")
        assert static.popularity_correlation - ours.popularity_correlation > 0.7
        assert static.uniformity_gap > 10 * ours.uniformity_gap

    def test_empty_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            run_frequency_experiment([], _static(seed=9), _pir(seed=10))
