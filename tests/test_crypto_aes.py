"""AES block cipher against the official FIPS-197 / SP 800-38A vectors."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE, _build_sbox, _gf_inverse, _gf_mul
from repro.errors import CryptoError


class TestVectors:
    def test_fips197_appendix_c1_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c2_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c3_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        )
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_sp800_38a_ecb_aes128_block1(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_all_zero_key_and_block(self):
        # Well-known AES-128(0, 0) value.
        assert (
            AES(bytes(16)).encrypt_block(bytes(16)).hex()
            == "66e94bd4ef8a2c3b884cfa59ca342b2e"
        )

    @pytest.mark.parametrize("key_len,rounds", [(16, 10), (24, 12), (32, 14)])
    def test_round_counts(self, key_len, rounds):
        assert AES(bytes(key_len)).rounds == rounds


class TestDecryption:
    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_decrypt_inverts_encrypt(self, key_len):
        cipher = AES(bytes(range(key_len)))
        block = bytes(range(16))
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_fips197_c1_decrypt(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert AES(key).decrypt_block(ciphertext) == expected

    @settings(max_examples=50, deadline=None)
    @given(
        key=st.binary(min_size=16, max_size=16),
        block=st.binary(min_size=16, max_size=16),
    )
    def test_roundtrip_property(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestGaloisField:
    def test_mul_identity_and_zero(self):
        for a in range(256):
            assert _gf_mul(a, 1) == a
            assert _gf_mul(a, 0) == 0

    def test_mul_known_value(self):
        # 0x57 * 0x83 = 0xc1 (FIPS-197 §4.2 example).
        assert _gf_mul(0x57, 0x83) == 0xC1

    def test_mul_commutes(self):
        for a in (3, 77, 201):
            for b in (5, 99, 254):
                assert _gf_mul(a, b) == _gf_mul(b, a)

    def test_inverse(self):
        assert _gf_inverse(0) == 0
        for a in range(1, 256):
            assert _gf_mul(a, _gf_inverse(a)) == 1

    def test_sbox_known_entries(self):
        sbox, inv = _build_sbox()
        assert sbox[0x00] == 0x63
        assert sbox[0x53] == 0xED
        assert inv[0x63] == 0x00
        assert sorted(sbox) == list(range(256))  # a bijection


class TestErrors:
    @pytest.mark.parametrize("bad_len", [0, 8, 15, 17, 33])
    def test_bad_key_length(self, bad_len):
        with pytest.raises(CryptoError):
            AES(bytes(bad_len))

    @pytest.mark.parametrize("bad_len", [0, 15, 17, 32])
    def test_bad_block_length_encrypt(self, bad_len):
        with pytest.raises(CryptoError):
            AES(bytes(16)).encrypt_block(bytes(bad_len))

    def test_bad_block_length_decrypt(self):
        with pytest.raises(CryptoError):
            AES(bytes(16)).decrypt_block(bytes(BLOCK_SIZE - 1))
