"""§5 analytical cost model: the paper's figures and prose numbers."""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import (
    FIGURE6_EPSILONS,
    AnalyticalCostModel,
    TwoPartyCostModel,
    figure4_series,
    figure5_series,
    figure6_series,
    figure7_series,
    headline_numbers,
)
from repro.errors import ConfigurationError
from repro.hardware.specs import GIGABYTE

_KB = 1000


class TestEquations:
    def test_eq8_structure(self):
        model = AnalyticalCostModel()
        # 4 seeks = 20 ms at k -> 0 contribution limit.
        assert model.query_time(1, 1) == pytest.approx(0.02, abs=1e-3)

    def test_eq8_paper_27ms(self):
        model = AnalyticalCostModel()
        assert model.query_time(29, 1024) == pytest.approx(0.027, abs=0.001)

    def test_eq7_paper_1gb_storage(self):
        storage = AnalyticalCostModel.secure_storage_bytes(10**6, 50_000, 29, 1024)
        # Paper's Figure 4a tops out near 55-60 MB at m = 50000.
        assert 50e6 < storage < 60e6

    def test_eq7_pagemap_dominates_1tb(self):
        storage = AnalyticalCostModel.secure_storage_bytes(10**9, 500_000, 2886, 1024)
        assert storage == pytest.approx(4.37e9, rel=0.02)

    def test_invalid_inputs(self):
        model = AnalyticalCostModel()
        with pytest.raises(ConfigurationError):
            model.query_time(0, 1024)
        with pytest.raises(ConfigurationError):
            AnalyticalCostModel.secure_storage_bytes(0, 1, 1, 1)


class TestHeadlineNumbers:
    @pytest.mark.parametrize("index,tolerance", list(zip(range(6), [0.02] * 6)))
    def test_matches_paper_within_rounding(self, index, tolerance):
        row = headline_numbers()[index]
        assert row["model_seconds"] == pytest.approx(
            row["paper_seconds"], rel=0.05
        ), row["label"]

    def test_units_for_1tb(self):
        rows = headline_numbers()
        one_tb = next(r for r in rows if "1TB" in r["label"])
        # Paper: over 4 GB of secure storage -> "over 70 coprocessor units"
        # (we compute 69 with exact 64 MB units; the paper rounds up).
        assert one_tb["units"] >= 65


class TestFigure4And5:
    def test_panels_present(self):
        assert set(figure4_series()) == {"1GB", "10GB", "100GB", "1TB"}
        assert set(figure5_series()) == {"1GB", "10GB", "100GB", "1TB"}

    def test_time_decreases_with_cache(self):
        for series in (figure4_series(), figure5_series()):
            for panel, points in series.items():
                times = [p.query_time for p in points]
                assert times == sorted(times, reverse=True), panel

    def test_storage_increases_with_cache(self):
        for panel, points in figure4_series().items():
            storages = [p.secure_storage_bytes for p in points]
            assert storages == sorted(storages), panel

    def test_figure4a_anchor_point(self):
        points = figure4_series()["1GB"]
        final = points[-1]
        assert final.cache_pages == 50_000
        assert final.query_time == pytest.approx(0.027, abs=0.002)

    def test_figure5_slower_than_figure4(self):
        """10 KB pages cost more than 1 KB pages at every matched sweep end."""
        f4 = {p: pts[-1].query_time for p, pts in figure4_series().items()}
        f5 = {p: pts[-1].query_time for p, pts in figure5_series().items()}
        for panel in f4:
            assert f5[panel] > f4[panel] * 0.9  # 10x bytes but smaller n


class TestFigure6:
    def test_time_decreases_with_epsilon(self):
        for panel, points in figure6_series().items():
            times = [p.query_time for p in points]
            assert times == sorted(times, reverse=True), panel

    def test_epsilon_sweep_values(self):
        points = figure6_series()["1GB"]
        assert [p.privacy_c for p in points] == [1 + e for e in FIGURE6_EPSILONS]

    def test_100gb_subsecond_at_c_1_1(self):
        """§5: 'for databases up to 100GB, sub-second query response times
        are achievable even for c = 1.1'."""
        points = figure6_series()["100GB"]
        c_11 = next(p for p in points if abs(p.privacy_c - 1.1) < 1e-9)
        assert c_11.query_time < 1.0

    def test_1tb_not_subsecond_at_tight_epsilon(self):
        points = figure6_series()["1TB"]
        tightest = points[0]
        assert tightest.query_time > 1.0


class TestFigure7:
    def test_panels(self):
        series = figure7_series()
        assert set(series) == {"1KB", "10KB"}

    def test_calibration_anchor(self):
        """Paper: 2M-page cache -> 0.737 s per 1 KB-page query on 1 TB."""
        final = figure7_series()["1KB"][-1]
        assert final.cache_pages == 2_000_000
        assert final.query_time == pytest.approx(0.737, rel=0.05)

    def test_owner_storage_anchor(self):
        """Paper: ~6 GB of owner storage at m = 2 x 10^6 (1 KB pages)."""
        final = figure7_series()["1KB"][-1]
        assert final.secure_storage_gb == pytest.approx(5.9, rel=0.05)

    def test_10kb_needs_over_10gb_for_1_3s(self):
        """Paper: 'over 10GB of space is necessary to achieve ... 1.3s'."""
        final = figure7_series()["10KB"][-1]
        assert final.secure_storage_gb > 10
        assert final.query_time == pytest.approx(1.4, rel=0.1)

    def test_two_party_model_validation(self):
        with pytest.raises(ConfigurationError):
            TwoPartyCostModel(rtt=-1)
        with pytest.raises(ConfigurationError):
            TwoPartyCostModel().query_time(0, 100)


class TestCacheRequired:
    def test_paper_1tb_subsecond_needs_over_4gb(self):
        """§5: sub-second 1 TB retrieval 'only feasible with over 4GB of
        secure storage'."""
        model = AnalyticalCostModel()
        point = model.cache_required(1000 * GIGABYTE, _KB, 2.0, 1.0)
        assert point.query_time <= 1.0
        assert point.secure_storage_bytes > 4e9

    def test_meets_target_exactly_or_better(self):
        model = AnalyticalCostModel()
        for target in (0.05, 0.1, 0.5):
            point = model.cache_required(10 * GIGABYTE, _KB, 2.0, target)
            assert point.query_time <= target

    def test_tighter_target_needs_bigger_cache(self):
        model = AnalyticalCostModel()
        loose = model.cache_required(10 * GIGABYTE, _KB, 2.0, 0.2)
        tight = model.cache_required(10 * GIGABYTE, _KB, 2.0, 0.05)
        assert tight.cache_pages > loose.cache_pages

    def test_impossible_targets_rejected(self):
        model = AnalyticalCostModel()
        with pytest.raises(ConfigurationError):
            model.cache_required(GIGABYTE, _KB, 2.0, 0.019)  # below 4 seeks
        with pytest.raises(ConfigurationError):
            model.cache_required(GIGABYTE, _KB, 2.0, 0.0201)  # no room for k>=1


class TestUnitsRequired:
    def test_one_unit_fits_1gb(self):
        model = AnalyticalCostModel()
        point = model.point(1 * GIGABYTE, _KB, 50_000, 2.0)
        assert model.units_required(point) == 1

    def test_ten_units_for_100gb(self):
        """§5: '100GB databases will require 10 coprocessors' (m = 500k)."""
        model = AnalyticalCostModel()
        point = model.point(100 * GIGABYTE, _KB, 500_000, 2.0)
        assert 9 <= model.units_required(point) <= 14
