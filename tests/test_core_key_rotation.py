"""Online key rotation riding on the continuous reshuffle."""

from __future__ import annotations

import pytest

from repro.crypto.suite import CipherSuite
from repro.errors import AuthenticationError, CapacityError
from repro.storage.trace import shapes_identical

from tests.helpers import make_db


def _count_frames_under(db, master_key: bytes) -> int:
    """How many disk frames authenticate under ``master_key``."""
    probe = CipherSuite(master_key, backend=db.cop.suite.backend)
    count = 0
    for location in range(db.disk.num_locations):
        try:
            probe.decrypt_page(db.disk.peek(location))
            count += 1
        except AuthenticationError:
            pass
    return count


class TestRotation:
    def test_queries_keep_working_throughout(self):
        db = make_db(num_records=40, reserve_fraction=0.2, seed=800,
                     master_key=b"old-key")
        recs = [i.to_bytes(8, "big") * 2 for i in range(40)]
        for i in range(10):
            assert db.query(i) == recs[i]
        db.rotate_master_key(b"new-key")
        # During and after the rotation window every page stays readable.
        for step in range(3 * db.params.scan_period):
            i = step % 40
            assert db.query(i) == recs[i]
        db.consistency_check()

    def test_rotation_completes_after_one_scan(self):
        db = make_db(num_records=40, seed=801, master_key=b"old-key")
        db.rotate_master_key(b"new-key")
        assert db.cop.rotation_in_progress
        assert db.engine.rotation_requests_remaining == db.params.scan_period
        for _ in range(db.params.scan_period):
            db.touch()
        assert not db.cop.rotation_in_progress
        assert db.engine.rotation_requests_remaining is None

    def test_all_frames_under_new_key_after_scan(self):
        db = make_db(num_records=40, seed=802, master_key=b"old-key")
        db.rotate_master_key(b"new-key")
        for _ in range(db.params.scan_period):
            db.touch()
        n = db.disk.num_locations
        assert _count_frames_under(db, b"new-key") == n
        assert _count_frames_under(db, b"old-key") == 0

    def test_old_key_frames_shrink_monotonically(self):
        db = make_db(num_records=40, seed=803, master_key=b"old-key")
        db.rotate_master_key(b"new-key")
        previous = _count_frames_under(db, b"old-key")
        for _ in range(db.params.scan_period):
            db.touch()
            current = _count_frames_under(db, b"old-key")
            assert current <= previous
            previous = current
        assert previous == 0

    def test_updates_during_rotation_persist(self):
        db = make_db(num_records=40, reserve_fraction=0.2, seed=804,
                     master_key=b"old-key")
        db.rotate_master_key(b"new-key")
        db.update(5, b"mid-rotation")
        for _ in range(db.params.scan_period):
            db.touch()
        assert db.query(5) == b"mid-rotation"

    def test_double_rotation_rejected(self):
        db = make_db(num_records=40, seed=805)
        db.rotate_master_key(b"k2")
        with pytest.raises(CapacityError):
            db.rotate_master_key(b"k3")

    def test_sequential_rotations_allowed(self):
        db = make_db(num_records=40, seed=806, master_key=b"k1")
        recs = [i.to_bytes(8, "big") * 2 for i in range(40)]
        for key in (b"k2", b"k3"):
            db.rotate_master_key(key)
            for _ in range(db.params.scan_period):
                db.touch()
        assert _count_frames_under(db, b"k3") == db.disk.num_locations
        assert db.query(7) == recs[7]

    def test_trace_shape_unchanged_by_rotation(self):
        db = make_db(num_records=40, seed=807)
        db.query(0)
        db.rotate_master_key(b"fresh")
        db.query(1)
        for _ in range(db.params.scan_period):
            db.touch()
        db.query(2)
        assert shapes_identical(db.trace, 0)

    def test_wrong_key_still_rejected_during_rotation(self):
        db = make_db(num_records=40, seed=808, master_key=b"old-key")
        db.rotate_master_key(b"new-key")
        probe = CipherSuite(b"attacker-key", backend=db.cop.suite.backend)
        with pytest.raises(AuthenticationError):
            probe.decrypt_page(db.disk.peek(0))
