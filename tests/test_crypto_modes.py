"""CTR mode: NIST SP 800-38A F.5 vectors and stream properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.modes import NONCE_SIZE, ctr_transform
from repro.errors import CryptoError

# SP 800-38A F.5.1 uses a full 16-byte initial counter block; our API splits
# it into a 12-byte nonce and a 4-byte counter, so the vector's counter block
# f0f1...fb | fcfdfeff maps to nonce=f0..fb, initial_counter=0xfcfdfeff.
_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
_NONCE = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafb")
_COUNTER = 0xFCFDFEFF
_PLAIN = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
_CIPHER = bytes.fromhex(
    "874d6191b620e3261bef6864990db6ce"
    "9806f66b7970fdff8617187bb9fffdff"
    "5ae4df3edbd5d35e5b4f09020db03eab"
    "1e031dda2fbe03d1792170a0f3009cee"
)


class TestNistVectors:
    def test_sp800_38a_f51_encrypt(self):
        cipher = AES(_KEY)
        assert ctr_transform(cipher, _NONCE, _PLAIN, _COUNTER) == _CIPHER

    def test_sp800_38a_f51_decrypt(self):
        cipher = AES(_KEY)
        assert ctr_transform(cipher, _NONCE, _CIPHER, _COUNTER) == _PLAIN

    def test_sp800_38a_f55_aes256_ctr(self):
        key = bytes.fromhex(
            "603deb1015ca71be2b73aef0857d7781"
            "1f352c073b6108d72d9810a30914dff4"
        )
        cipher = AES(key)
        ciphertext = ctr_transform(cipher, _NONCE, _PLAIN, _COUNTER)
        assert ciphertext == bytes.fromhex(
            "601ec313775789a5b7a7f504bbf3d228"
            "f443e3ca4d62b59aca84e990cacaf5c5"
            "2b0930daa23de94ce87017ba2d84988d"
            "dfc9c58db67aada613c2dd08457941a6"
        )

    def test_sp800_38a_f53_aes192_ctr(self):
        key = bytes.fromhex(
            "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b"
        )
        cipher = AES(key)
        ciphertext = ctr_transform(cipher, _NONCE, _PLAIN, _COUNTER)
        assert ciphertext == bytes.fromhex(
            "1abc932417521ca24f2b0459fe7e6e0b"
            "090339ec0aa6faefd5ccc2c6f4ce8e94"
            "1e36b26bd1ebc670d1bd1d665620abf7"
            "4f78a7f6d29809585a97daec58c6b050"
        )

    def test_partial_block_prefix(self):
        """CTR on a prefix equals the prefix of CTR on the whole message."""
        cipher = AES(_KEY)
        for cut in (1, 15, 16, 17, 63):
            out = ctr_transform(cipher, _NONCE, _PLAIN[:cut], _COUNTER)
            assert out == _CIPHER[:cut]


class TestStreamProperties:
    def test_involution(self):
        cipher = AES(bytes(16))
        nonce = bytes(NONCE_SIZE)
        data = b"The quick brown fox jumps over the lazy dog"
        assert ctr_transform(cipher, nonce, ctr_transform(cipher, nonce, data)) == data

    def test_empty_message(self):
        cipher = AES(bytes(16))
        assert ctr_transform(cipher, bytes(NONCE_SIZE), b"") == b""

    def test_distinct_nonces_give_distinct_streams(self):
        cipher = AES(bytes(16))
        zeros = bytes(64)
        one = ctr_transform(cipher, bytes(NONCE_SIZE), zeros)
        other = ctr_transform(cipher, b"\x01" + bytes(NONCE_SIZE - 1), zeros)
        assert one != other

    def test_counter_seek_matches_offset(self):
        """Starting at counter c equals skipping c blocks of the stream."""
        cipher = AES(bytes(16))
        nonce = bytes(NONCE_SIZE)
        zeros = bytes(96)
        whole = ctr_transform(cipher, nonce, zeros)
        tail = ctr_transform(cipher, nonce, bytes(32), initial_counter=4)
        assert tail == whole[64:96]

    @settings(max_examples=30, deadline=None)
    @given(data=st.binary(max_size=200))
    def test_roundtrip_property(self, data):
        cipher = AES(b"0123456789abcdef")
        nonce = b"nonce-12byte"
        assert len(nonce) == NONCE_SIZE
        assert ctr_transform(cipher, nonce, ctr_transform(cipher, nonce, data)) == data


class TestErrors:
    def test_bad_nonce_size(self):
        with pytest.raises(CryptoError):
            ctr_transform(AES(bytes(16)), bytes(11), b"x")

    def test_negative_counter(self):
        with pytest.raises(CryptoError):
            ctr_transform(AES(bytes(16)), bytes(NONCE_SIZE), b"x", initial_counter=-1)

    def test_counter_overflow(self):
        with pytest.raises(CryptoError):
            ctr_transform(
                AES(bytes(16)), bytes(NONCE_SIZE), bytes(32),
                initial_counter=2**32 - 1,
            )
