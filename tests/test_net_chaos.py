"""Network chaos drills: the serving stack through a fault-injecting proxy.

Every test interposes :class:`~repro.faults.netchaos.ChaosProxy` between
a real :class:`~repro.net.client.NetworkClient` and a real
:class:`~repro.net.server.PirServer`, arms a deterministic fault plan,
and asserts exact end-to-end outcomes: the client's reconnect-and-resume
kicks in, retransmissions dedupe through the reply cache, and no
acknowledged operation is lost or double-applied.
"""

from __future__ import annotations

import contextlib

import pytest

from tests.helpers import make_db
from repro.baselines import make_records
from repro.errors import NetTimeoutError, TransientChannelError
from repro.faults import (
    SITE_NET_C2S,
    SITE_NET_S2C,
    ChaosProxy,
    ChaosProxyThread,
    FaultInjector,
    delay_frames,
    drop_replies,
    partial_writes,
    reset_connections,
)
from repro.net import NetworkClient, PirServer, ServerThread
from repro.obs import MetricsRegistry
from repro.service.frontend import SESSION_RANDOM, QueryFrontend

RECORDS = make_records(40, 16)

#: s2c frames before the first request's reply: the WELCOME handshake.
HANDSHAKE_S2C = 1


@contextlib.contextmanager
def chaotic_serving(injector, fragment_bytes=None, client_kw=None,
                    metrics=None):
    """client -> ChaosProxy -> PirServer over a fresh seeded database."""
    db = make_db(metrics=metrics) if metrics is not None else make_db()
    try:
        frontend = QueryFrontend(db, metrics=metrics,
                                 session_id_mode=SESSION_RANDOM)
        with ServerThread(PirServer(frontend, metrics=metrics)) as server:
            proxy = ChaosProxy(server.host, server.port, injector,
                               fragment_bytes=fragment_bytes,
                               metrics=metrics)
            with ChaosProxyThread(proxy) as chaos:
                kw = dict(timeout=5.0, read_timeout=1.0)
                kw.update(client_kw or {})
                client = NetworkClient(chaos.host, chaos.port, **kw)
                try:
                    yield client, frontend, proxy
                finally:
                    with contextlib.suppress(TransientChannelError,
                                             NetTimeoutError):
                        client.close()
    finally:
        db.close()


class TestDroppedReplies:
    def test_lost_reply_retransmits_and_dedupes(self):
        """The canonical at-least-once drill: the server applies an
        update and ACKs, the ACK is eaten, the client retransmits, the
        reply cache answers without re-applying."""
        injector = FaultInjector(seed=5, plans=[
            drop_replies(times=1, after=HANDSHAKE_S2C),
        ])
        with chaotic_serving(injector) as (client, frontend, proxy):
            client.update(3, b"exactly once")  # its reply is the drop
            assert client.query(3) == b"exactly once"
            assert client.counters.get("reconnects") == 1
            assert client.counters.get("retransmits") == 1
            assert frontend.counters.get("requests.duplicate") == 1
            assert proxy.counters.get("dropped") == 1

    def test_insert_reply_lost_applies_once(self):
        injector = FaultInjector(seed=6, plans=[
            drop_replies(times=1, after=HANDSHAKE_S2C),
        ])
        with chaotic_serving(injector) as (client, frontend, proxy):
            engine = frontend.database.engine
            before = engine.request_count
            new_id = client.insert(b"inserted once")
            # The retransmission was answered from cache: exactly one
            # engine-level request happened for the insert.
            assert engine.request_count == before + 1
            assert frontend.counters.get("requests.duplicate") == 1
            assert client.query(new_id) == b"inserted once"


class TestConnectionResets:
    def test_reset_mid_session_resumes_transparently(self):
        injector = FaultInjector(seed=7, plans=[
            reset_connections(site=SITE_NET_S2C, times=1,
                              after=HANDSHAKE_S2C + 1),
        ])
        with chaotic_serving(injector) as (client, frontend, proxy):
            assert client.query(1) == RECORDS[1]
            # This transmission (or its reply) dies with the connection.
            assert client.query(2) == RECORDS[2]
            assert client.query(3) == RECORDS[3]
            assert client.counters.get("reconnects") == 1
            assert proxy.counters.get("resets") == 1
            # One session throughout: RESUME re-attached, HELLO count
            # stays at the original handshake.
            assert frontend.counters.get("sessions") == 1

    def test_c2s_reset_retransmits_request(self):
        injector = FaultInjector(seed=8, plans=[
            reset_connections(site=SITE_NET_C2S, times=1, after=2),
        ])
        with chaotic_serving(injector) as (client, frontend, proxy):
            assert client.query(4) == RECORDS[4]
            assert client.query(5) == RECORDS[5]
            assert client.query(6) == RECORDS[6]
            assert client.counters.get("reconnects") == 1


class TestTornFrames:
    def test_partial_reply_write_recovers(self):
        """Half a reply frame then a hard reset: the client must junk the
        torn bytes with the connection and retransmit afresh."""
        injector = FaultInjector(seed=9, plans=[
            partial_writes(site=SITE_NET_S2C, times=1,
                           after=HANDSHAKE_S2C),
        ])
        with chaotic_serving(injector) as (client, frontend, proxy):
            client.update(7, b"torn but true")
            assert client.query(7) == b"torn but true"
            assert proxy.counters.get("partials") == 1
            assert client.counters.get("reconnects") == 1
            assert frontend.counters.get("requests.duplicate") == 1


class TestDelaysAndFragmentation:
    def test_delayed_frames_only_slow_things_down(self):
        injector = FaultInjector(seed=10, plans=[
            delay_frames(0.05, site=SITE_NET_C2S, times=2, after=0),
        ])
        with chaotic_serving(injector) as (client, frontend, proxy):
            for page_id in range(4):
                assert client.query(page_id) == RECORDS[page_id]
            assert client.counters.get("reconnects") == 0
            assert proxy.counters.get("delayed") == 2

    def test_chaos_with_fragmentation_composes(self):
        """Byte-fragmented delivery plus a dropped reply in one run."""
        injector = FaultInjector(seed=11, plans=[
            drop_replies(times=1, after=HANDSHAKE_S2C + 2),
        ])
        with chaotic_serving(injector, fragment_bytes=5) as (
                client, frontend, proxy):
            for page_id in range(5):
                assert client.query(page_id) == RECORDS[page_id]
            assert client.counters.get("retransmits") == 1


class TestDeterminism:
    def test_same_seed_same_chaos_schedule(self):
        """Two runs with identical seeds produce identical fault counts
        and identical client recovery behaviour."""
        def run():
            injector = FaultInjector(seed=21, plans=[
                drop_replies(probability=0.5, times=2,
                             after=HANDSHAKE_S2C),
            ])
            with chaotic_serving(injector) as (client, frontend, proxy):
                for page_id in range(8):
                    assert client.query(page_id) == RECORDS[page_id]
                return (
                    proxy.counters.get("dropped"),
                    client.counters.get("retransmits"),
                    frontend.counters.get("requests.duplicate"),
                )

        first = run()
        second = run()
        assert first == second
        assert first[0] > 0  # the plan actually fired

    def test_metrics_registry_carries_chaos_counters(self):
        registry = MetricsRegistry()
        injector = FaultInjector(seed=22, plans=[
            drop_replies(times=1, after=HANDSHAKE_S2C),
        ])
        with chaotic_serving(injector, metrics=registry) as (
                client, frontend, proxy):
            client.query(0)
        snapshot = registry.snapshot()["counters"]
        assert snapshot.get("chaos.dropped") == 1
        assert snapshot.get("chaos.forwarded", 0) > 0


class TestProbeThroughChaos:
    def test_ping_pong_through_proxy(self):
        """Sessionless probes survive the proxy like any other frame."""
        import socket

        from repro.net.framing import (
            Ping,
            Pong,
            decode_net_message,
            encode_net_message,
            read_frame_sock,
            write_frame_sock,
        )

        injector = FaultInjector(seed=23)
        with chaotic_serving(injector) as (client, frontend, proxy):
            sock = socket.create_connection((proxy.host, proxy.port),
                                            timeout=5.0)
            try:
                for _ in range(3):
                    write_frame_sock(sock, encode_net_message(Ping()))
                    pong = decode_net_message(read_frame_sock(sock))
                    assert isinstance(pong, Pong)
                    assert pong.draining is False
                    assert pong.sessions == 1  # the NetworkClient's
            finally:
                sock.close()
