"""Hot/cold tiered storage: write-through, LRU, trace shape, re-warm."""

from __future__ import annotations

import os

import pytest

from tests.helpers import make_db
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import VirtualClock
from repro.storage.disk import DiskStore
from repro.storage.tiered import MEMORY_TIER_TIMING, TieredDiskStore
from repro.storage.timing import DiskTimingModel
from repro.storage.trace import AccessTrace


def same_shape(a, b):
    """Byte-identical adversary view: op, location, count, event for event."""
    return [(e.op, e.location, e.count) for e in a] == \
        [(e.op, e.location, e.count) for e in b]

FRAME = 64
SLOW = DiskTimingModel(seek_time=0.004, read_bandwidth=100e6,
                       write_bandwidth=80e6)


def make_cold(n=16, trace=None, clock=None):
    return DiskStore(
        num_locations=n, frame_size=FRAME, timing=SLOW,
        clock=clock or VirtualClock(),
        trace=trace if trace is not None else AccessTrace(),
    )


def frame_of(byte):
    return bytes([byte]) * FRAME


class TestTieredBasics:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            TieredDiskStore(make_cold(), hot_capacity=0)

    def test_write_through_cold_is_authoritative(self):
        tier = TieredDiskStore(make_cold(), hot_capacity=4)
        tier.write(3, frame_of(7))
        assert tier.cold.peek(3) == frame_of(7)
        assert tier.peek(3) == frame_of(7)
        assert tier.hot_frames == 1

    def test_read_miss_promotes_then_hits(self):
        tier = TieredDiskStore(make_cold(), hot_capacity=4)
        tier.cold.write(5, frame_of(9))  # behind the tier's back
        tier._hot.clear()
        assert tier.read(5) == frame_of(9)
        assert tier.counters.get("miss") == 1
        assert tier.read(5) == frame_of(9)
        assert tier.counters.get("hit") == 1
        assert tier.hit_rate() == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        tier = TieredDiskStore(make_cold(), hot_capacity=2)
        tier.write(0, frame_of(1))
        tier.write(1, frame_of(2))
        tier.read(0)  # 0 becomes most recent; 1 is now LRU
        tier.write(2, frame_of(3))
        assert tier.counters.get("evict") == 1
        assert set(tier._hot) == {0, 2}
        # The evicted frame is still served, from cold.
        assert tier.read(1) == frame_of(2)

    def test_partial_hot_range_goes_cold(self):
        tier = TieredDiskStore(make_cold(), hot_capacity=8)
        tier.write(0, frame_of(1))
        tier.cold.write(1, frame_of(2))
        tier._hot.pop(1, None)
        frames = tier.read_range(0, 2)
        assert frames == [frame_of(1), frame_of(2)]
        # One loc was missing: the whole range is charged as a cold miss.
        assert tier.counters.get("miss") == 2

    def test_metrics_registry_mirroring(self):
        metrics = MetricsRegistry()
        tier = TieredDiskStore(make_cold(), hot_capacity=2, metrics=metrics)
        tier.write(0, frame_of(1))
        tier.read(0)
        assert metrics.counter("tier.promote").value == 1
        assert metrics.counter("tier.hit").value == 1


class TestTraceAndTiming:
    def test_trace_shape_identical_with_and_without_tier(self):
        plain_trace, tier_trace = AccessTrace(), AccessTrace()
        plain = make_cold(trace=plain_trace)
        tier = TieredDiskStore(make_cold(trace=tier_trace), hot_capacity=4)
        for store in (plain, tier):
            store.write_range(0, [frame_of(1), frame_of(2)])
            store.read_range(0, 2)   # hot hit on the tier
            store.read(1)            # hot hit
            store.write_range(2, [frame_of(3), frame_of(4)])
            store.read_range(1, 3)   # spans hot and hot: still one event
            store.read(3)
        assert same_shape(plain_trace, tier_trace)

    def test_hot_hit_is_cheaper_on_the_virtual_clock(self):
        clock_cold, clock_hot = VirtualClock(), VirtualClock()
        cold_only = make_cold(clock=clock_cold)
        tier = TieredDiskStore(make_cold(clock=clock_hot), hot_capacity=4)
        cold_only.write(0, frame_of(1))
        tier.write(0, frame_of(1))
        t0_cold, t0_hot = clock_cold.now, clock_hot.now
        cold_only.read(0)
        tier.read(0)  # hot hit
        assert clock_hot.now - t0_hot < clock_cold.now - t0_cold
        # ... but virtual time still advances (memory is not free).
        assert clock_hot.now > t0_hot
        assert MEMORY_TIER_TIMING.seek_time == 0.0


class TestMembershipJournal:
    def test_rewarm_after_restart(self, tmp_path):
        path = str(tmp_path / "tier.jnl")
        cold = make_cold()
        tier = TieredDiskStore(cold, hot_capacity=3, journal_path=path)
        for loc in range(5):
            tier.write(loc, frame_of(loc + 1))
        survivors = list(tier._hot)
        tier.flush()
        tier._journal_file.close()
        tier._journal_file = None

        rewarmed = TieredDiskStore(cold, hot_capacity=3, journal_path=path)
        assert list(rewarmed._hot) == survivors
        for loc in survivors:
            assert rewarmed._hot[loc] == frame_of(loc + 1)
        rewarmed.read(survivors[0])
        assert rewarmed.counters.get("hit") == 1  # warm from record one

    def test_torn_tail_is_discarded(self, tmp_path):
        path = str(tmp_path / "tier.jnl")
        cold = make_cold()
        tier = TieredDiskStore(cold, hot_capacity=3, journal_path=path)
        tier.write(1, frame_of(2))
        tier.flush()
        tier._journal_file.close()
        tier._journal_file = None
        with open(path, "ab") as handle:
            handle.write(b"\x01\x00\x00")  # torn record
        rewarmed = TieredDiskStore(cold, hot_capacity=3, journal_path=path)
        assert list(rewarmed._hot) == [1]
        # The compact rewrite dropped the torn bytes.
        assert os.path.getsize(path) % 9 == 0

    def test_journal_compaction_bounds_file(self, tmp_path):
        path = str(tmp_path / "tier.jnl")
        tier = TieredDiskStore(make_cold(), hot_capacity=2, journal_path=path)
        for round_ in range(40):
            for loc in range(8):
                tier.write(loc, frame_of((round_ + loc) % 251))
        tier.flush()
        # 320 membership changes, but the file stays near the live set.
        assert os.path.getsize(path) <= 9 * (64 + 2 + 1)


class TestDatabaseIntegration:
    def test_database_with_hot_tier_serves_correctly(self):
        metrics = MetricsRegistry()
        db = make_db(hot_tier_frames=16, metrics=metrics, seed=3)
        baseline = make_db(seed=3)
        try:
            for i in range(30):
                assert db.query(i % db.num_pages) == \
                    baseline.query(i % baseline.num_pages)
            db.consistency_check()
            assert metrics.counter("tier.hit").value > 0
            # The trace is recorded by the cold store and byte-identical
            # to the untiered run's (placement never shapes the sequence).
            assert same_shape(db.trace, baseline.trace)
        finally:
            db.close()
            baseline.close()

    def test_close_is_idempotent(self, tmp_path):
        db = make_db(hot_tier_frames=8,
                     hot_tier_journal=str(tmp_path / "tier.jnl"))
        db.close()
        db.close()
