"""Property-based snapshot/restore: arbitrary histories survive a restart."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.snapshot import load_snapshot, save_snapshot
from repro.errors import CapacityError, PageDeletedError, PageNotFoundError

from tests.helpers import make_db

_OPERATIONS = st.lists(
    st.tuples(
        st.sampled_from(["query", "update", "insert", "delete"]),
        st.floats(min_value=0, max_value=0.999),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=0,
    max_size=30,
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(operations=_OPERATIONS, seed=st.integers(0, 10**6))
def test_restore_equals_live_state(tmp_path_factory, operations, seed):
    directory = tmp_path_factory.mktemp("snap")
    db = make_db(
        num_records=20,
        cache_capacity=4,
        page_capacity=16,
        block_size=4,
        reserve_fraction=0.3,
        seed=seed,
        cipher_backend="null",
    )
    shadow = {i: i.to_bytes(8, "big") * 2 for i in range(20)}

    for kind, selector, payload_byte in operations:
        live = sorted(shadow)
        payload = bytes([payload_byte]) * 4
        if kind == "insert":
            try:
                shadow[db.insert(payload)] = payload
            except CapacityError:
                pass
            continue
        if not live:
            db.touch()
            continue
        target = live[int(selector * len(live))]
        if kind == "query":
            assert db.query(target) == shadow[target]
        elif kind == "update":
            db.update(target, payload)
            shadow[target] = payload
        else:
            db.delete(target)
            del shadow[target]

    save_snapshot(db, str(directory))
    restored = load_snapshot(str(directory), seed=seed + 1)

    # Every live page identical; every dead page still dead.
    for page_id, payload in shadow.items():
        assert restored.query(page_id) == payload
    for page_id in range(20):
        if page_id not in shadow:
            with pytest.raises((PageDeletedError, PageNotFoundError)):
                restored.query(page_id)
    restored.consistency_check()
    assert restored.engine.request_count >= db.engine.request_count
