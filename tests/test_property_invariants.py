"""Property-based invariants of the full system under random operations.

Hypothesis drives the complete :class:`PirDatabase` through arbitrary
operation sequences and asserts the structural invariants that the privacy
analysis rests on:

* every logical page exists in exactly one place (disk xor cache);
* the cache always holds exactly m pages;
* every disk location always holds exactly one authentic frame;
* the observable trace shape never varies;
* a shadow dict agrees with every readable payload.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, PageDeletedError, PageNotFoundError
from repro.storage.trace import shapes_identical

from tests.helpers import make_db

# One operation = (kind, page-selector in [0,1), payload byte).
_OPERATIONS = st.lists(
    st.tuples(
        st.sampled_from(["query", "update", "insert", "delete", "touch"]),
        st.floats(min_value=0, max_value=0.999),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=60,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(operations=_OPERATIONS, seed=st.integers(0, 10**6))
def test_system_invariants_under_random_operations(operations, seed):
    db = make_db(
        num_records=24,
        cache_capacity=4,
        page_capacity=16,
        block_size=4,
        reserve_fraction=0.25,
        seed=seed,
        cipher_backend="null",
    )
    shadow = {
        page_id: page_id.to_bytes(8, "big") * 2 for page_id in range(24)
    }

    for kind, selector, payload_byte in operations:
        live = sorted(shadow)
        payload = bytes([payload_byte]) * 4
        if kind == "touch":
            db.touch()
        elif kind == "insert":
            try:
                new_id = db.insert(payload)
                shadow[new_id] = payload
            except CapacityError:
                pass
        elif not live:
            db.touch()
        else:
            target = live[int(selector * len(live))]
            if kind == "query":
                assert db.query(target) == shadow[target]
            elif kind == "update":
                db.update(target, payload)
                shadow[target] = payload
            else:  # delete
                db.delete(target)
                del shadow[target]

    # Structural invariants.
    db.consistency_check()
    assert db.cop.page_map.cached_count == db.params.cache_capacity

    # Every shadow entry is still readable and correct.
    for page_id, payload in shadow.items():
        assert db.query(page_id) == payload

    # Deleted user pages refuse queries but still execute requests.
    for page_id in range(24):
        if page_id not in shadow:
            with pytest.raises((PageDeletedError, PageNotFoundError)):
                db.query(page_id)

    # The server-visible trace never varied in shape.
    assert shapes_identical(db.trace, 0)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_landing_block_always_current_round_robin_block(seed):
    """Whenever a page leaves the cache, it must land inside the block that
    the evicting request read — the geometric/uniform decomposition that
    Eqs. 1-2 rely on."""
    db = make_db(
        num_records=24,
        cache_capacity=4,
        page_capacity=16,
        block_size=4,
        reserve_fraction=0.25,
        seed=seed,
        cipher_backend="null",
    )
    pm = db.cop.page_map
    k = db.params.block_size
    for step in range(40):
        cached_before = {
            pid: pm.lookup(pid).position
            for pid in range(db.params.total_pages)
            if pm.is_cached(pid)
        }
        db.query(step % 24)
        outcome = db.engine.last_outcome
        for pid in cached_before:
            if not pm.is_cached(pid):  # this page was evicted just now
                landing = pm.lookup(pid).position
                assert outcome.block_start <= landing < outcome.block_start + k


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6), c=st.floats(min_value=1.1, max_value=8.0))
def test_solved_configurations_always_run(seed, c):
    """Any configuration the solver accepts must execute correctly."""
    db = make_db(num_records=20, cache_capacity=4, page_capacity=16,
                 target_c=c, seed=seed, cipher_backend="null")
    for page_id in range(20):
        assert db.query(page_id) == page_id.to_bytes(8, "big") * 2
    db.consistency_check()
