"""Spatial range queries and the Wang-baseline update extension."""

from __future__ import annotations

import pytest

from repro.baselines import WangPir, make_records
from repro.crypto.rng import SecureRandom
from repro.errors import IndexError_
from repro.index import GridBuilder, GridIndex, PrivateSpatialStore, SpatialPoint


def _points(count=120, seed=1, span=100.0):
    rng = SecureRandom(seed)
    return [
        SpatialPoint(rng.random() * span, rng.random() * span,
                     f"p{i}".encode())
        for i in range(count)
    ]


class TestRangeQuery:
    def _index(self, points):
        payloads, geometry = GridBuilder(512).build(points)
        return GridIndex(lambda pid: payloads[pid], geometry)

    def test_matches_brute_force(self):
        points = _points(seed=2)
        index = self._index(points)
        for rect in ((10, 10, 40, 40), (0, 0, 100, 100), (55, 5, 60, 95)):
            got = sorted(p.label for p in index.range_query(*rect))
            expected = sorted(
                p.label for p in points
                if rect[0] <= p.x <= rect[2] and rect[1] <= p.y <= rect[3]
            )
            assert got == expected, rect

    def test_empty_region(self):
        points = [SpatialPoint(10, 10, b"a"), SpatialPoint(90, 90, b"b")]
        index = self._index(points)
        assert index.range_query(40, 40, 60, 60) == []

    def test_degenerate_rectangle_is_a_point_probe(self):
        points = _points(seed=3)
        index = self._index(points)
        target = points[0]
        got = index.range_query(target.x, target.y, target.x, target.y)
        assert target in got

    def test_invalid_rectangle(self):
        index = self._index(_points(seed=4))
        with pytest.raises(IndexError_):
            index.range_query(10, 0, 5, 10)

    def test_private_store_within(self):
        points = _points(count=80, seed=5)
        store = PrivateSpatialStore.create(
            points, cache_capacity=8, page_capacity=512,
            cipher_backend="null", seed=6,
        )
        before = store.retrievals
        got = store.within(20, 20, 60, 60)
        expected = [p for p in points
                    if 20 <= p.x <= 60 and 20 <= p.y <= 60]
        assert sorted(p.label for p in got) == sorted(
            p.label for p in expected
        )
        assert store.retrievals > before


class TestWangUpdate:
    RECORDS = make_records(48, 16)

    def test_update_then_read(self):
        scheme = WangPir.create(self.RECORDS, storage_capacity=8,
                                page_capacity=16, seed=7)
        scheme.update(5, b"wang-updated")
        assert scheme.retrieve(5) == b"wang-updated"

    def test_update_survives_reshuffles(self):
        scheme = WangPir.create(self.RECORDS, storage_capacity=8,
                                page_capacity=16, seed=8)
        scheme.update(11, b"persistent!!")
        for step in range(40):  # forces several reshuffles
            scheme.retrieve(step % 48)
        assert scheme.retrieve(11) == b"persistent!!"
        assert scheme.reshuffle_count >= 3

    def test_update_near_epoch_boundary(self):
        scheme = WangPir.create(self.RECORDS, storage_capacity=4,
                                page_capacity=16, seed=9)
        # Fill storage to one below capacity so the update's retrieve
        # triggers the reshuffle mid-operation.
        for page_id in range(3):
            scheme.retrieve(page_id)
        scheme.update(40, b"boundary-upd")
        assert scheme.retrieve(40) == b"boundary-upd"

    def test_multiple_updates_same_page(self):
        scheme = WangPir.create(self.RECORDS, storage_capacity=6,
                                page_capacity=16, seed=10)
        for version in range(5):
            scheme.update(2, bytes([version]) * 4)
        assert scheme.retrieve(2) == bytes([4]) * 4
