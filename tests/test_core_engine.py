"""The Figure-3 retrieval engine: correctness, trace shape, invariants."""

from __future__ import annotations

import pytest

from repro import PirDatabase
from repro.baselines import make_records
from repro.errors import PageNotFoundError
from repro.storage.trace import READ, WRITE, shapes_identical

from tests.helpers import make_db


class TestCorrectness:
    def test_every_page_retrievable(self, small_db, records):
        for page_id in range(len(records)):
            assert small_db.engine.retrieve(page_id).payload == records[page_id]

    def test_repeated_retrievals_survive_reshuffling(self, small_db, records):
        for round_index in range(8):
            for page_id in range(len(records)):
                page = small_db.engine.retrieve(page_id)
                assert page.payload == records[page_id], (round_index, page_id)
        small_db.consistency_check()

    def test_cache_hits_return_correct_data(self, small_db, records):
        # Hammer one page: after the first retrieval it is cached, so most
        # of these are hits; data must be right either way.
        for _ in range(30):
            assert small_db.engine.retrieve(5).payload == records[5]

    def test_out_of_range_id(self, small_db):
        with pytest.raises(PageNotFoundError):
            small_db.engine.retrieve(small_db.params.total_pages)

    def test_touch_keeps_database_consistent(self, small_db):
        for _ in range(25):
            small_db.engine.touch()
        small_db.consistency_check()


class TestObservableTrace:
    def test_four_accesses_per_request(self, small_db):
        small_db.engine.retrieve(0)
        events = small_db.trace.events_for_request(0)
        assert [e.op for e in events] == [READ, READ, WRITE, WRITE]

    def test_request_shape_constant_across_hits_and_misses(self, small_db):
        k = small_db.params.block_size
        for page_id in (0, 1, 1, 1, 2, 2, 0):  # mix of misses and hits
            small_db.engine.retrieve(page_id)
        assert shapes_identical(small_db.trace, 0)
        shape = small_db.trace.request_shape(0)
        assert shape == [(READ, k), (READ, 1), (WRITE, k), (WRITE, 1)]

    def test_round_robin_covers_every_block(self, small_db):
        params = small_db.params
        starts = []
        for _ in range(params.num_blocks):
            small_db.engine.touch()
            events = small_db.trace.events_for_request(
                small_db.engine.request_count - 1
            )
            starts.append(events[0].location)
        assert sorted(starts) == [
            i * params.block_size for i in range(params.num_blocks)
        ]

    def test_round_robin_wraps(self, small_db):
        params = small_db.params
        for _ in range(params.num_blocks + 1):
            small_db.engine.touch()
        first = small_db.trace.events_for_request(0)[0].location
        wrapped = small_db.trace.events_for_request(params.num_blocks)[0].location
        assert first == wrapped == 0

    def test_blocks_written_back_where_read(self, small_db):
        small_db.engine.retrieve(3)
        events = small_db.trace.events_for_request(0)
        block_read, extra_read, block_write, extra_write = events
        assert block_read.location == block_write.location
        assert block_read.count == block_write.count
        assert extra_read.location == extra_write.location

    def test_frames_change_on_write_back(self, small_db):
        """Re-encryption with fresh nonces makes every write-back unlinkable."""
        before = [small_db.disk.peek(loc) for loc in range(small_db.params.block_size)]
        small_db.engine.retrieve(0)  # first request touches block 0
        after = [small_db.disk.peek(loc) for loc in range(small_db.params.block_size)]
        assert all(a != b for a, b in zip(before, after))


class TestEngineState:
    def test_request_outcome_populated(self, small_db):
        small_db.engine.retrieve(4)
        outcome = small_db.engine.last_outcome
        assert outcome is not None
        assert outcome.request_index == 0
        assert outcome.block_start == 0
        assert 0 <= outcome.victim_slot < small_db.params.cache_capacity
        assert 0 <= outcome.block_slot < small_db.params.block_size

    def test_requested_page_lands_in_cache(self, small_db):
        pm = small_db.cop.page_map
        small_db.engine.retrieve(9)
        assert pm.is_cached(9)

    def test_cache_occupancy_constant(self, small_db):
        pm = small_db.cop.page_map
        m = small_db.params.cache_capacity
        assert pm.cached_count == m
        for page_id in range(20):
            small_db.engine.retrieve(page_id % small_db.num_pages)
            assert pm.cached_count == m

    def test_extra_page_never_cached_or_in_block(self, small_db):
        """The rejection sampling of lines 3-5 must never pick an excluded page."""
        pm = small_db.cop.page_map
        k = small_db.params.block_size
        for step in range(40):
            target = step % small_db.num_pages
            # Pre-state: remember what is cached.
            cached_before = {
                pid for pid in range(small_db.params.total_pages)
                if pm.is_cached(pid)
            }
            small_db.engine.retrieve(target)
            outcome = small_db.engine.last_outcome
            extra_loc = outcome.extra_location
            in_block = outcome.block_start <= extra_loc < outcome.block_start + k
            if outcome.cache_hit:
                assert target in cached_before
            assert not in_block, "extra page must come from outside the block"

    def test_eviction_moves_exactly_one_page_to_disk(self, small_db):
        pm = small_db.cop.page_map
        cached_before = {
            pid for pid in range(small_db.params.total_pages) if pm.is_cached(pid)
        }
        small_db.engine.retrieve(2)
        cached_after = {
            pid for pid in range(small_db.params.total_pages) if pm.is_cached(pid)
        }
        entered = cached_after - cached_before
        left = cached_before - cached_after
        assert len(entered) <= 1 and len(left) <= 1
        # The requested page (a miss here) must be among the cached now.
        assert 2 in cached_after


class TestConfigurationGuards:
    def test_mismatched_disk(self, small_db):
        from repro.core.engine import RetrievalEngine
        from repro.errors import ConfigurationError
        from repro.storage.disk import DiskStore

        wrong_disk = DiskStore(small_db.params.num_locations + 8,
                               small_db.cop.frame_size)
        with pytest.raises(ConfigurationError):
            RetrievalEngine(small_db.params, small_db.cop, wrong_disk)

    def test_block_size_one_works(self):
        db = make_db(num_records=20, cache_capacity=4, page_capacity=16,
                     block_size=1, target_c=2.0, seed=5)
        recs = make_records(20, 16)
        for i in range(20):
            assert db.query(i) == recs[i]
        db.consistency_check()

    def test_large_block_works(self):
        db = make_db(num_records=30, cache_capacity=4, page_capacity=16,
                     block_size=15, seed=6)
        recs = make_records(30, 16)
        for i in range(30):
            assert db.query(i) == recs[i]
        db.consistency_check()
