"""Property-based workouts of the remote deployments (two-party + service).

The local engine's invariants are property-tested in
``test_property_invariants``; these tests push the same random operation
sequences through the *wire* paths — the two-party owner/provider protocol
and the multi-client service front-end — asserting that remote execution is
observationally identical to a shadow model.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import make_records
from repro.errors import (
    CapacityError,
    ConfigurationError,
    PageDeletedError,
    PageNotFoundError,
)
from repro.service import QueryFrontend, ServiceClient
from repro.twoparty import TwoPartySession

from tests.helpers import make_db

_OPERATIONS = st.lists(
    st.tuples(
        st.sampled_from(["query", "update", "insert", "delete"]),
        st.floats(min_value=0, max_value=0.999),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=25,
)


def _apply(shadow, actor, kind, selector, payload_byte):
    """Apply one op to a deployment + shadow dict; returns nothing."""
    live = sorted(shadow)
    payload = bytes([payload_byte]) * 4
    if kind == "insert":
        try:
            new_id = actor.insert(payload)
            shadow[new_id] = payload
        except (CapacityError, ConfigurationError):
            pass
        return
    if not live:
        return
    target = live[int(selector * len(live))]
    if kind == "query":
        assert actor.query(target) == shadow[target]
    elif kind == "update":
        actor.update(target, payload)
        shadow[target] = payload
    else:
        try:
            actor.delete(target)
            del shadow[target]
        except (PageNotFoundError, ConfigurationError):
            pass


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=_OPERATIONS, seed=st.integers(0, 10**6))
def test_two_party_session_matches_shadow(operations, seed):
    records = make_records(20, 16)
    session = TwoPartySession.create(
        records, cache_capacity=4, block_size=4, page_capacity=16,
        reserve_fraction=0.3, seed=seed,
    )
    shadow = {i: records[i] for i in range(20)}
    for kind, selector, payload_byte in operations:
        _apply(shadow, session, kind, selector, payload_byte)
    for page_id, payload in shadow.items():
        assert session.query(page_id) == payload
    for page_id in range(20):
        if page_id not in shadow:
            with pytest.raises((PageDeletedError, PageNotFoundError)):
                session.query(page_id)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=_OPERATIONS,
    client_picks=st.lists(st.integers(0, 2), min_size=25, max_size=25),
    seed=st.integers(0, 10**6),
)
def test_service_clients_share_consistent_state(operations, client_picks, seed):
    db = make_db(num_records=20, cache_capacity=4, block_size=4,
                 page_capacity=16, reserve_fraction=0.3, seed=seed,
                 cipher_backend="null")
    frontend = QueryFrontend(db)
    clients = [ServiceClient(frontend) for _ in range(3)]
    records = make_records(20, 16)
    shadow = {i: records[i] for i in range(20)}
    for index, (kind, selector, payload_byte) in enumerate(operations):
        actor = clients[client_picks[index % len(client_picks)]]
        try:
            _apply(shadow, actor, kind, selector, payload_byte)
        except ConfigurationError:
            pass  # service surfaces refusals as ConfigurationError
    # Any client sees the merged state.
    observer = clients[0]
    for page_id, payload in shadow.items():
        assert observer.query(page_id) == payload
    db.consistency_check()
