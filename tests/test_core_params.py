"""SystemParameters and the Eq. 1-6 trade-off math, pinned to paper values."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import (
    SystemParameters,
    achieved_privacy,
    eviction_probability,
    landing_probability,
    required_block_size,
    scan_period_for_privacy,
)
from repro.errors import ConfigurationError


class TestScalarRelations:
    def test_paper_figure4a_block_size(self):
        """1 GB DB (n = 10^6), m = 50000, c = 2  ->  k = 29 (27 ms point)."""
        assert required_block_size(10**6, 50_000, 2.0) == 29

    def test_paper_10gb_one_unit(self):
        """10 GB (n = 10^7), m = 20000, c = 2  ->  k = 722 (197 ms point)."""
        assert required_block_size(10**7, 20_000, 2.0) == 722

    def test_paper_1tb(self):
        """1 TB (n = 10^9), m = 500000, c = 2  ->  k = 2886 (727 ms point)."""
        assert required_block_size(10**9, 500_000, 2.0) == 2886

    def test_scan_period_formula(self):
        # T = log(1/c)/log(1-1/m) + 1
        period = scan_period_for_privacy(1000, 2.0)
        assert period == pytest.approx(
            math.log(0.5) / math.log(1 - 1 / 1000) + 1
        )

    def test_c_equal_one_is_full_scan(self):
        assert scan_period_for_privacy(100, 1.0) == 1.0
        assert required_block_size(500, 100, 1.0) == 500

    def test_achieved_privacy_inverts_required_block_size(self):
        n, m, c = 100_000, 5_000, 1.5
        k = required_block_size(n, m, c)
        # k was rounded up, so the achieved privacy is at least as good.
        assert achieved_privacy(n, m, k) <= c
        if k > 1:
            assert achieved_privacy(n, m, k - 1) > c

    def test_larger_cache_improves_privacy_for_fixed_k(self):
        """Eq. 5: for fixed T, c -> 1 as m grows (the paper's observation)."""
        values = [achieved_privacy(10_000, m, 100) for m in (100, 1_000, 10_000)]
        assert values[0] > values[1] > values[2] > 1.0

    def test_larger_k_improves_privacy(self):
        values = [achieved_privacy(10_000, 500, k) for k in (10, 100, 1_000)]
        assert values[0] > values[1] > values[2]

    def test_full_scan_is_perfect(self):
        assert achieved_privacy(1000, 50, 1000) == pytest.approx(1.0)

    def test_eviction_probability_geometric(self):
        m = 10
        assert eviction_probability(m, 1) == pytest.approx(1 / m)
        assert eviction_probability(m, 2) == pytest.approx((1 - 1 / m) / m)
        total = sum(eviction_probability(m, t) for t in range(1, 2000))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_landing_probability_divides_by_k(self):
        assert landing_probability(10, 4, 3) == pytest.approx(
            eviction_probability(10, 3) / 4
        )

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            scan_period_for_privacy(1, 2.0)
        with pytest.raises(ConfigurationError):
            scan_period_for_privacy(10, 0.5)
        with pytest.raises(ConfigurationError):
            required_block_size(0, 10, 2.0)
        with pytest.raises(ConfigurationError):
            achieved_privacy(10, 5, 11)
        with pytest.raises(ConfigurationError):
            eviction_probability(10, 0)
        with pytest.raises(ConfigurationError):
            landing_probability(10, 0, 1)

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=100, max_value=10**7),
        m=st.integers(min_value=2, max_value=10**5),
        c=st.floats(min_value=1.01, max_value=50.0),
    )
    def test_required_block_size_meets_target(self, n, m, c):
        k = required_block_size(n, m, c)
        assert 1 <= k <= n
        if k < n:
            assert achieved_privacy(n, m, k) <= c * (1 + 1e-9)


class TestSystemParameters:
    def test_solve_basic(self):
        params = SystemParameters.solve(1000, 50, 2.0, page_capacity=64)
        assert params.num_locations % params.block_size == 0
        assert params.num_locations >= 1000
        assert params.achieved_c <= 2.0 + 1e-9
        assert params.meets_target()
        assert params.total_pages == params.num_locations + 50

    def test_solve_with_reserve(self):
        params = SystemParameters.solve(100, 10, 2.0, reserve_fraction=0.5)
        assert params.free_pages >= 50

    def test_from_block_size(self):
        params = SystemParameters.from_block_size(100, 10, 5)
        assert params.block_size == 5
        assert params.num_locations == 100
        assert params.target_c == params.achieved_c

    def test_scan_period_and_blocks(self):
        params = SystemParameters.from_block_size(120, 10, 6)
        assert params.num_blocks == 20
        assert params.scan_period == 20

    def test_solve_rejects_c_of_one(self):
        with pytest.raises(ConfigurationError):
            SystemParameters.solve(100, 10, 1.0)

    def test_solve_rejects_tiny_cache(self):
        with pytest.raises(ConfigurationError):
            SystemParameters.solve(100, 1, 2.0)

    def test_headroom_invariant(self):
        """Every solved configuration allows rejection sampling to succeed."""
        for n in (10, 100, 997):
            for c in (1.5, 2.0, 8.0):
                params = SystemParameters.solve(n, 5, c)
                assert params.num_locations >= params.block_size + 2

    def test_padding_divisibility_enforced(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(
                num_user_pages=10,
                reserve_pages=0,
                cache_capacity=4,
                block_size=3,
                num_locations=10,  # not a multiple of 3
                page_capacity=16,
                target_c=2.0,
            )

    def test_describe_mentions_key_values(self):
        text = SystemParameters.solve(100, 10, 2.0).describe()
        assert "k=" in text and "m=10" in text

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=10, max_value=5000),
        m=st.integers(min_value=2, max_value=200),
        c=st.floats(min_value=1.05, max_value=20.0),
    )
    def test_solve_property(self, n, m, c):
        params = SystemParameters.solve(n, m, c)
        assert params.num_locations % params.block_size == 0
        assert params.num_locations >= n
        assert params.num_locations >= params.block_size + 2
        # Achieved privacy never worse than target (modulo headroom padding).
        if params.num_locations == params.block_size * math.ceil(
            n / params.block_size
        ):
            assert params.achieved_c <= c * (1 + 1e-9)
