"""Graceful degradation: refusal codes, health state machine, client retry.

Satellite guarantee: *every* :class:`~repro.errors.ReproError` subclass —
including ones defined after this test was written — maps through
:func:`repro.service.health.classify` and the frontend to a deterministic,
machine-readable ``Refused`` code.
"""

from __future__ import annotations

import pytest

import repro.errors as errors_module
from repro.errors import (
    AuthenticationError,
    CapacityError,
    ConfigurationError,
    CryptoError,
    DegradedServiceError,
    PageDeletedError,
    PageNotFoundError,
    ProtocolError,
    RecoveryError,
    ReproError,
    StorageError,
    TransientChannelError,
    TransientStorageError,
)
from repro.core.journal import MemoryJournal
from repro.errors import IndexError_
from repro.faults import (
    FaultInjector,
    FaultyDiskStore,
    FlakyChannel,
    drop_messages,
    duplicate_messages,
    transient_writes,
)
from repro.faults.retry import RetryPolicy
from repro.service import (
    DEGRADED,
    FAILED,
    HEALTHY,
    HealthMonitor,
    QueryFrontend,
    ServiceClient,
    classify,
    error_for_refusal,
    protocol,
)
from repro.storage.disk import DiskStore

from tests.helpers import make_db


def all_repro_error_classes():
    """Every ReproError subclass, discovered recursively."""
    found = []
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        found.append(cls)
        stack.extend(cls.__subclasses__())
    return sorted(set(found), key=lambda c: c.__name__)


def make_frontend(**db_options):
    db = make_db(num_records=20, cache_capacity=6, seed=5, **db_options)
    return QueryFrontend(db)


def serve_query(frontend, session_id, page_id=1):
    suite = frontend.session_suite(session_id)
    sealed = suite.encrypt_page(
        protocol.encode_client_message(protocol.Query(page_id))
    )
    sealed_reply = frontend.serve(session_id, sealed)
    return protocol.decode_client_message(suite.decrypt_page(sealed_reply))


class TestClassify:
    EXPECTED_CODES = {
        PageDeletedError: ("deleted", False),
        PageNotFoundError: ("not-found", False),
        TransientStorageError: ("transient-storage", True),
        StorageError: ("storage", False),
        AuthenticationError: ("auth-failure", False),
        CryptoError: ("crypto", False),
        TransientChannelError: ("transient-channel", True),
        ProtocolError: ("protocol", False),
        ConfigurationError: ("bad-request", False),
        CapacityError: ("capacity", False),
        RecoveryError: ("recovery-failed", False),
        DegradedServiceError: ("unavailable", True),
        ReproError: ("internal", False),
    }

    def test_expected_codes(self):
        for cls, (code, retryable) in self.EXPECTED_CODES.items():
            refusal = classify(cls("boom"))
            assert refusal.code == code, cls.__name__
            assert refusal.retryable == retryable, cls.__name__

    def test_every_repro_error_subclass_has_a_code(self):
        for cls in all_repro_error_classes():
            refusal = classify(cls("boom"))
            assert refusal.code, f"{cls.__name__} classified without a code"
            assert refusal.severity in ("client", "fault", "fatal")

    def test_unknown_subclass_inherits_parent_code(self):
        class BitRotError(StorageError):
            pass

        assert classify(BitRotError("x")).code == "storage"

    def test_foreign_exception_maps_to_internal(self):
        assert classify(ValueError("x")).code == "internal"

    def test_classification_is_deterministic(self):
        codes = [classify(cls("e")).code for cls in all_repro_error_classes()]
        assert codes == [
            classify(cls("e")).code for cls in all_repro_error_classes()
        ]


class TestRefusedWireFormat:
    def test_extended_roundtrip(self):
        refused = protocol.Refused("storage fault", "transient-storage", 0.25)
        blob = protocol.encode_client_message(refused)
        assert protocol.decode_client_message(blob) == refused

    def test_retryable_property(self):
        assert protocol.Refused("r", "c", 0.0).retryable
        assert protocol.Refused("r", "c", 1.5).retryable
        assert not protocol.Refused("r", "c", -1.0).retryable

    def test_default_refusal_is_non_retryable(self):
        refused = protocol.Refused("nope")
        assert refused.code == ""
        assert not refused.retryable


class TestFrontendRefusalCodes:
    def _refusal_code_for(self, exc):
        frontend = make_frontend()
        session = frontend.open_session()

        def boom(page_id):
            raise exc

        frontend.database.query = boom
        reply = serve_query(frontend, session)
        assert isinstance(reply, protocol.Refused)
        return reply

    def test_every_subclass_yields_its_classified_code(self):
        for cls in all_repro_error_classes():
            reply = self._refusal_code_for(cls("kaboom"))
            expected = classify(cls("kaboom"))
            assert reply.code == expected.code, cls.__name__
            assert reply.retryable == expected.retryable, cls.__name__
            assert cls.__name__ in reply.reason

    def test_client_errors_do_not_hurt_health(self):
        frontend = make_frontend()
        session = frontend.open_session()
        for _ in range(10):
            reply = serve_query(frontend, session, page_id=10_000)
            assert isinstance(reply, protocol.Refused)
            assert reply.code == "not-found"
        assert frontend.health.state == HEALTHY

    def test_garbage_session_traffic_does_not_hurt_health(self):
        frontend = make_frontend()
        session = frontend.open_session()
        suite = frontend.session_suite(session)
        for _ in range(10):
            sealed_reply = frontend.serve(session, b"\x00" * 48)
            reply = protocol.decode_client_message(
                suite.decrypt_page(sealed_reply)
            )
            assert isinstance(reply, protocol.Refused)
        assert frontend.health.state == HEALTHY
        assert frontend.counters.get("requests") == 10

    def test_refusal_counters(self):
        frontend = make_frontend()
        session = frontend.open_session()
        serve_query(frontend, session, page_id=10_000)
        serve_query(frontend, session, page_id=10_000)
        assert frontend.counters.get("refused.not-found") == 2


class TestHealthStateMachine:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HealthMonitor(degrade_after=0)
        with pytest.raises(ConfigurationError):
            HealthMonitor(degrade_after=5, fail_after=3)

    def test_degrades_then_fails_on_fault_streak(self):
        monitor = HealthMonitor(degrade_after=3, fail_after=8)
        for i in range(1, 9):
            monitor.record_fault()
            if i < 3:
                assert monitor.state == HEALTHY
            elif i < 8:
                assert monitor.state == DEGRADED
            else:
                assert monitor.state == FAILED

    def test_success_resets_streak_and_recovers_degraded(self):
        monitor = HealthMonitor(degrade_after=2, fail_after=8)
        monitor.record_fault()
        monitor.record_fault()
        assert monitor.state == DEGRADED
        monitor.record_success()
        assert monitor.state == HEALTHY
        assert monitor.fault_streak == 0

    def test_fatal_fault_fails_immediately(self):
        monitor = HealthMonitor()
        monitor.record_fault(fatal=True)
        assert monitor.state == FAILED

    def test_failed_is_sticky_until_recovered(self):
        monitor = HealthMonitor()
        monitor.record_fault(fatal=True)
        monitor.record_success()
        assert monitor.state == FAILED
        with pytest.raises(DegradedServiceError) as excinfo:
            monitor.check()
        assert excinfo.value.retry_after > 0.0
        monitor.mark_recovered()
        assert monitor.state == HEALTHY
        monitor.check()

    def test_retry_hint_grows_with_streak(self):
        monitor = HealthMonitor(retry_hint=0.1, max_hint=0.35)
        monitor.record_fault()
        first = monitor.retry_after
        monitor.record_fault()
        second = monitor.retry_after
        assert second > first
        for _ in range(20):
            monitor.record_fault()
        assert monitor.retry_after == 0.35


class TestFrontendDegradation:
    def _failing_frontend(self, exc_factory, **health_kwargs):
        frontend = make_frontend()
        monitor = HealthMonitor(
            frontend.database.clock,
            counters=frontend.counters,
            **health_kwargs,
        )
        frontend.health = monitor
        calls = []

        def boom(page_id):
            calls.append(page_id)
            raise exc_factory()

        frontend.database.query = boom
        return frontend, calls

    def test_failed_frontend_sheds_load(self):
        frontend, calls = self._failing_frontend(
            lambda: TransientStorageError("disk flapping"),
            degrade_after=2, fail_after=4,
        )
        session = frontend.open_session()
        for _ in range(4):
            serve_query(frontend, session)
        assert frontend.health.state == FAILED
        engine_calls = len(calls)

        reply = serve_query(frontend, session)
        assert isinstance(reply, protocol.Refused)
        assert reply.code == "unavailable"
        assert reply.retryable
        assert reply.retry_after > 0.0
        # Load shedding: the engine was never touched for the refused call.
        assert len(calls) == engine_calls

    def test_fatal_fault_fails_in_one_hit(self):
        frontend, _ = self._failing_frontend(
            lambda: RecoveryError("journal ahead of state"))
        session = frontend.open_session()
        reply = serve_query(frontend, session)
        assert reply.code == "recovery-failed"
        assert frontend.health.state == FAILED

    def test_recover_restores_service(self):
        frontend, _ = self._failing_frontend(
            lambda: RecoveryError("dead"))
        session = frontend.open_session()
        serve_query(frontend, session)
        assert frontend.health.state == FAILED

        del frontend.database.query  # un-monkeypatch: storage "repaired"
        report = frontend.recover()
        assert report.action == "clean"
        assert frontend.health.state == HEALTHY
        reply = serve_query(frontend, session, page_id=1)
        assert isinstance(reply, protocol.Result)
        assert frontend.counters.get("recoveries") == 1

    def test_health_counters(self):
        frontend, _ = self._failing_frontend(
            lambda: TransientStorageError("x"),
            degrade_after=1, fail_after=2,
        )
        session = frontend.open_session()
        serve_query(frontend, session)
        serve_query(frontend, session)
        counts = frontend.counters.as_dict()
        assert counts["health.faults"] == 2
        assert counts["health.degraded"] == 1
        assert counts["health.failed"] == 1


class TestClientRetry:
    def test_retries_dropped_messages(self):
        frontend = make_frontend()
        injector = FaultInjector(3, [drop_messages(times=2)])
        client = ServiceClient(
            frontend,
            retry=RetryPolicy(max_attempts=4, base_delay=0.05),
            channel_wrapper=lambda ch: FlakyChannel(ch, injector),
        )
        before = client.channel.clock.now
        assert client.query(1) == frontend.database.query(1)
        assert client.counters.get("retries") == 2
        # Two backoff sleeps (>= 0.05 * (1 - jitter) each) plus the dropped
        # round trips advanced the virtual clock.
        assert client.channel.clock.now - before > 2 * 0.025

    def test_without_retry_refusals_raise(self):
        frontend = make_frontend()
        client = ServiceClient(frontend)
        with pytest.raises(PageNotFoundError):
            client.query(10_000)

    def test_retryable_refusal_is_retried_to_success(self):
        frontend = make_frontend()
        real_query = frontend.database.query
        state = {"failures": 2}

        def flaky_query(page_id):
            if state["failures"] > 0:
                state["failures"] -= 1
                raise TransientStorageError("disk flapping")
            return real_query(page_id)

        frontend.database.query = flaky_query
        client = ServiceClient(
            frontend, retry=RetryPolicy(max_attempts=5, base_delay=0.01)
        )
        assert client.query(2) == real_query(2)
        assert client.counters.get("retries") == 2

    def test_non_retryable_refusal_is_not_retried(self):
        frontend = make_frontend()
        client = ServiceClient(frontend, retry=RetryPolicy(max_attempts=5))
        with pytest.raises(PageNotFoundError):
            client.query(10_000)
        assert client.counters.get("retries") == 0

    def test_retry_honours_server_hint_as_floor(self):
        frontend = make_frontend()
        frontend.health = HealthMonitor(
            frontend.database.clock, retry_hint=0.5, max_hint=10.0,
            counters=frontend.counters,
        )
        frontend.health.record_fault(fatal=True)
        client = ServiceClient(
            frontend,
            retry=RetryPolicy(max_attempts=3, base_delay=0.001),
        )
        before = client.channel.clock.now
        with pytest.raises(DegradedServiceError):
            client.query(1)
        elapsed = client.channel.clock.now - before
        # Two retry sleeps, each floored by the server's >= 0.5 s hint.
        assert elapsed >= 1.0

    def test_retried_runs_are_deterministic(self):
        def run():
            frontend = make_frontend()
            injector = FaultInjector(3, [drop_messages(times=2)])
            client = ServiceClient(
                frontend,
                retry=RetryPolicy(max_attempts=4, base_delay=0.05),
                channel_wrapper=lambda ch: FlakyChannel(ch, injector),
            )
            payload = client.query(1)
            return (
                payload,
                client.channel.clock.now,
                client.counters.as_dict(),
                frontend.counters.as_dict(),
                [(e.op, e.location, e.count, e.request_index, e.timestamp)
                 for e in frontend.database.trace],
            )

        assert run() == run()

    def test_merged_counter_report(self):
        frontend = make_frontend()
        injector = FaultInjector(
            3, [drop_messages(times=1)], counters=None,
        )
        client = ServiceClient(
            frontend,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01),
            channel_wrapper=lambda ch: FlakyChannel(ch, injector),
        )
        client.query(1)
        from repro.sim.metrics import CounterSet

        totals = CounterSet()
        totals.merge(client.counters, prefix="client.")
        totals.merge(frontend.counters, prefix="frontend.")
        assert totals.get("client.retries") == 1
        # The dropped message never reached the frontend; only the retry did.
        assert totals.get("frontend.requests") == 1


class TestClientErrorMapping:
    """Refusals surface to callers as their server-side error class."""

    NON_RETRYABLE = [
        (PageDeletedError, PageDeletedError),
        (PageNotFoundError, PageNotFoundError),
        (StorageError, StorageError),
        (AuthenticationError, AuthenticationError),
        (CryptoError, CryptoError),
        (ProtocolError, ProtocolError),
        (ConfigurationError, ConfigurationError),
        (CapacityError, CapacityError),
        (RecoveryError, RecoveryError),
        (IndexError_, IndexError_),
        (ReproError, ReproError),
    ]

    def _client_for(self, exc):
        frontend = make_frontend()

        def boom(page_id):
            raise exc

        frontend.database.query = boom
        return ServiceClient(frontend)

    def test_non_retryable_refusals_raise_their_class(self):
        for raised, expected in self.NON_RETRYABLE:
            client = self._client_for(raised("kaboom"))
            with pytest.raises(expected) as excinfo:
                client.query(1)
            assert type(excinfo.value) is expected, raised.__name__
            assert "kaboom" in str(excinfo.value)

    def test_retryable_refusals_raise_degraded_with_hint(self):
        for raised in (TransientStorageError, TransientChannelError):
            client = self._client_for(raised("flap"))
            with pytest.raises(DegradedServiceError) as excinfo:
                client.query(1)
            assert excinfo.value.retry_after >= 0.0, raised.__name__

    def test_error_for_refusal_unknown_and_legacy_codes(self):
        assert type(error_for_refusal("", "legacy")) is ReproError
        assert type(error_for_refusal("martian", "what")) is ReproError
        exc = error_for_refusal("transient-storage", "retry me", 0.25)
        assert isinstance(exc, DegradedServiceError)
        assert exc.retry_after == 0.25


def faulty_factory(injector):
    def build(num_locations, frame_size, timing, clock, trace):
        return FaultyDiskStore(
            DiskStore(num_locations, frame_size, timing, clock, trace),
            injector,
        )

    return build


class TestWriteFaultMidApply:
    """A transient write failure mid-apply must not corrupt the store.

    Regression for the mid-apply hazard: the trusted deltas land before
    the frame write-back, so a retryable write failure used to leave the
    pageMap pointing at never-written frames while the retry-after hint
    invited a resend that overwrote the pending journal record.
    """

    def test_client_retry_after_write_fault_heals_and_succeeds(self):
        injector = FaultInjector(0)
        db = make_db(
            num_records=20, cache_capacity=6, seed=5,
            journal=MemoryJournal(),
            disk_factory=faulty_factory(injector),
        )
        frontend = QueryFrontend(db)
        client = ServiceClient(
            frontend, retry=RetryPolicy(max_attempts=4, base_delay=0.01)
        )
        injector.add(transient_writes(times=1))
        client.update(2, b"healed")
        assert client.counters.get("retries") == 1
        assert db.engine.counters.get("recovery.rolled_forward") == 1
        assert not db.engine.write_back_pending
        assert not db.engine.journal_pending
        assert client.query(2) == b"healed"
        db.consistency_check()

    def test_pending_journal_record_survives_the_failed_request(self):
        injector = FaultInjector(0)
        journal = MemoryJournal()
        db = make_db(
            num_records=20, cache_capacity=6, seed=5, journal=journal,
            disk_factory=faulty_factory(injector),
        )
        injector.add(transient_writes(times=1))
        with pytest.raises(TransientStorageError):
            db.query(3)
        # The only record able to repair the store is still in the slot,
        # and the engine knows the write-back is unfinished.
        assert journal.read() is not None
        assert db.engine.write_back_pending
        assert db.engine.request_count == 0


class TestDuplicateSuppression:
    """At-least-once delivery never double-applies a mutating request."""

    def test_duplicate_insert_allocates_exactly_one_page(self):
        frontend = make_frontend(reserve_fraction=0.2)
        injector = FaultInjector(4, [duplicate_messages()])
        client = ServiceClient(
            frontend, channel_wrapper=lambda ch: FlakyChannel(ch, injector)
        )
        before = frontend.database.engine.request_count
        new_id = client.insert(b"exactly once")
        assert frontend.database.engine.request_count == before + 1
        assert frontend.counters.get("requests.duplicate") == 1
        assert client.query(new_id) == b"exactly once"
        frontend.database.consistency_check()

    def test_replayed_request_bytes_answered_from_cache(self):
        frontend = make_frontend()
        session = frontend.open_session()
        suite = frontend.session_suite(session)
        sealed = suite.encrypt_page(
            protocol.encode_client_message(protocol.Update(1, b"v1"))
        )
        first = frontend.serve(session, sealed)
        count = frontend.database.engine.request_count
        second = frontend.serve(session, sealed)
        assert second == first
        assert frontend.database.engine.request_count == count
        assert frontend.counters.get("requests.duplicate") == 1

    def test_distinct_transmissions_are_not_deduplicated(self):
        # The same logical request sealed twice uses fresh nonces, so both
        # transmissions execute — dedup keys on ciphertext identity only.
        frontend = make_frontend()
        session = frontend.open_session()
        suite = frontend.session_suite(session)
        message = protocol.encode_client_message(protocol.Query(1))
        first = suite.encrypt_page(message)
        second = suite.encrypt_page(message)
        assert first != second
        frontend.serve(session, first)
        frontend.serve(session, second)
        assert frontend.counters.get("requests") == 2
        assert frontend.counters.get("requests.duplicate") == 0

    def test_refused_replies_are_not_cached(self):
        frontend = make_frontend()
        session = frontend.open_session()
        garbage = b"\x00" * 48
        frontend.serve(session, garbage)
        frontend.serve(session, garbage)
        # Both deliveries re-execute (refusals mutate nothing durable).
        assert frontend.counters.get("requests") == 2
        assert frontend.counters.get("requests.duplicate") == 0

    def test_cache_dropped_with_session(self):
        frontend = make_frontend()
        client = ServiceClient(frontend)
        client.query(1)
        assert len(frontend._reply_cache) == 1
        client.close()
        assert len(frontend._reply_cache) == 0
