"""Frame codec and envelope-message tests (repro.net.framing)."""

import asyncio
import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    NetTimeoutError,
    ProtocolError,
    TransientChannelError,
)
from repro.net.framing import (
    Bye,
    Hello,
    MAX_FRAME_BYTES,
    NetRefused,
    Ping,
    Pong,
    ReplAck,
    ReplQuery,
    ReplRecord,
    ReplState,
    Reply,
    Request,
    Resume,
    Welcome,
    decode_net_message,
    encode_frame,
    encode_net_message,
    read_frame_async,
    read_frame_sock,
    write_frame_sock,
)
from repro.service import protocol


class TestEnvelopeCodec:
    @pytest.mark.parametrize("message", [
        Hello(),
        Hello(7),
        Welcome(0xDEADBEEF01020304),
        Request(1, b"sealed request bytes"),
        Reply(2**32 - 1, b""),
        Reply(3, b"sealed reply", 0),
        Reply(3, b"sealed reply", 2**64 - 1),
        ReplRecord("127.0.0.1:7000", 42, b"sealed record"),
        ReplRecord("host:1", 2**64 - 1, b""),
        ReplAck("127.0.0.1:7000", 0),
        ReplAck("10.0.0.9:65535", 2**64 - 1),
        ReplQuery("127.0.0.1:7000"),
        ReplState("127.0.0.1:7000", 17),
        NetRefused(9, protocol.Refused("busy", "unavailable", 0.25)),
        NetRefused(0, protocol.Refused("legacy")),
        Bye(),
        Ping(),
        Pong(False, 0),
        Pong(True, 2**32 - 1),
        Resume(0xDEADBEEF01020304),
        Resume(0),
    ])
    def test_roundtrip(self, message):
        assert decode_net_message(encode_net_message(message)) == message

    @pytest.mark.parametrize("blob", [
        b"\x07\x00",            # PING with trailing byte
        b"\x08\x00",            # PONG too short
        b"\x08\x00\x00\x00\x00\x00\x00",  # PONG too long
        b"\x09\x00\x01",        # RESUME too short
    ])
    def test_malformed_probe_and_resume_rejected(self, blob):
        with pytest.raises(ProtocolError):
            decode_net_message(blob)

    @pytest.mark.parametrize("blob", [
        b"\x0a\x00\x02ab",          # REPL_RECORD truncated after origin
        b"\x0b\x00\x02ab\x00",      # REPL_ACK seq too short
        b"\x0b\x00\x02ab" + b"\x00" * 9,  # REPL_ACK trailing byte
        b"\x0c\x00\x05abc",         # REPL_QUERY origin truncated
        b"\x0c\x00\x02ab!",         # REPL_QUERY trailing byte
        b"\x0d\x00\x02ab\x00\x00",  # REPL_STATE seq too short
        b"\x0a" + struct.pack(">H", 300) + b"x" * 300 + b"\x00" * 8,
    ])
    def test_malformed_repl_frames_rejected(self, blob):
        with pytest.raises(ProtocolError):
            decode_net_message(blob)

    def test_reply_watermark_defaults_to_zero(self):
        """A stamped and an unstamped reply differ only in repl_seq, and
        decoding preserves the watermark bit-exactly."""
        plain = Reply(7, b"sealed")
        assert plain.repl_seq == 0
        stamped = decode_net_message(
            encode_net_message(Reply(7, b"sealed", 99))
        )
        assert (stamped.request_id, stamped.sealed, stamped.repl_seq) == \
            (7, b"sealed", 99)

    def test_empty_body_rejected(self):
        with pytest.raises(ProtocolError):
            decode_net_message(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError, match="unknown"):
            decode_net_message(b"\x7f")

    def test_bad_magic_rejected(self):
        with pytest.raises(ProtocolError, match="HELLO"):
            decode_net_message(b"\x01XXXX\x01")

    def test_truncated_welcome_rejected(self):
        with pytest.raises(ProtocolError):
            decode_net_message(b"\x02\x00\x01")

    def test_refused_envelope_requires_refused_body(self):
        body = (b"\x05" + struct.pack(">I", 3)
                + protocol.encode_client_message(protocol.Ok()))
        with pytest.raises(ProtocolError, match="Refused"):
            decode_net_message(body)

    def test_garbage_bytes_never_crash(self):
        for seed in range(40):
            blob = bytes((seed * 31 + i * 7) % 256 for i in range(seed))
            try:
                decode_net_message(blob)
            except ProtocolError:
                pass


class TestFraming:
    def test_encode_frame_prefixes_length(self):
        frame = encode_frame(b"abc")
        assert frame == struct.pack(">I", 3) + b"abc"

    def test_encode_rejects_oversized_body(self):
        huge = bytearray(MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(bytes(huge))

    def test_sync_roundtrip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            write_frame_sock(left, b"hello frame")
            assert read_frame_sock(right) == b"hello frame"
        finally:
            left.close()
            right.close()

    def test_oversized_prefix_rejected_before_reading_body(self):
        """A hostile length prefix must fail after 4 bytes, not try to
        buffer the claimed payload (which was never sent)."""
        left, right = socket.socketpair()
        try:
            right.settimeout(5.0)
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                read_frame_sock(right)
        finally:
            left.close()
            right.close()

    def test_peer_close_mid_frame_is_transient(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 100) + b"partial")
            left.close()
            with pytest.raises(TransientChannelError):
                read_frame_sock(right)
        finally:
            right.close()

    def test_recv_timeout_is_typed_and_transient(self):
        left, right = socket.socketpair()
        try:
            right.settimeout(0.05)
            with pytest.raises(NetTimeoutError, match="deadline"):
                read_frame_sock(right)
            # NetTimeoutError stays inside the retryable hierarchy.
            assert issubclass(NetTimeoutError, TransientChannelError)
        finally:
            left.close()
            right.close()

    def test_async_oversized_prefix_rejected_before_body(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                await read_frame_async(reader)

        asyncio.run(run())

    def test_async_roundtrip(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(b"payload"))
            assert await read_frame_async(reader) == b"payload"

        asyncio.run(run())

    def test_async_clean_close_is_transient(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            with pytest.raises(TransientChannelError):
                await read_frame_async(reader)

        asyncio.run(run())

    def test_transport_cap_admits_max_protocol_payload(self):
        """A maximal legal service payload must fit inside one frame."""
        assert protocol.MAX_PAYLOAD_BYTES < MAX_FRAME_BYTES


class TestFragmentedDelivery:
    """TCP guarantees bytes, not boundaries: a frame may arrive one byte
    at a time, with the length prefix split across reads.  Both receive
    paths must reassemble exactly the frames that were sent."""

    BODIES = [b"", b"x", b"fragmented frame body", bytes(range(256))]

    def test_sock_byte_at_a_time(self):
        left, right = socket.socketpair()
        try:
            right.settimeout(5.0)
            stream = b"".join(encode_frame(body) for body in self.BODIES)

            def dribble():
                for i in range(len(stream)):
                    left.sendall(stream[i:i + 1])

            sender = threading.Thread(target=dribble)
            sender.start()
            try:
                for body in self.BODIES:
                    assert read_frame_sock(right) == body
            finally:
                sender.join()
        finally:
            left.close()
            right.close()

    def test_sock_split_length_prefix(self):
        """Two bytes of the prefix, a pause, then the rest."""
        left, right = socket.socketpair()
        try:
            right.settimeout(5.0)
            frame = encode_frame(b"split prefix")

            def send_in_two():
                left.sendall(frame[:2])
                time.sleep(0.05)
                left.sendall(frame[2:])

            sender = threading.Thread(target=send_in_two)
            sender.start()
            try:
                assert read_frame_sock(right) == b"split prefix"
            finally:
                sender.join()
        finally:
            left.close()
            right.close()

    def test_async_byte_at_a_time(self):
        async def run():
            reader = asyncio.StreamReader()
            stream = b"".join(encode_frame(body) for body in self.BODIES)
            received = []

            async def consume():
                for _ in self.BODIES:
                    received.append(await read_frame_async(reader))

            async def dribble():
                for i in range(len(stream)):
                    reader.feed_data(stream[i:i + 1])
                    await asyncio.sleep(0)
                reader.feed_eof()

            await asyncio.gather(consume(), dribble())
            assert received == self.BODIES

        asyncio.run(run())

    def test_async_split_length_prefix(self):
        async def run():
            reader = asyncio.StreamReader()
            frame = encode_frame(b"split prefix")

            async def dribble():
                reader.feed_data(frame[:3])
                await asyncio.sleep(0.01)
                reader.feed_data(frame[3:])

            body, _ = await asyncio.gather(read_frame_async(reader),
                                           dribble())
            assert body == b"split prefix"

        asyncio.run(run())

    def test_end_to_end_through_fragmenting_proxy(self):
        """A real client/server pair behind a proxy that re-chunks every
        frame into 3-byte writes: the stack must not notice."""
        from tests.helpers import make_db
        from repro.baselines import make_records
        from repro.faults import ChaosProxy, ChaosProxyThread, FaultInjector
        from repro.net import NetworkClient, PirServer, ServerThread
        from repro.service.frontend import SESSION_RANDOM, QueryFrontend

        records = make_records(16, 16)
        db = make_db(num_records=16)
        try:
            frontend = QueryFrontend(db, session_id_mode=SESSION_RANDOM)
            with ServerThread(PirServer(frontend)) as server:
                proxy = ChaosProxy(server.host, server.port,
                                   FaultInjector(seed=3), fragment_bytes=3)
                with ChaosProxyThread(proxy) as chaos:
                    with NetworkClient(chaos.host, chaos.port,
                                       timeout=10.0) as client:
                        for page_id in (0, 5, 15):
                            assert client.query(page_id) == records[page_id]
        finally:
            db.close()


class TestProtocolLengthGuards:
    """The u32 decode paths must not trust lengths beyond the cap."""

    def test_update_forged_length_rejected(self):
        forged = (b"\x11" + struct.pack(">Q", 1)
                  + struct.pack(">I", protocol.MAX_PAYLOAD_BYTES + 1)
                  + b"tiny")
        with pytest.raises(ProtocolError, match="limit"):
            protocol.decode_client_message(forged)

    def test_insert_forged_length_rejected(self):
        forged = (b"\x12" + struct.pack(">I", 0xFFFFFFFF) + b"x")
        with pytest.raises(ProtocolError, match="limit"):
            protocol.decode_client_message(forged)

    def test_refused_forged_reason_length_rejected(self):
        forged = b"\x2f" + struct.pack(">I", 0xFFFFFFF0) + b"nope"
        with pytest.raises(ProtocolError, match="limit"):
            protocol.decode_client_message(forged)

    def test_batch_item_forged_length_rejected(self):
        forged = (b"\x14" + struct.pack(">I", 1)
                  + struct.pack(">I", protocol.MAX_PAYLOAD_BYTES + 1)
                  + b"\x10" + struct.pack(">Q", 0))
        with pytest.raises(ProtocolError, match="limit"):
            protocol.decode_client_message(forged)

    def test_oversized_payload_refused_on_encode(self):
        with pytest.raises(ProtocolError, match="limit"):
            protocol.encode_client_message(
                protocol.Insert(bytes(protocol.MAX_PAYLOAD_BYTES + 1))
            )


class TestServerRejectsGarbage:
    """A raw socket poking the real server must get a clean refusal."""

    def _serve(self):
        from tests.helpers import make_db
        from repro.net import PirServer, ServerThread
        from repro.service.frontend import SESSION_RANDOM, QueryFrontend

        db = make_db(num_records=16)
        frontend = QueryFrontend(db, session_id_mode=SESSION_RANDOM)
        return db, ServerThread(PirServer(frontend))

    def test_oversized_prefix_closes_connection(self):
        db, handle = self._serve()
        try:
            with handle:
                sock = socket.create_connection(
                    (handle.host, handle.port), timeout=5.0
                )
                try:
                    sock.sendall(struct.pack(">I", 0xFFFFFFFF))
                    # The server answers with a protocol refusal (best
                    # effort) and closes; either way the connection ends
                    # promptly without the server buffering 4 GiB.
                    sock.settimeout(5.0)
                    try:
                        message = decode_net_message(read_frame_sock(sock))
                        assert isinstance(message, NetRefused)
                        assert message.refusal.code == "protocol"
                    except TransientChannelError:
                        pass
                finally:
                    sock.close()
        finally:
            db.close()

    def test_garbage_handshake_refused(self):
        db, handle = self._serve()
        try:
            with handle:
                sock = socket.create_connection(
                    (handle.host, handle.port), timeout=5.0
                )
                try:
                    sock.settimeout(5.0)
                    write_frame_sock(sock, b"\x7f not a hello")
                    message = decode_net_message(read_frame_sock(sock))
                    assert isinstance(message, NetRefused)
                    assert message.refusal.code == "protocol"
                except TransientChannelError:
                    pass
                finally:
                    sock.close()
        finally:
            db.close()
