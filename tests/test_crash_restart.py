"""Whole-process crash and restart of a network-served database.

The satellite drill for the cluster PR: a :class:`ServerThread` is
*killed* (event loop slammed shut, no drain) mid-write-back over a
:class:`~repro.storage.filedisk.FileDiskStore`-backed database, the
process "restarts" — snapshot restored next to the surviving
:class:`~repro.core.journal.FileJournal`, intent rolled forward — and
the same :class:`~repro.net.client.NetworkClient` retransmits its
acknowledged insert byte-for-byte.  The persistent reply cache answers
the duplicate with the original sealed reply; the insert is applied
exactly once across the crash.
"""

from __future__ import annotations

import os

import pytest

from tests.helpers import make_db
from repro.baselines import make_records
from repro.core.journal import FileJournal
from repro.core.snapshot import load_snapshot, save_snapshot
from repro.errors import DegradedServiceError, ReproError
from repro.faults import (
    SITE_DISK_WRITE,
    FaultInjector,
    FaultPlan,
    FaultyDiskStore,
)
from repro.net import NetworkClient, PirServer, ServerThread
from repro.service import protocol
from repro.service.frontend import SESSION_RANDOM, QueryFrontend
from repro.storage.disk import DiskStore
from repro.storage.filedisk import FileDiskStore

NUM_RECORDS = 30
SEED = 77
RECORDS = make_records(NUM_RECORDS, 16)


def wait_until(predicate, timeout=10.0, interval=0.02):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _try_update(client, page_id, value):
    from repro.errors import DegradedServiceError

    try:
        client.update(page_id, value)
        return True
    except DegradedServiceError:
        return False


def file_disk_factory(path):
    def build(num_locations, frame_size, timing, clock, trace):
        return FileDiskStore(path, num_locations, frame_size,
                             timing=timing, clock=clock, trace=trace)

    return build


class TestCrashRestartOverNetwork:
    def test_kill_mid_write_back_restart_exactly_once(self, tmp_path):
        journal_path = str(tmp_path / "intent.jnl")
        cache_path = str(tmp_path / "replies.cache")
        snap_dir = str(tmp_path / "snap")

        db = make_db(
            num_records=NUM_RECORDS, cache_capacity=6, seed=SEED,
            journal=FileJournal(journal_path),
            disk_factory=file_disk_factory(str(tmp_path / "pages.bin")),
        )
        frontend = QueryFrontend(db, session_id_mode=SESSION_RANDOM,
                                 reply_cache_path=cache_path)
        thread = ServerThread(PirServer(frontend)).start()
        port = thread.port
        client = NetworkClient(thread.host, port,
                               timeout=5.0, read_timeout=1.0)

        # An insert, acknowledged over the wire.  Driven through
        # _transact so the identical sealed bytes can be retransmitted
        # after the restart — exactly what a real client's transparent
        # retransmission sends.
        sealed = client._suite.encrypt_page(
            protocol.encode_client_message(protocol.Insert(b"ack me once"))
        )
        request_id = client._next_request_id
        client._next_request_id += 1
        first_reply = client._transact(request_id, sealed)
        decoded = protocol.decode_client_message(
            client._suite.decrypt_page(first_reply)
        )
        assert isinstance(decoded, protocol.Result)
        new_id = decoded.page_id
        # Persist-before-ack: the reply hit the cache file before the
        # client saw it.
        assert os.path.getsize(cache_path) > 0

        # The snapshot the "operator" took before the outage.
        save_snapshot(db, snap_dir)

        # Power failure mid-write-back on the next request: the intent
        # record is durable in the file journal, half the frames are
        # not, and the server process is killed without ceremony.
        k = db.params.block_size
        injector = FaultInjector(0, [FaultPlan(SITE_DISK_WRITE, "crash",
                                               after=k // 2)])
        db.engine.disk = FaultyDiskStore(db.disk, injector)
        with pytest.raises(ReproError):
            client.update(5, b"torn update")
        thread.kill()
        assert db.engine.journal_pending

        # -- restart: same port, same journal, same reply-cache file ----
        restored = load_snapshot(snap_dir, seed=SEED + 1,
                                 journal=FileJournal(journal_path))
        assert restored.engine.journal_pending
        report = restored.recover()
        # The intent was sealed before any frame was written, so the
        # torn update rolls *forward*...
        assert report.action == "replayed"
        assert restored.query(5) == b"torn update"
        # ...and the pre-crash acknowledged insert is intact.
        assert restored.query(new_id) == b"ack me once"

        frontend2 = QueryFrontend(restored, session_id_mode=SESSION_RANDOM,
                                  reply_cache_path=cache_path)
        server2 = PirServer(frontend2, port=port, adopt_sessions=True)
        with ServerThread(server2):
            applied_before = restored.engine.request_count
            # The client never learned about the restart: its socket is
            # dead, so _transact reconnects, RESUMEs (the new process
            # adopts the session — the suite derives from the id), and
            # retransmits the identical bytes.
            second_reply = client._transact(request_id, sealed)
            assert second_reply == first_reply  # the original sealed ACK
            assert restored.engine.request_count == applied_before
            assert frontend2.counters.get("requests.duplicate") == 1
            assert frontend2.counters.get("sessions.adopted") == 1
            assert client.counters.get("reconnects") == 1
            assert client.counters.get("retransmits") == 1
            # Normal service continues on the resumed session.
            assert client.query(new_id) == b"ack me once"
            assert client.query(3) == RECORDS[3]
            client.close()
        restored.consistency_check()

    def test_unacked_request_at_crash_may_be_reissued(self, tmp_path):
        """A request whose journal write never happened simply never
        happened: after restart the client re-issues it as a *new*
        request and it applies cleanly (no duplicate, no loss)."""
        journal_path = str(tmp_path / "intent.jnl")
        snap_dir = str(tmp_path / "snap")

        db = make_db(num_records=NUM_RECORDS, cache_capacity=6, seed=SEED,
                     journal=FileJournal(journal_path))
        frontend = QueryFrontend(db, session_id_mode=SESSION_RANDOM)
        thread = ServerThread(PirServer(frontend)).start()
        port = thread.port
        client = NetworkClient(thread.host, port,
                               timeout=5.0, read_timeout=1.0)
        assert client.query(1) == RECORDS[1]
        save_snapshot(db, snap_dir)

        thread.kill()  # dies before the update is ever sent

        restored = load_snapshot(snap_dir, seed=SEED + 2,
                                 journal=FileJournal(journal_path))
        assert restored.recover().action == "clean"
        frontend2 = QueryFrontend(restored, session_id_mode=SESSION_RANDOM)
        server2 = PirServer(frontend2, port=port, adopt_sessions=True)
        with ServerThread(server2):
            client.update(2, b"after restart")
            assert client.query(2) == b"after restart"
            assert client.counters.get("reconnects") == 1
            client.close()


class TestReplicationCrashDrills:
    """The cross-replica drill (DESIGN.md §13): kill a backend with
    writes in flight, the surviving replica serves every acknowledged
    write, and the restarted backend converges back to identical
    trusted content."""

    def test_kill_backend_with_writes_in_flight_no_stale_reads(
            self, tmp_path):
        import threading

        from repro.cluster import (
            ClusterRouter,
            RouterThread,
            build_cluster,
            connect_replication,
        )

        durable = tmp_path / "repl"
        durable.mkdir()
        handles = build_cluster(RECORDS, 2, str(tmp_path / "boot"),
                                page_capacity=16, target_c=2.0)
        try:
            for handle in handles:
                handle.start()
            connect_replication(handles, durable_dir=str(durable))
            router = ClusterRouter(
                [handle.spec for handle in handles],
                probe_interval=0.05, probe_timeout=1.0, eject_after=2,
                readmit_after=2, connect_timeout=1.0, backend_timeout=5.0,
            )
            with RouterThread(router) as thread:
                with NetworkClient(thread.host, thread.port,
                                   timeout=10.0) as client:
                    assert client.query(0) == RECORDS[0]
                    pinned = router._pins[client.session_id]
                    victim = next(h for h in handles
                                  if h.spec.address == pinned)
                    survivor = next(h for h in handles
                                    if h.spec.address != pinned)

                    # A stream of writes with the kill racing the
                    # middle of it: the router fails the session over
                    # and retransmits.  Every update either succeeds
                    # with read-your-writes intact or is refused
                    # *retryably* (the write exists only on the dead
                    # member — the cluster sheds rather than serve
                    # stale state); a stale read is never acceptable.
                    killer = threading.Thread(target=victim.kill)
                    for page_id in range(10):
                        value = b"inflight-%d" % page_id
                        try:
                            client.update(page_id, value)
                        except DegradedServiceError:
                            # Acknowledged-but-unreplicated window:
                            # only the restarted member can replay the
                            # missing record; bring it back and retry.
                            killer.join(timeout=5.0)
                            victim.restart()
                            assert wait_until(
                                lambda v=value, p=page_id:
                                _try_update(client, p, v))
                        assert client.query(page_id) == value
                        if page_id == 3:
                            killer.start()
                    killer.join(timeout=5.0)
                    for page_id in range(10):
                        assert (client.query(page_id)
                                == b"inflight-%d" % page_id)

                    # The victim restarts (unless the shed path already
                    # brought it back) and replays the tail it missed
                    # from the survivor's (durable) backlog.
                    if victim.thread is None:
                        victim.restart()
                    assert wait_until(
                        lambda: victim.repl_applier.applied_for(
                            survivor.spec.address)
                        >= survivor.repl_log.last_seq)
            # Quiesce, then check convergence: identical trusted
            # content on both members despite divergent physical
            # layouts, with the backlog durable on disk.
            for handle in handles:
                handle.kill()
            for page_id in range(10):
                expected = b"inflight-%d" % page_id
                assert victim.db.query(page_id) == expected
                assert survivor.db.query(page_id) == expected
            assert (victim.db.content_digest()
                    == survivor.db.content_digest())
            assert os.path.getsize(durable / "repl-0.log") > 0
            assert os.path.getsize(durable / "repl-1.log") > 0
        finally:
            for handle in handles:
                handle.kill()
            for handle in handles:
                handle.db.close()

    def test_process_restart_replays_backlog_from_snapshot_and_sidecar(
            self, tmp_path):
        """A full process-death restart of a replica: its applied-vector
        rides a snapshot as a sealed sidecar, the origin's backlog is
        durable on disk, and roll-forward replays exactly the missed
        tail (checkpointed records dedupe as duplicates)."""
        from repro.cluster.replication import (
            ReplicationApplier,
            ReplicationLog,
        )
        from repro.core.snapshot import (
            bootstrap_replica,
            load_sealed_sidecar,
            save_sealed_sidecar,
        )

        log_path = str(tmp_path / "origin.log")
        snap_dir = str(tmp_path / "replica-snap")
        origin = make_db(num_records=NUM_RECORDS, seed=SEED)
        replica = bootstrap_replica(origin, str(tmp_path / "boot"),
                                    seed=SEED + 1)
        log = ReplicationLog(origin.cop, "origin:1", path=log_path)
        origin.replication = log
        applier = ReplicationApplier(replica)

        # Phase 1: replicated normally, then checkpointed.
        origin.update(1, b"pre-checkpoint")
        for seq, sealed in log.records_since(0):
            applier.apply("origin:1", seq, sealed)
        save_snapshot(replica, snap_dir)
        save_sealed_sidecar(replica, snap_dir, "repl-state",
                            applier.encode_state())

        # Phase 2: the replica process dies; the origin keeps writing.
        checkpointed = applier.applied_for("origin:1")
        replica.close()
        origin.update(2, b"while down")
        origin.delete(3)

        # Phase 3: restart — snapshot, sidecar, durable backlog.
        restored = load_snapshot(snap_dir, seed=SEED + 2)
        blob = load_sealed_sidecar(restored, snap_dir, "repl-state")
        assert blob is not None
        fresh = ReplicationApplier(restored)
        fresh.restore_state(ReplicationApplier.decode_state(blob))
        assert fresh.applied_for("origin:1") == checkpointed
        reloaded = ReplicationLog(origin.cop, "origin:1", path=log_path)
        assert reloaded.last_seq == log.last_seq
        for seq, sealed in reloaded.records_since(
                fresh.applied_for("origin:1")):
            fresh.apply("origin:1", seq, sealed)
        assert fresh.applied_for("origin:1") == log.last_seq
        assert restored.query(1) == b"pre-checkpoint"
        assert restored.query(2) == b"while down"
        with pytest.raises(ReproError):
            restored.query(3)
        assert restored.content_digest() == origin.content_digest()
        log.close()
        reloaded.close()
        origin.close()
        restored.close()


class TestKillIsAbrupt:
    def test_kill_does_not_drain(self):
        """kill() must not run the orderly drain path: in-flight state
        (sessions, reply cache) stays as the crash left it."""
        db = make_db(num_records=16)
        try:
            frontend = QueryFrontend(db, session_id_mode=SESSION_RANDOM)
            thread = ServerThread(PirServer(frontend)).start()
            client = NetworkClient(thread.host, thread.port, timeout=5.0)
            client.query(1)
            assert frontend.session_count == 1
            thread.kill()
            # No drain: the session was never closed.
            assert frontend.session_count == 1
            client._teardown()
        finally:
            db.close()

    def test_kill_twice_is_idempotent(self):
        db = make_db(num_records=16)
        try:
            frontend = QueryFrontend(db, session_id_mode=SESSION_RANDOM)
            thread = ServerThread(PirServer(frontend)).start()
            thread.kill()
            thread.kill()
        finally:
            db.close()
