"""Virtual clock and metrics accumulators."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import VirtualClock
from repro.sim.metrics import CounterSet, LatencySeries


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now == pytest.approx(1.75)

    def test_advance_returns_new_time(self):
        assert VirtualClock().advance(2.0) == pytest.approx(2.0)

    def test_advance_to_only_moves_forward(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        clock.advance_to(3.0)
        assert clock.now == 5.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualClock().advance(-0.1)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(9)
        clock.reset()
        assert clock.now == 0.0


class TestLatencySeries:
    def _series(self, values):
        series = LatencySeries()
        series.extend(values)
        return series

    def test_basic_stats(self):
        series = self._series([1.0, 2.0, 3.0, 4.0])
        assert series.mean() == pytest.approx(2.5)
        assert series.minimum() == 1.0
        assert series.maximum() == 4.0
        assert len(series) == 4

    def test_percentiles(self):
        series = self._series([float(i) for i in range(1, 101)])
        assert series.percentile(50) == 50.0
        assert series.percentile(99) == 99.0
        assert series.percentile(100) == 100.0
        assert series.percentile(0) == 1.0

    def test_stddev_and_cv(self):
        constant = self._series([2.0] * 10)
        assert constant.stddev() == 0.0
        assert constant.coefficient_of_variation() == 0.0
        spiky = self._series([1.0] * 9 + [100.0])
        assert spiky.coefficient_of_variation() > 1.0

    def test_single_sample(self):
        series = self._series([3.0])
        assert series.stddev() == 0.0
        assert series.percentile(50) == 3.0

    def test_summary_keys(self):
        summary = self._series([1.0, 2.0]).summary()
        assert set(summary) == {"count", "mean", "min", "p50", "p99", "max",
                                "stddev", "cv"}

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            LatencySeries().mean()
        with pytest.raises(ConfigurationError):
            self._series([1.0]).percentile(101)
        with pytest.raises(ConfigurationError):
            LatencySeries().record(-1.0)

    def test_samples_copy(self):
        series = self._series([1.0])
        series.samples.append(99.0)
        assert len(series) == 1


class TestCounterSet:
    def test_increment_and_get(self):
        counters = CounterSet()
        counters.increment("x")
        counters.increment("x", 4)
        assert counters.get("x") == 5
        assert counters.get("missing") == 0

    def test_as_dict_and_reset(self):
        counters = CounterSet()
        counters.increment("a", 2)
        assert counters.as_dict() == {"a": 2}
        counters.reset()
        assert counters.as_dict() == {}

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            CounterSet().increment("x", -1)
