"""Hashlib-free crypto stack: pure HMAC, pure keystream, pure suite backend."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.mac import hmac_sha256
from repro.crypto.purestack import pure_hmac_sha256, pure_keystream_xor
from repro.crypto.rng import SecureRandom
from repro.crypto.suite import CipherSuite
from repro.errors import AuthenticationError, CryptoError

from tests.helpers import make_db


class TestPureHmac:
    def test_matches_hashlib_hmac(self):
        for key, message in [
            (b"k", b"m"),
            (b"a" * 100, b"data" * 50),
            (bytes(64), b""),
        ]:
            assert pure_hmac_sha256(key, message) == hmac_sha256(key, message)

    def test_rfc4231_case2(self):
        expected = bytes.fromhex(
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )
        assert pure_hmac_sha256(b"Jefe", b"what do ya want for nothing?") == expected

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            pure_hmac_sha256(b"", b"x")

    @settings(max_examples=30, deadline=None)
    @given(key=st.binary(min_size=1, max_size=100), msg=st.binary(max_size=150))
    def test_equivalence_property(self, key, msg):
        assert pure_hmac_sha256(key, msg) == hmac_sha256(key, msg)


class TestPureKeystream:
    def test_involution(self):
        data = b"some plaintext bytes" * 5
        once = pure_keystream_xor(b"key", b"nonce", data)
        assert once != data
        assert pure_keystream_xor(b"key", b"nonce", once) == data

    def test_nonce_separation(self):
        zeros = bytes(64)
        a = pure_keystream_xor(b"key", b"n1", zeros)
        b = pure_keystream_xor(b"key", b"n2", zeros)
        assert a != b

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            pure_keystream_xor(b"", b"n", b"x")


class TestPureSuiteBackend:
    def test_roundtrip(self):
        suite = CipherSuite(b"master", backend="pure", rng=SecureRandom(1))
        for payload in (b"", b"x", b"page payload" * 30):
            assert suite.decrypt_page(suite.encrypt_page(payload)) == payload

    def test_tamper_detection(self):
        suite = CipherSuite(b"master", backend="pure", rng=SecureRandom(2))
        frame = bytearray(suite.encrypt_page(b"secret"))
        frame[-1] ^= 1
        with pytest.raises(AuthenticationError):
            suite.decrypt_page(bytes(frame))

    def test_cross_backend_keystreams_differ(self):
        pure = CipherSuite(b"master", backend="pure", rng=SecureRandom(3))
        blake = CipherSuite(b"master", backend="blake2", rng=SecureRandom(3))
        frame = pure.encrypt_page(b"hello")
        # Identical HMAC construction means the tag verifies under the same
        # master key, but the keystreams differ, so the bytes come out wrong
        # — backends are a configuration, not an interop surface.
        assert blake.decrypt_page(frame) != b"hello"

    def test_full_database_on_pure_stack(self):
        """The whole system runs with zero stdlib crypto."""
        db = make_db(num_records=16, cache_capacity=2, block_size=4,
                     page_capacity=16, cipher_backend="pure", seed=4)
        from repro.baselines import make_records

        records = make_records(16, 16)
        for i in range(16):
            assert db.query(i) == records[i]
        db.consistency_check()
