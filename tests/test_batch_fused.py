"""Fused batch execution: byte-identity, error slots, faults, trace shape.

The fused path (``RetrievalEngine.run_batch``) serves a whole window of
operations from one physical scan of the round-robin block.  Its contract:
replies are *byte-identical* to running the same logical op sequence
through the serial per-op methods — the physical layout, RNG stream and
trace may differ, the logical content and every reply may not.
"""

from __future__ import annotations

import pytest

from repro.core.engine import BatchOp
from repro.core.journal import MemoryJournal
from repro.core.sharded import ShardedPirDatabase
from repro.errors import (
    CapacityError,
    ConfigurationError,
    PageDeletedError,
    PageNotFoundError,
    StorageError,
    TransientStorageError,
)
from repro.faults import (
    SITE_DISK_READ,
    SITE_DISK_WRITE,
    FaultInjector,
    FaultPlan,
    FaultyDiskStore,
    SimulatedCrash,
    transient_writes,
)
from repro.service.frontend import QueryFrontend, ServiceClient
from repro.service.protocol import Delete, Insert, Query, Refused, Result, Update

from tests.helpers import make_db
from tests.test_crash_recovery import build_db, faulty_factory, logical_state

SEED = 4242
NUM_RECORDS = 40


def twin_dbs(**options):
    """Two identical databases: one for serial replay, one for fusion."""
    kwargs = dict(num_records=NUM_RECORDS, cache_capacity=6,
                  reserve_fraction=0.25, seed=SEED)
    kwargs.update(options)
    return make_db(**kwargs), make_db(**kwargs)


def run_serial(db, ops):
    """Drive ``ops`` through the serial per-op methods, collecting slots."""
    results = []
    for op in ops:
        try:
            if op.kind == "query":
                results.append(db.query(op.page_id))
            elif op.kind == "update":
                results.append(db.update(op.page_id, op.payload))
            elif op.kind == "insert":
                results.append(db.insert(op.payload))
            elif op.kind == "delete":
                results.append(db.delete(op.page_id))
            else:
                results.append(db.touch())
        except Exception as exc:  # noqa: BLE001 - slots carry exceptions
            results.append(exc)
    return results


def assert_slots_equal(expected, got):
    assert len(expected) == len(got)
    for index, (want, have) in enumerate(zip(expected, got)):
        if isinstance(want, Exception):
            assert type(want) is type(have), f"slot {index}: {want!r} vs {have!r}"
            assert str(want) == str(have), f"slot {index}: {want!r} vs {have!r}"
        else:
            assert want == have, f"slot {index}: {want!r} vs {have!r}"


MIXED_OPS = [
    BatchOp("query", page_id=3),
    BatchOp("update", page_id=5, payload=b"fused"),
    BatchOp("query", page_id=5),
    BatchOp("delete", page_id=7),
    BatchOp("insert", payload=b"first insert"),
    BatchOp("touch"),
    BatchOp("query", page_id=7),           # deleted -> PageDeletedError slot
    BatchOp("delete", page_id=7),          # double delete -> PageNotFoundError
    BatchOp("query", page_id=0),
    BatchOp("insert", payload=b"second insert"),
    BatchOp("update", page_id=1, payload=b"x" * 16),
    BatchOp("query", page_id=1),
    BatchOp("query", page_id=10 ** 9),     # out of range -> PageNotFoundError
]


class TestByteIdentity:
    """Fused replies must match the serial loop's, slot for slot."""

    def test_all_five_op_kinds_match_serial(self):
        serial, fused = twin_dbs()
        expected = run_serial(serial, MIXED_OPS)
        got = fused.run_batch(MIXED_OPS)
        assert_slots_equal(expected, got)
        serial.consistency_check()
        fused.consistency_check()
        # The logical content (page_id -> payload/flags) converges too,
        # even though the physical layout legitimately differs.
        assert logical_state(serial) == logical_state(fused)

    def test_multi_window_batch_matches_serial(self):
        serial, fused = twin_dbs()
        k = fused.params.block_size
        ops = [BatchOp("query", page_id=i % NUM_RECORDS)
               for i in range(3 * k + 2)]
        assert_slots_equal(run_serial(serial, ops), fused.run_batch(ops))
        assert fused.engine.counters.get("batch.fused.windows") == 4
        assert fused.engine.request_count == serial.engine.request_count

    def test_insert_ids_deterministic_across_paths(self):
        serial, fused = twin_dbs()
        ops = [
            BatchOp("delete", page_id=11),
            BatchOp("delete", page_id=4),
            BatchOp("insert", payload=b"a"),   # reuses lowest free id
            BatchOp("insert", payload=b"b"),
        ]
        expected = run_serial(serial, ops)
        got = fused.run_batch(ops)
        assert_slots_equal(expected, got)
        assert got[2] == 4  # the lower freed id, chosen deterministically

    def test_interleaving_serial_and_fused_calls(self):
        serial, fused = twin_dbs()
        fused.update(9, b"warm")
        serial.update(9, b"warm")
        ops = [BatchOp("query", page_id=9), BatchOp("delete", page_id=9)]
        assert_slots_equal(run_serial(serial, ops), fused.run_batch(ops))
        with pytest.raises(PageDeletedError):
            fused.query(9)

    def test_explicit_window_size_and_validation(self):
        _, fused = twin_dbs()
        ops = [BatchOp("query", page_id=i) for i in range(6)]
        got = fused.run_batch(ops, window=2)
        assert fused.engine.counters.get("batch.fused.windows") == 3
        assert all(not isinstance(item, Exception) for item in got)
        with pytest.raises(ConfigurationError):
            fused.run_batch(ops, window=0)
        # An unknown op kind fails its slot, not the batch.
        bad = fused.run_batch([BatchOp("frobnicate"),
                               BatchOp("query", page_id=0)])
        assert isinstance(bad[0], ConfigurationError)
        assert not isinstance(bad[1], Exception)


class TestErrorSlots:
    """Failed slots must not poison their window's healthy neighbours."""

    def test_validation_failures_do_not_consume_requests(self):
        _, fused = twin_dbs()
        before = fused.engine.request_count
        got = fused.run_batch([
            BatchOp("query", page_id=10 ** 9),
            BatchOp("update", page_id=2, payload=b"z" * 10_000),
        ])
        assert isinstance(got[0], PageNotFoundError)
        assert isinstance(got[1], ConfigurationError)
        assert fused.engine.request_count == before
        assert fused.engine.counters.get("batch.fused.windows") == 0

    def test_mixed_window_serves_valid_slots(self):
        serial, fused = twin_dbs()
        ops = [
            BatchOp("query", page_id=10 ** 9),
            BatchOp("query", page_id=2),
            BatchOp("delete", page_id=10 ** 9),
            BatchOp("update", page_id=3, payload=b"ok"),
            BatchOp("query", page_id=3),
        ]
        assert_slots_equal(run_serial(serial, ops), fused.run_batch(ops))
        # Only the three valid ops consumed requests.
        assert fused.engine.counters.get("batch.fused.ops") == 3

    def test_insert_capacity_error_slot(self):
        # No reserve: the free pool is only round-up padding; exhaust it.
        _, fused = twin_dbs(reserve_fraction=0.0)
        free = len(fused.cop.page_map.free_ids())
        ops = [BatchOp("insert", payload=b"x")] * (free + 2)
        got = fused.run_batch(ops)
        assert all(isinstance(item, int) for item in got[:free])
        assert all(isinstance(item, CapacityError) for item in got[free:])
        fused.consistency_check()


class TestFusedUnderFaults:
    """Window-grained failure isolation, healing, and crash recovery."""

    def _faulted_db(self, plans, journal=None):
        injector = FaultInjector(0)
        db = build_db(journal=journal, injector=injector)
        for plan in plans:
            injector.add(plan)
        return db

    def test_read_fault_fails_only_its_window(self):
        k = build_db().params.block_size
        db = self._faulted_db(
            [FaultPlan(SITE_DISK_READ, "transient", times=1)]
        )
        ops = [BatchOp("query", page_id=i) for i in range(2 * k)]
        got = db.run_batch(ops)
        # First window aborted cleanly before any state change ...
        assert all(isinstance(item, TransientStorageError)
                   for item in got[:k])
        # ... the second executed normally.
        reference = build_db()
        for index in range(k, 2 * k):
            assert got[index] == reference.query(index)
        assert db.engine.counters.get("batch.fused.windows") == 1
        db.consistency_check()

    def test_write_fault_rolls_window_forward(self):
        journal = MemoryJournal()
        db = self._faulted_db([transient_writes(times=1)], journal=journal)
        ops = [
            BatchOp("update", page_id=5, payload=b"torn batch"),
            BatchOp("delete", page_id=7),
            BatchOp("insert", payload=b"survives"),
        ]
        got = db.run_batch(ops)
        assert all(isinstance(item, TransientStorageError) for item in got)
        assert db.engine.write_back_pending
        assert journal.read() is not None

        # The next batch heals the whole torn window first — all three ops
        # committed atomically — then serves its own ops.  (The insert
        # recycled the id freed by the in-window delete, exactly as the
        # serial path would: lowest free id wins.)
        follow_up = db.run_batch([
            BatchOp("query", page_id=5),
            BatchOp("query", page_id=7),
        ])
        assert follow_up[0] == b"torn batch"
        assert follow_up[1] == b"survives"
        assert db.engine.counters.get("recovery.rolled_forward") == 1
        assert not db.engine.write_back_pending
        assert journal.read() is None
        db.consistency_check()

    def test_crash_mid_window_recovers_whole_window(self):
        k = build_db().params.block_size
        journal = MemoryJournal()
        # Wrap the disk *after* setup so the crash threshold counts only
        # request-time frames (the injector's frame counter is cumulative).
        db = build_db(journal=journal)
        injector = FaultInjector(
            0, [FaultPlan(SITE_DISK_WRITE, "crash", after=k // 2)]
        )
        db.engine.disk = FaultyDiskStore(db.engine.disk, injector)
        ops = [
            BatchOp("update", page_id=5, payload=b"crashed window"),
            BatchOp("delete", page_id=7),
            BatchOp("query", page_id=3),
        ]
        with pytest.raises(SimulatedCrash):
            db.run_batch(ops)
        # "Restart": unwrap the faulty store, then roll the journal forward.
        db.engine.disk = db.engine.disk.inner
        report = db.recover()
        assert report.action == "replayed"
        assert db.engine.request_count == 3
        assert db.query(5) == b"crashed window"
        with pytest.raises(PageDeletedError):
            db.query(7)
        db.consistency_check()

    def test_fused_after_serial_write_fault_heals_first(self):
        journal = MemoryJournal()
        db = self._faulted_db([transient_writes(times=1)], journal=journal)
        with pytest.raises(TransientStorageError):
            db.update(5, b"serial torn")
        assert db.engine.write_back_pending
        got = db.run_batch([BatchOp("query", page_id=5)])
        assert got[0] == b"serial torn"
        assert db.engine.counters.get("recovery.rolled_forward") == 1
        db.consistency_check()


class TestWindowTraceShape:
    """The fused window trace must not depend on the op mix it serves."""

    def _window_shape(self, ops):
        db = make_db(num_records=NUM_RECORDS, cache_capacity=6,
                     reserve_fraction=0.25, seed=SEED)
        base_index = db.engine.request_count
        results = db.run_batch(ops)
        assert not any(isinstance(item, Exception) for item in results)
        assert db.engine.counters.get("batch.fused.windows") == 1
        return db.trace.request_shape(base_index)

    def test_shape_independent_of_op_types(self):
        k = make_db(num_records=NUM_RECORDS).params.block_size
        assert k >= 5
        mixes = [
            [BatchOp("query", page_id=i) for i in range(5)],
            [
                BatchOp("update", page_id=2, payload=b"u"),
                BatchOp("delete", page_id=9),
                BatchOp("insert", payload=b"i"),
                BatchOp("touch"),
                BatchOp("query", page_id=3),
            ],
            [BatchOp("touch") for _ in range(5)],
        ]
        shapes = [self._window_shape(mix) for mix in mixes]
        assert shapes[0] == shapes[1] == shapes[2]

    def test_reads_collapse_to_one_block_scan(self):
        db = make_db(num_records=NUM_RECORDS, cache_capacity=6,
                     reserve_fraction=0.25, seed=SEED)
        k = db.params.block_size
        n = k  # one full window
        db.run_batch([BatchOp("query", page_id=i) for i in range(n)])
        counters = db.engine.counters
        assert counters.get("batch.fused.block_reads") == 1
        assert counters.get("batch.fused.extra_reads") == n
        # The serial loop would read n * (k + 1) frames; the fused window
        # reads k + n.  The counter records exactly that collapse.
        assert counters.get("batch.fused.reads_saved") == n * (k + 1) - (k + n)


class TestShardedFusedBatch:
    def _twin_sharded(self):
        from repro.baselines import make_records

        records = make_records(NUM_RECORDS, 16)
        kwargs = dict(cache_capacity_per_shard=4, target_c=2.0,
                      page_capacity=16, reserve_fraction=0.25, seed=77)
        return (
            ShardedPirDatabase.create(records, 4, parallel=False, **kwargs),
            ShardedPirDatabase.create(records, 4, parallel=True, **kwargs),
        )

    def test_sharded_batch_matches_serial_methods(self):
        serial, fused = self._twin_sharded()
        try:
            ops = MIXED_OPS[:-1]  # same mix, minus the out-of-range probe
            expected = run_serial(serial, ops)
            got = fused.run_batch(ops)
            assert_slots_equal(expected, got)
            # Inserted global ids route identically afterwards.
            inserted = [item for item in got if isinstance(item, int)]
            for global_id in inserted:
                assert fused.query(global_id) == serial.query(global_id)
            serial.consistency_check()
            fused.consistency_check()
            # Cover traffic keeps per-shard request streams equal-length.
            counts = fused.shard_request_counts()
            assert len(set(counts)) == 1
        finally:
            serial.close()
            fused.close()

    def test_sharded_batch_tombstones_inside_batch(self):
        serial, fused = self._twin_sharded()
        try:
            ops = [
                BatchOp("delete", page_id=22),
                BatchOp("insert", payload=b"recycles the slot"),
                BatchOp("query", page_id=22),   # must NOT alias the insert
                BatchOp("delete", page_id=22),  # tombstoned -> deleted error
            ]
            assert_slots_equal(run_serial(serial, ops), fused.run_batch(ops))
        finally:
            serial.close()
            fused.close()


class TestFrontendFusedBatch:
    def _frontend(self, **options):
        return QueryFrontend(
            make_db(num_records=NUM_RECORDS, reserve_fraction=0.25,
                    seed=SEED),
            **options,
        )

    def test_fused_and_serial_frontends_agree(self):
        from repro.baselines import make_records

        records = make_records(NUM_RECORDS, 16)
        # Insert precedes the delete so it takes a reserve slot instead of
        # recycling page 4 — the query of the deleted page must refuse.
        batch = [Query(2), Update(3, b"new"), Query(3), Insert(b"ins"),
                 Delete(4), Query(4), Query(10 ** 9)]
        fused_client = ServiceClient(self._frontend())
        serial_client = ServiceClient(
            self._frontend(fused_batches=False)
        )
        fused_replies = fused_client.batch(list(batch))
        serial_replies = serial_client.batch(list(batch))
        assert fused_replies == serial_replies
        assert fused_replies[0] == Result(2, records[2])
        assert fused_replies[3].payload == b"ins"
        assert isinstance(fused_replies[5], Refused)
        assert fused_replies[5].code == "deleted"
        assert isinstance(fused_replies[6], Refused)
        assert fused_replies[6].code == "not-found"

    def test_fused_path_counters(self):
        frontend = self._frontend()
        client = ServiceClient(frontend)
        client.batch([Query(0), Query(1), Query(2)])
        assert frontend.counters.get("batch.requests") == 1
        assert frontend.counters.get("batch.fused.requests") == 1
        assert frontend.counters.get("batch.ops") == 3
        engine = frontend.database.engine
        assert engine.counters.get("batch.fused.windows") == 1
        assert engine.counters.get("batch.fused.ops") == 3

    def test_fused_disabled_keeps_serial_loop(self):
        frontend = self._frontend(fused_batches=False)
        client = ServiceClient(frontend)
        client.batch([Query(0), Query(1)])
        assert frontend.counters.get("batch.fused.requests") == 0
        assert frontend.database.engine.counters.get(
            "batch.fused.windows") == 0
