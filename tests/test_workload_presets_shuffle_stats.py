"""YCSB-style preset mixes + statistical tests of the oblivious shuffle."""

from __future__ import annotations

import pytest

from repro.analysis.stats import chi_square_test
from repro.crypto.rng import SecureRandom
from repro.crypto.suite import CipherSuite
from repro.errors import ConfigurationError
from repro.shuffle.oblivious import ObliviousShuffler
from repro.sim.clock import VirtualClock
from repro.storage.disk import DiskStore
from repro.storage.page import Page
from repro.workload import WORKLOAD_PRESETS, preset_stream, replay_trace

from tests.helpers import make_db


class TestPresets:
    def test_presets_cover_ycsb_letters(self):
        assert set(WORKLOAD_PRESETS) == {"A", "B", "C", "D", "E"}
        for mix in WORKLOAD_PRESETS.values():
            assert abs(sum(mix) - 1.0) < 1e-12

    def test_preset_c_is_read_only(self):
        stream = preset_stream("C", 30, 200, SecureRandom(1))
        assert all(op.kind == "query" for op in stream)

    def test_preset_a_update_heavy(self):
        stream = preset_stream("A", 30, 1000, SecureRandom(2))
        updates = sum(1 for op in stream if op.kind == "update")
        assert 0.4 < updates / len(stream) < 0.6

    def test_preset_runs_against_database(self):
        db = make_db(num_records=30, reserve_fraction=0.3, seed=901)
        stream = preset_stream("E", 30, 80, SecureRandom(3))
        counters = replay_trace(db, stream)
        assert counters.get("query") > 0
        db.consistency_check()

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            preset_stream("Z", 10, 5, SecureRandom(1))


class TestShuffleUniformity:
    def test_landing_positions_pass_chi_square(self):
        """Where page 0 lands, across many seeds, must be uniform over the
        n slots (the property Definition 1 inherits from setup)."""
        n, rounds = 8, 640
        counts = [0] * n
        for seed in range(rounds):
            suite = CipherSuite(b"x", backend="null", rng=SecureRandom(seed))
            shuffler = ObliviousShuffler(suite, SecureRandom(10**6 + seed), 0)
            disk = DiskStore(n, shuffler.tagged_frame_size,
                             clock=VirtualClock())
            layout = shuffler.shuffle([Page(i) for i in range(n)], disk)
            counts[layout.index(0)] += 1
        result = chi_square_test(counts, [1.0 / n] * n)
        assert not result.rejects_at(0.001), (counts, result.p_value)

    def test_pairwise_independence_coarse(self):
        """Pages 0 and 1 should not land adjacently more often than chance."""
        n, rounds = 8, 400
        adjacent = 0
        for seed in range(rounds):
            suite = CipherSuite(b"x", backend="null",
                                rng=SecureRandom(5000 + seed))
            shuffler = ObliviousShuffler(suite, SecureRandom(9000 + seed), 0)
            disk = DiskStore(n, shuffler.tagged_frame_size,
                             clock=VirtualClock())
            layout = shuffler.shuffle([Page(i) for i in range(n)], disk)
            if abs(layout.index(0) - layout.index(1)) == 1:
                adjacent += 1
        # P(adjacent) = 2*(n-1)/(n*(n-1)) = 2/n = 0.25; allow wide noise band.
        share = adjacent / rounds
        assert 0.15 < share < 0.35, share
