"""Spatial grid + the private index wrappers over PirDatabase."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import SecureRandom
from repro.errors import IndexError_
from repro.index.grid import (
    NO_CELL,
    GridBuilder,
    GridGeometry,
    GridIndex,
    SpatialPoint,
    decode_cell,
    encode_cell,
)
from repro.index.private_index import PrivateKeyValueStore, PrivateSpatialStore


def _random_points(count, seed=1, span=100.0):
    rng = SecureRandom(seed)
    return [
        SpatialPoint(rng.random() * span, rng.random() * span, f"p{i}".encode())
        for i in range(count)
    ]


class TestCellCodec:
    def test_roundtrip(self):
        points = [SpatialPoint(1.5, -2.25, b"abc"), SpatialPoint(0.0, 9.0)]
        decoded, next_page = decode_cell(encode_cell(points))
        assert decoded == points
        assert next_page == NO_CELL

    def test_chain_pointer_roundtrip(self):
        decoded, next_page = decode_cell(encode_cell([], next_page=42))
        assert decoded == [] and next_page == 42

    def test_empty_cell(self):
        assert decode_cell(encode_cell([]))[0] == []

    def test_truncated(self):
        with pytest.raises(IndexError_):
            decode_cell(b"\x00" * 9)


class TestGeometry:
    GEOMETRY = GridGeometry(0.0, 0.0, 10.0, 10.0, 5, 5)

    def test_cell_of_interior(self):
        assert self.GEOMETRY.cell_of(0.5, 0.5) == (0, 0)
        assert self.GEOMETRY.cell_of(9.9, 9.9) == (4, 4)
        assert self.GEOMETRY.cell_of(5.0, 3.0) == (2, 1)

    def test_cell_of_clamps_outside(self):
        assert self.GEOMETRY.cell_of(-5, 50) == (0, 4)

    def test_page_mapping_row_major(self):
        assert self.GEOMETRY.page_of(0, 0) == 0
        assert self.GEOMETRY.page_of(4, 0) == 4
        assert self.GEOMETRY.page_of(0, 1) == 5

    def test_cell_dimensions(self):
        assert self.GEOMETRY.cell_width == pytest.approx(2.0)
        assert self.GEOMETRY.cell_height == pytest.approx(2.0)


class TestGridBuilder:
    def test_all_points_stored(self):
        points = _random_points(80)
        payloads, geometry = GridBuilder(512).build(points)
        assert len(payloads) >= geometry.cells_x * geometry.cells_y
        stored = [
            p for payload in payloads for p in decode_cell(payload)[0]
        ]
        assert sorted(p.label for p in stored) == sorted(p.label for p in points)

    def test_cells_respect_capacity(self):
        payloads, _g = GridBuilder(256).build(_random_points(100))
        assert all(len(p) <= 256 for p in payloads)

    def test_refines_until_fits(self):
        # A dense (but separable) strip forces a finer grid than the initial
        # square-root guess.
        strip = [SpatialPoint(i * 0.2, 1.0, b"x") for i in range(60)]
        spread = _random_points(20, seed=2)
        payloads, geometry = GridBuilder(600).build(strip + spread)
        initial_guess = max(1, math.isqrt(len(strip + spread) // 4))
        assert geometry.cells_x > initial_guess
        assert all(len(p) <= 600 for p in payloads)

    def test_clustered_points_chain_instead_of_failing(self):
        """Inseparable density used to abort the build; it now chains."""
        # Identical coordinates: no resolution can ever separate them.
        cluster = [SpatialPoint(1.0, 1.0, f"c{i}".encode())
                   for i in range(50)]
        payloads, geometry = GridBuilder(200).build(cluster,
                                                    max_cells=4)
        assert len(payloads) > geometry.cells_x * geometry.cells_y
        assert all(len(p) <= 200 for p in payloads)
        # All points recoverable by walking chains from the heads.
        seen = []
        for head in range(geometry.cells_x * geometry.cells_y):
            page_id = head
            while page_id != NO_CELL:
                chunk, page_id = decode_cell(payloads[page_id])
                seen.extend(chunk)
        assert sorted(p.label for p in seen) == sorted(
            p.label for p in cluster
        )

    def test_knn_over_chained_cells(self):
        cluster = [SpatialPoint(5.0 + i * 1e-6, 5.0, f"c{i}".encode())
                   for i in range(40)]
        outlier = SpatialPoint(90.0, 90.0, b"far")
        points = cluster + [outlier]
        payloads, geometry = GridBuilder(256).build(points, max_cells=2)
        index = GridIndex(lambda pid: payloads[pid], geometry)
        distance, nearest = index.knn(5.0, 5.0, 1)[0]
        expected = min(points, key=lambda p: p.distance_to(5.0, 5.0))
        assert nearest.label == expected.label
        assert index.knn(89.0, 89.0, 1)[0][1].label == b"far"

    def test_oversized_single_point_rejected(self):
        with pytest.raises(IndexError_):
            GridBuilder(32).build([SpatialPoint(0, 0, b"L" * 100)])

    def test_empty_rejected(self):
        with pytest.raises(IndexError_):
            GridBuilder(256).build([])


class TestGridKnn:
    def _index(self, points, capacity=512):
        payloads, geometry = GridBuilder(capacity).build(points)
        return GridIndex(lambda pid: payloads[pid], geometry)

    def test_nearest_matches_brute_force(self):
        points = _random_points(120, seed=3)
        index = self._index(points)
        for qx, qy in ((50, 50), (0, 0), (99, 1), (25, 75)):
            expected = min(points, key=lambda p: p.distance_to(qx, qy))
            got = index.knn(qx, qy, 1)[0][1]
            assert got.label == expected.label, (qx, qy)

    def test_knn_matches_brute_force(self):
        points = _random_points(150, seed=4)
        index = self._index(points)
        for k in (1, 3, 7):
            expected = sorted(points, key=lambda p: p.distance_to(40, 60))[:k]
            got = [p.label for _d, p in index.knn(40, 60, k)]
            assert got == [p.label for p in expected], k

    def test_distances_ascending(self):
        index = self._index(_random_points(100, seed=5))
        distances = [d for d, _p in index.knn(10, 10, 5)]
        assert distances == sorted(distances)

    def test_k_larger_than_population(self):
        points = _random_points(4, seed=6)
        index = self._index(points)
        assert len(index.knn(50, 50, 10)) == 4

    def test_invalid_k(self):
        index = self._index(_random_points(10, seed=7))
        with pytest.raises(IndexError_):
            index.knn(0, 0, 0)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        qx=st.floats(min_value=0, max_value=100),
        qy=st.floats(min_value=0, max_value=100),
    )
    def test_nearest_property(self, seed, qx, qy):
        points = _random_points(60, seed=seed)
        index = self._index(points)
        got_distance = index.knn(qx, qy, 1)[0][0]
        expected = min(p.distance_to(qx, qy) for p in points)
        assert math.isclose(got_distance, expected)


class TestPrivateWrappers:
    def test_private_kv_store(self):
        items = [(i * 2, f"row{i}".encode()) for i in range(150)]
        store = PrivateKeyValueStore.create(
            items, cache_capacity=8, page_capacity=128, seed=41
        )
        assert store.get(4) == b"row2"
        assert store.get(5) is None
        assert store.range(10, 20) == [(k, v) for k, v in items if 10 <= k <= 20]
        assert store.retrievals >= store.height  # at least one descent

    def test_private_kv_cost_estimate(self):
        from repro.hardware.specs import HardwareSpec

        items = [(i, bytes(4)) for i in range(100)]
        store = PrivateKeyValueStore.create(
            items, cache_capacity=8, page_capacity=128, seed=42,
            spec=HardwareSpec(),
        )
        assert store.query_cost_estimate() > 0

    def test_private_spatial_store(self):
        points = _random_points(90, seed=43)
        store = PrivateSpatialStore.create(
            points, cache_capacity=8, page_capacity=512, seed=44
        )
        distance, nearest = store.nearest(30, 30)
        expected = min(points, key=lambda p: p.distance_to(30, 30))
        assert nearest.label == expected.label
        assert distance == pytest.approx(expected.distance_to(30, 30))
        assert store.retrievals > 0

    def test_spatial_invalid_k(self):
        store = PrivateSpatialStore.create(
            _random_points(20, seed=45), cache_capacity=8, page_capacity=512,
            seed=46,
        )
        with pytest.raises(IndexError_):
            store.knn(0, 0, 0)

    def test_private_queries_leave_uniform_trace(self):
        """Index traversals are just page queries: trace stays uniform."""
        from repro.storage.trace import shapes_identical

        items = [(i, bytes(4)) for i in range(120)]
        store = PrivateKeyValueStore.create(
            items, cache_capacity=8, page_capacity=128, seed=47
        )
        store.get(13)
        store.range(5, 25)
        assert shapes_identical(store.database.trace, 0)
