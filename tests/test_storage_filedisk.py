"""File-backed untrusted page store."""

from __future__ import annotations

import os

import pytest

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.errors import ConfigurationError, StorageError
from repro.storage.filedisk import (
    SYNC_ALWAYS,
    SYNC_NEVER,
    SYNC_ON_FLUSH,
    FileDiskStore,
)
from repro.storage.timing import DiskTimingModel
from repro.storage.trace import READ


class TestFileDiskStore:
    def _store(self, tmp_path, n=16, frame=8):
        return FileDiskStore(str(tmp_path / "pages.bin"), n, frame)

    def test_write_then_read(self, tmp_path):
        with self._store(tmp_path) as disk:
            disk.write(3, b"ABCDEFGH")
            assert disk.read(3) == b"ABCDEFGH"

    def test_range_roundtrip(self, tmp_path):
        with self._store(tmp_path) as disk:
            frames = [bytes([i]) * 8 for i in range(5)]
            disk.write_range(4, frames)
            assert disk.read_range(4, 5) == frames

    def test_unwritten_location_rejected(self, tmp_path):
        with self._store(tmp_path) as disk:
            disk.write(0, bytes(8))
            with pytest.raises(StorageError):
                disk.read(1)

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "pages.bin"
        with FileDiskStore(str(path), 8, 8) as disk:
            disk.write_range(0, [bytes([i]) * 8 for i in range(8)])
        reopened = FileDiskStore(str(path), 8, 8)
        # The written-bitmap is not persisted, but peek still sees the bytes.
        assert os.path.getsize(path) == 64
        reopened.close()

    def test_bounds_and_frame_size(self, tmp_path):
        with self._store(tmp_path) as disk:
            with pytest.raises(StorageError):
                disk.write(16, bytes(8))
            with pytest.raises(StorageError):
                disk.write(0, bytes(7))
            with pytest.raises(StorageError):
                disk.peek(99)

    def test_trace_and_timing(self, tmp_path):
        disk = FileDiskStore(
            str(tmp_path / "pages.bin"), 16, 8,
            timing=DiskTimingModel(seek_time=0.01, read_bandwidth=800,
                                   write_bandwidth=800),
        )
        disk.write_range(0, [bytes(8)] * 2)
        assert disk.clock.now == pytest.approx(0.03)
        disk.read_range(0, 2)
        assert disk.clock.now == pytest.approx(0.06)
        assert [e.op for e in disk.trace] == ["write", READ]
        disk.close()

    def test_peek_unwritten_is_none(self, tmp_path):
        with self._store(tmp_path) as disk:
            assert disk.peek(5) is None

    def test_initialised_locations(self, tmp_path):
        with self._store(tmp_path) as disk:
            disk.write_range(2, [bytes(8)] * 3)
            assert disk.initialised_locations() == 3

    def test_request_combined_calls(self, tmp_path):
        with self._store(tmp_path) as disk:
            disk.write_range(0, [bytes([i]) * 8 for i in range(16)])
            frames, extra = disk.read_request(0, 4, 9)
            assert frames == [bytes([i]) * 8 for i in range(4)]
            assert extra == bytes([9]) * 8


class TestSyncPolicyAndClose:
    def test_default_policy_is_on_flush(self, tmp_path):
        disk = FileDiskStore(str(tmp_path / "p.bin"), 4, 8)
        assert disk.sync_policy == SYNC_ON_FLUSH
        disk.close()

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FileDiskStore(str(tmp_path / "p.bin"), 4, 8, sync_policy="eventually")

    def test_all_policies_write_and_read(self, tmp_path):
        for policy in (SYNC_ALWAYS, SYNC_ON_FLUSH, SYNC_NEVER):
            path = str(tmp_path / f"{policy}.bin")
            with FileDiskStore(path, 4, 8, sync_policy=policy) as disk:
                disk.write_range(0, [b"\xaa" * 8, b"\xbb" * 8])
                assert disk.read_range(0, 2) == [b"\xaa" * 8, b"\xbb" * 8]

    def test_sync_always_fsyncs_every_write(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        disk = FileDiskStore(str(tmp_path / "p.bin"), 4, 8,
                             sync_policy=SYNC_ALWAYS)
        disk.write_range(0, [b"\x01" * 8])
        disk.write_range(1, [b"\x02" * 8])
        assert len(synced) == 2
        disk.close()  # flush() fsyncs once more
        assert len(synced) == 3

    def test_sync_never_skips_fsync(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        disk = FileDiskStore(str(tmp_path / "p.bin"), 4, 8,
                             sync_policy=SYNC_NEVER)
        disk.write_range(0, [b"\x01" * 8])
        disk.flush()
        disk.close()
        assert synced == []

    def test_close_is_idempotent(self, tmp_path):
        disk = FileDiskStore(str(tmp_path / "p.bin"), 4, 8)
        disk.write_range(0, [b"\x01" * 8])
        disk.close()
        disk.close()
        disk.close()

    def test_context_manager_after_explicit_close(self, tmp_path):
        with FileDiskStore(str(tmp_path / "p.bin"), 4, 8) as disk:
            disk.write_range(0, [b"\x01" * 8])
            disk.close()
        # __exit__ closed an already-closed store without raising; the
        # frames made it to the file.
        with open(tmp_path / "p.bin", "rb") as handle:
            assert handle.read(8) == b"\x01" * 8


class TestPirDatabaseOnFileDisk:
    def test_full_system_over_real_file(self, tmp_path):
        records = make_records(32, 16)

        def factory(num_locations, frame_size, timing, clock, trace):
            return FileDiskStore(
                str(tmp_path / "db.bin"), num_locations, frame_size,
                timing=timing, clock=clock, trace=trace,
            )

        db = PirDatabase.create(
            records, cache_capacity=4, block_size=4, page_capacity=16,
            seed=3, disk_factory=factory,
        )
        for step in range(100):
            page_id = (step * 7) % 32
            assert db.query(page_id) == records[page_id]
        db.update(3, b"on real disk")
        assert db.query(3) == b"on real disk"
        db.consistency_check()
        assert os.path.getsize(tmp_path / "db.bin") == (
            db.params.num_locations * db.cop.frame_size
        )
