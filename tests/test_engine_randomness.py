"""Statistical tests of the engine's security-critical random choices.

The privacy analysis assumes three draws are uniform: the in-block slot r
(line 17), the cache victim s (line 19), and the random extra page (lines
3-5, uniform over eligible pages).  These tests chi-square each of them on
the executed engine — if an implementation bug biased any draw, the
c-approximate bound would silently degrade, so this is the security test
that matters most.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import chi_square_test
from repro.crypto.rng import SecureRandom

from tests.helpers import make_db


@pytest.fixture(scope="module")
def driven_db_and_outcomes():
    db = make_db(num_records=40, cache_capacity=8, target_c=2.0,
                 page_capacity=16, reserve_fraction=0.2,
                 cipher_backend="null", trace_enabled=False, seed=4242)
    rng = SecureRandom(99)
    outcomes = []
    extra_ids = []
    pm = db.cop.page_map
    for _ in range(3000):
        db.query(rng.randrange(40))
        outcome = db.engine.last_outcome
        outcomes.append(outcome)
        # Recover the extra page's identity from its (post-request) state:
        # the page that was at extra_location was either the target (now
        # cached) or got displaced; instead track location-level uniformity.
        extra_ids.append(outcome.extra_location)
    return db, outcomes, extra_ids


class TestBlockSlotUniformity:
    def test_relocation_slot_r_is_uniform(self, driven_db_and_outcomes):
        db, outcomes, _ = driven_db_and_outcomes
        k = db.params.block_size
        counts = [0] * k
        for outcome in outcomes:
            counts[outcome.block_slot] += 1
        result = chi_square_test(counts, [1.0 / k] * k)
        assert not result.rejects_at(0.001), (counts, result)


class TestVictimUniformity:
    def test_cache_victim_s_is_uniform(self, driven_db_and_outcomes):
        db, outcomes, _ = driven_db_and_outcomes
        m = db.params.cache_capacity
        counts = [0] * m
        for outcome in outcomes:
            counts[outcome.victim_slot] += 1
        result = chi_square_test(counts, [1.0 / m] * m)
        assert not result.rejects_at(0.001), (counts, result)


class TestExtraLocationCoverage:
    def test_extra_reads_spread_over_the_disk(self, driven_db_and_outcomes):
        """The extra read's location must not concentrate anywhere: over a
        long run, every disk location should be the extra read occasionally.

        Not exactly uniform per-request (the extra is the *target's current
        location* on misses and a random non-cached page on hits, and the
        in-current-block exclusion carves out a rotating window), so this
        is a coverage + no-hotspot check rather than a strict chi-square.
        """
        db, _, extra_locations = driven_db_and_outcomes
        n = db.params.num_locations
        counts = [0] * n
        for location in extra_locations:
            counts[location] += 1
        covered = sum(1 for c in counts if c > 0)
        assert covered >= 0.95 * n
        mean = len(extra_locations) / n
        assert max(counts) < 5 * mean, max(counts)


class TestDeterminism:
    def test_same_seed_same_observable_trace(self):
        def run(seed):
            db = make_db(num_records=30, seed=seed, cipher_backend="null")
            for i in range(40):
                db.query(i % 30)
            return [
                (e.op, e.location, e.count) for e in db.trace
            ]

        assert run(777) == run(777)
        assert run(777) != run(778)

    def test_rng_stream_isolation_between_components(self):
        """Cache RNG is spawned from the master seed; consuming engine
        randomness must not shift the setup permutation."""
        a = make_db(num_records=30, seed=55)
        b = make_db(num_records=30, seed=55)
        a.touch()  # consumes engine randomness on a only
        # Underlying layouts were identical at creation:
        matching = sum(
            1 for i in range(b.disk.num_locations)
            if a.disk.peek(i) == b.disk.peek(i)
        )
        # a.touch() rewrote one block + one extra; everything else matches.
        rewritten = a.params.block_size + 1
        assert matching >= b.disk.num_locations - rewritten - 1
