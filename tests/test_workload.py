"""Workload generators: ranges, skew, locality, operation mixes."""

from __future__ import annotations

import pytest

from repro.crypto.rng import SecureRandom
from repro.errors import ConfigurationError
from repro.workload import (
    Operation,
    ZipfSampler,
    hotspot_stream,
    markov_stream,
    operation_stream,
    sequential_stream,
    uniform_stream,
    zipf_stream,
)


class TestUniform:
    def test_in_range(self):
        stream = uniform_stream(50, 500, SecureRandom(1))
        assert len(stream) == 500
        assert all(0 <= x < 50 for x in stream)

    def test_covers_space(self):
        stream = uniform_stream(10, 500, SecureRandom(2))
        assert set(stream) == set(range(10))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_stream(0, 5, SecureRandom(1))
        with pytest.raises(ConfigurationError):
            uniform_stream(5, -1, SecureRandom(1))


class TestZipf:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(100, 0.9)
        total = sum(sampler.probability(i) for i in range(100))
        assert total == pytest.approx(1.0)

    def test_rank_zero_hottest(self):
        sampler = ZipfSampler(100, 1.0)
        assert sampler.probability(0) > sampler.probability(1) > sampler.probability(50)

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0)
        for i in range(10):
            assert sampler.probability(i) == pytest.approx(0.1)

    def test_stream_skew(self):
        stream = zipf_stream(100, 3000, SecureRandom(3), theta=1.1)
        top_share = sum(1 for x in stream if x < 10) / len(stream)
        assert top_share > 0.5  # hot head dominates

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, -1.0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, 1.0).probability(10)


class TestSequentialAndHotspot:
    def test_sequential_wraps(self):
        assert sequential_stream(5, 7, start=3) == [3, 4, 0, 1, 2, 3, 4]

    def test_hotspot_fractions(self):
        stream = hotspot_stream(100, 4000, SecureRandom(4),
                                hot_fraction=0.1, hot_probability=0.9)
        hot_share = sum(1 for x in stream if x < 10) / len(stream)
        assert 0.85 < hot_share < 0.95

    def test_hotspot_validation(self):
        with pytest.raises(ConfigurationError):
            hotspot_stream(10, 5, SecureRandom(1), hot_fraction=0)
        with pytest.raises(ConfigurationError):
            hotspot_stream(10, 5, SecureRandom(1), hot_probability=2)


class TestMarkov:
    def test_in_range(self):
        stream = markov_stream(30, 300, SecureRandom(5))
        assert all(0 <= x < 30 for x in stream)

    def test_locality_visible(self):
        stream = markov_stream(1000, 2000, SecureRandom(6),
                               locality=0.95, window=2)
        small_steps = sum(
            1 for a, b in zip(stream, stream[1:])
            if min(abs(b - a), 1000 - abs(b - a)) <= 2
        )
        assert small_steps / (len(stream) - 1) > 0.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            markov_stream(10, 5, SecureRandom(1), locality=1.5)
        with pytest.raises(ConfigurationError):
            markov_stream(10, 5, SecureRandom(1), window=0)


class TestOperationStream:
    def test_kinds_and_mix(self):
        operations = operation_stream(50, 1000, SecureRandom(7))
        kinds = {op.kind for op in operations}
        assert kinds <= {"query", "update", "insert", "delete"}
        queries = sum(1 for op in operations if op.kind == "query")
        assert 0.6 < queries / len(operations) < 0.8

    def test_payloads_present_where_needed(self):
        for op in operation_stream(20, 200, SecureRandom(8)):
            if op.kind in ("update", "insert"):
                assert op.payload is not None
            if op.kind in ("query", "update", "delete"):
                assert op.page_id is not None

    def test_no_double_deletes_from_generator(self):
        operations = operation_stream(30, 400, SecureRandom(9),
                                      mix=(0.3, 0.1, 0.1, 0.5))
        deleted = set()
        for op in operations:
            if op.kind == "delete":
                assert op.page_id not in deleted
                deleted.add(op.page_id)

    def test_bad_mix(self):
        with pytest.raises(ConfigurationError):
            operation_stream(10, 5, SecureRandom(1), mix=(1.0, 0.5, 0.0, 0.0))
        with pytest.raises(ConfigurationError):
            operation_stream(10, 5, SecureRandom(1), mix=(1.0, 0.0, 0.0))

    def test_bad_operation_kind(self):
        with pytest.raises(ConfigurationError):
            Operation("compact")
