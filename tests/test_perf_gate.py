"""End-to-end tests of the perf-gate pipeline and the metrics CLI.

Drives ``benchmarks/bench_engine.py`` (script mode) and
``benchmarks/compare_bench.py`` in-process with a small pinned workload:
clean run vs. clean run passes, a synthetic phase slowdown fails, and
incomparable metas are rejected.  Also exercises ``python -m repro
metrics`` end to end.
"""

from __future__ import annotations

import json
import sys
from os import path

import pytest

from repro import cli
from repro.obs import read_jsonl, rows_by_kind

_BENCHMARKS = path.join(path.dirname(__file__), "..", "benchmarks")
if _BENCHMARKS not in sys.path:
    sys.path.insert(0, _BENCHMARKS)

import bench_engine  # noqa: E402
import compare_bench  # noqa: E402

QUERIES = "30"
SEED = "7"


def run_bench(out, *extra):
    argv = ["--queries", QUERIES, "--seed", SEED, "--out", str(out)]
    argv.extend(extra)
    assert bench_engine.main(argv) == 0


class TestBenchEngineScript:
    def test_emits_meta_and_phase_rows(self, tmp_path):
        out = tmp_path / "run.jsonl"
        run_bench(out)
        rows = read_jsonl(str(out))
        metas = rows_by_kind(rows, "meta")
        assert len(metas) == 1
        meta = metas[0]
        assert meta["queries"] == 30
        assert meta["seed"] == 7
        assert meta["calibration_s"] > 0.0
        phases = rows_by_kind(rows, "phase")
        names = {row["name"] for row in phases}
        assert {"request", "decrypt", "reencrypt", "write_back"} <= names
        request = next(r for r in phases if r["name"] == "request")
        assert request["count"] == 30
        assert request["errors"] == 0

    def test_deterministic_across_runs(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_bench(first)
        run_bench(second)
        one = {r["name"]: r for r in
               rows_by_kind(read_jsonl(str(first)), "phase")}
        two = {r["name"]: r for r in
               rows_by_kind(read_jsonl(str(second)), "phase")}
        assert set(one) == set(two)
        for name, row in one.items():
            for key in ("count", "bytes", "errors"):
                assert row[key] == two[name][key], (name, key)
            assert row["virtual_s"] == pytest.approx(
                two[name]["virtual_s"], rel=1e-12
            )

    def test_slow_phase_argument_validation(self):
        with pytest.raises(SystemExit):
            bench_engine._parse_slow_phase("decrypt")  # missing :factor
        assert bench_engine._parse_slow_phase("decrypt:2.5") == {
            "decrypt": 2.5
        }


class TestCompareBench:
    def test_clean_runs_pass_the_gate(self, tmp_path):
        baseline, current = tmp_path / "base.jsonl", tmp_path / "cur.jsonl"
        run_bench(baseline)
        run_bench(current)
        assert compare_bench.main(
            [str(baseline), str(current), "--threshold", "1.0"]
        ) == 0

    def test_synthetic_slowdown_fails_the_gate(self, tmp_path, capsys):
        baseline, current = tmp_path / "base.jsonl", tmp_path / "cur.jsonl"
        run_bench(baseline)
        run_bench(current, "--slow-phase", "decrypt:3.0")
        # At this tiny query count decrypt's baseline wall sits below the
        # default --min-wall floor, so lower it to keep the phase gated.
        assert compare_bench.main(
            [str(baseline), str(current), "--threshold", "1.0",
             "--min-wall", "0.001"]
        ) == 1
        out = capsys.readouterr().out
        assert "decrypt" in out and "REGRESSED" in out

    def test_deterministic_drift_fails_even_when_fast(self, tmp_path):
        baseline, current = tmp_path / "base.jsonl", tmp_path / "cur.jsonl"
        run_bench(baseline)
        run_bench(current)
        rows = read_jsonl(str(current))
        for row in rows:
            if row.get("kind") == "phase" and row["name"] == "disk.read":
                row["count"] += 1  # simulate an extra disk access
        with open(current, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        assert compare_bench.main(
            [str(baseline), str(current), "--threshold", "1.0"]
        ) == 1

    def test_incomparable_metas_exit_2(self, tmp_path):
        baseline, current = tmp_path / "base.jsonl", tmp_path / "cur.jsonl"
        run_bench(baseline)
        argv = ["--queries", "20", "--seed", SEED, "--out", str(current)]
        assert bench_engine.main(argv) == 0
        assert compare_bench.main([str(baseline), str(current)]) == 2

    def test_malformed_input_exit_2(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{}\n")
        ok = tmp_path / "ok.jsonl"
        run_bench(ok)
        assert compare_bench.main([str(bad), str(ok)]) == 2

    def test_missing_phase_is_a_regression(self, tmp_path, capsys):
        baseline, current = tmp_path / "base.jsonl", tmp_path / "cur.jsonl"
        run_bench(baseline)
        run_bench(current)
        rows = [row for row in read_jsonl(str(current))
                if not (row.get("kind") == "phase"
                        and row["name"] == "journal.seal")]
        with open(current, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        assert compare_bench.main(
            [str(baseline), str(current), "--threshold", "1.0"]
        ) == 1
        # The regression message is a per-column diff of what the baseline
        # recorded for the vanished phase, not just a bare phase name.
        out = capsys.readouterr().out
        assert "journal.seal" in out
        assert "disappeared" in out
        for column in ("count=", "bytes=", "virtual_s=", "wall_s="):
            assert column in out, column

    def test_phase_row_missing_column_exits_2(self, tmp_path, capsys):
        # A phase row that lost a column is malformed input: the gate must
        # exit 2 with a clear message, never crash with a KeyError.
        baseline, current = tmp_path / "base.jsonl", tmp_path / "cur.jsonl"
        run_bench(baseline)
        run_bench(current)
        rows = read_jsonl(str(current))
        for row in rows:
            if row.get("kind") == "phase" and row["name"] == "decrypt":
                del row["virtual_s"]
        with open(current, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        assert compare_bench.main([str(baseline), str(current)]) == 2
        err = capsys.readouterr().err
        assert "decrypt" in err
        assert "virtual_s" in err
        assert "malformed" in err

    def test_committed_baseline_is_loadable(self):
        baseline = path.join(
            _BENCHMARKS, "results", "perf_baseline.jsonl"
        )
        run = compare_bench.load_run(baseline)
        assert run["calibration"] > 0.0
        assert "request" in run["phases"]


class TestMetricsCli:
    def test_metrics_command_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "metrics.jsonl"
        code = cli.main([
            "metrics", "--queries", "20", "--pages", "32", "--cache", "4",
            "--page-size", "32", "--seed", "5", "--out", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "request" in stdout
        assert "ratio" in stdout
        # Every Eq. 8 conformance ratio prints as exactly 1.0 on a clean run.
        assert "engine.requests" in stdout

        rows = read_jsonl(str(out))
        kinds = {row["kind"] for row in rows}
        assert {"meta", "phase", "counter", "costcheck"} <= kinds
        checks = rows_by_kind(rows, "costcheck")
        assert {row["term"] for row in checks} == {
            "seek", "disk", "link", "crypto", "total"
        }
        for row in checks:
            assert row["ratio"] == pytest.approx(1.0, rel=1e-9)

    def test_metrics_trace_flag_exports_spans(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        code = cli.main([
            "metrics", "--queries", "5", "--pages", "32", "--cache", "4",
            "--page-size", "32", "--seed", "5", "--trace",
            "--out", str(out),
        ])
        assert code == 0
        spans = rows_by_kind(read_jsonl(str(out)), "span")
        assert spans
        assert any(row["name"] == "request" for row in spans)
        roots = [row for row in spans if row["name"] == "request"]
        assert all(row["parent"] is None for row in roots)
