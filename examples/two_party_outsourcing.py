#!/usr/bin/env python3
"""Database outsourcing: the two-party model of §3.1 and Figure 7.

The data owner outsources an encrypted database to an untrusted service
provider and accesses it privately — no secure coprocessor needed, because
the owner's own machine plays that role.  The network (50 ms RTT here, as in
the paper's prototype) becomes the bottleneck instead of secure memory.

Run:  python examples/two_party_outsourcing.py
"""

from __future__ import annotations

from repro.twoparty import TwoPartySession


def main() -> None:
    records = [f"confidential document #{i}".encode() for i in range(300)]

    session = TwoPartySession.create(
        records,
        cache_capacity=24,
        target_c=2.0,
        page_capacity=128,
        reserve_fraction=0.1,
        rtt=0.05,              # the paper's simulated WiFi round trip
        bandwidth=2.33e6,      # effective link throughput (EXPERIMENTS.md)
        seed=5,
    )
    params = session.owner.params
    print(f"outsourced {params.num_locations} encrypted pages; "
          f"k = {params.block_size}, c = {params.achieved_c:.3f}")
    print(f"owner-side state: {session.owner.owner_storage_bytes():,} bytes "
          f"(position map + cache + block buffer)")

    # -- the owner works with its data as if it were local -------------------
    assert session.query(42) == b"confidential document #42"
    session.update(42, b"confidential document #42 (v2)")
    new_id = session.insert(b"late-arriving document")
    session.delete(7)
    print(f"query/update/insert/delete all done; new page id = {new_id}")

    # -- measured latency over the simulated network --------------------------
    series = session.measure_queries([i for i in range(11) if i != 7])
    print(f"\nper-query latency: mean = {series.mean() * 1e3:.1f} ms, "
          f"max = {series.maximum() * 1e3:.1f} ms, CV = "
          f"{series.coefficient_of_variation():.2e}  (constant, no spikes)")
    print(f"round trips so far: "
          f"{session.channel.counters.get('round_trips')} "
          f"({session.channel.total_bytes:,} bytes on the wire)")

    # -- what the provider can observe ----------------------------------------
    reads = {e.count for e in session.provider_trace if e.op == "read"}
    print(f"\nprovider sees reads of sizes {sorted(reads)} pages "
          f"(always the k-block + 1 extra) and the matching writes —")
    print("re-encrypted with fresh nonces, so it cannot even tell whether a")
    print("write-back changed anything.")


if __name__ == "__main__":
    main()
