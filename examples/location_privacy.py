#!/usr/bin/env python3
"""Location-private nearest-neighbour search (the paper's LBS motivation).

§1: "the emergence of location based services allows mobile users to browse
points of interest in their surroundings [but] a user's location over a
period of time can be tracked with very high accuracy."  Here the points of
interest live in a paged spatial grid inside a c-approximate PIR database,
so the provider answers kNN queries without learning where the user is.

Run:  python examples/location_privacy.py
"""

from __future__ import annotations

from repro.crypto.rng import SecureRandom
from repro.index import PrivateSpatialStore, SpatialPoint


def main() -> None:
    # A city of 800 restaurants on a 10 km x 10 km map.
    rng = SecureRandom(2026)
    city = [
        SpatialPoint(
            rng.random() * 10_000,
            rng.random() * 10_000,
            f"restaurant-{i}".encode(),
        )
        for i in range(800)
    ]

    store = PrivateSpatialStore.create(
        city,
        cache_capacity=32,
        target_c=2.0,
        page_capacity=1024,
        seed=11,
    )
    geometry = store._index.geometry
    print(f"grid: {geometry.cells_x} x {geometry.cells_y} cells "
          f"-> {store.database.num_pages} pages; "
          f"k = {store.database.params.block_size}, "
          f"c = {store.database.achieved_c:.3f}")

    # A user walking across town issues kNN queries; each one touches only
    # private page retrievals.
    walk = [(1200.0, 3400.0), (1900.0, 3600.0), (2600.0, 4100.0)]
    for x, y in walk:
        distance, place = store.nearest(x, y)
        print(f"user at ({x:6.0f}, {y:6.0f}) -> nearest: "
              f"{place.label.decode():15s} at {distance:6.1f} m")

    top3 = store.knn(5000, 5000, k=3)
    print("\n3 nearest to the city centre:")
    for distance, place in top3:
        print(f"  {place.label.decode():15s} {distance:7.1f} m")

    # Verify against brute force (we can, we own the data).
    expected = min(city, key=lambda p: p.distance_to(5000, 5000))
    assert top3[0][1].label == expected.label

    # Private spatial range query: "what's in this neighbourhood?"
    neighbourhood = store.within(4000, 4000, 6000, 6000)
    print(f"\nrestaurants in the 2km x 2km downtown square: "
          f"{len(neighbourhood)}")

    print(f"\nprivate retrievals for the whole session: {store.retrievals}")
    print("provider's view: fixed-size encrypted block reads/writes only —")
    print("no cell ids, no coordinates, no query contents.")


if __name__ == "__main__":
    main()
