#!/usr/bin/env python3
"""Exploring the trade-off that names the paper: privacy vs computational cost.

Sweeps the privacy parameter c for a fixed database/hardware and prints the
block size k (Eq. 6), the Eq. 8 response time, and the measured landing
distribution of the executed engine — then demonstrates the two endpoints
(c -> 1: trivial PIR; large c: fast but weak).

Run:  python examples/privacy_cost_tradeoff.py
"""

from __future__ import annotations

from repro.analysis.costmodel import AnalyticalCostModel
from repro.analysis.empirical import measure_landing_distribution
from repro.analysis.privacy import landing_entropy_bits, total_variation_from_uniform
from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.core.params import required_block_size
from repro.crypto.rng import SecureRandom
from repro.hardware.specs import GIGABYTE


def full_scale_table() -> None:
    """Eq. 6 + Eq. 8 at paper scale: 10 GB database, 1 KB pages, m = 100k."""
    model = AnalyticalCostModel()
    n, page, m = 10**7, 1000, 100_000
    print(f"10 GB database (n = {n:.0e} pages of 1 KB), cache m = {m:,}")
    print(f"{'c':>6} {'k (Eq. 6)':>10} {'T = n/k':>10} {'Q_t (Eq. 8)':>12}")
    for c in (1.01, 1.1, 1.5, 2.0, 4.0, 16.0):
        k = required_block_size(n, m, c)
        point = model.point(10 * GIGABYTE, page, m, c)
        print(f"{c:>6} {k:>10,} {n // k:>10,} {point.query_time:>10.3f} s")
    print()


def executed_sweep() -> None:
    """Run the real engine at small scale for three privacy levels."""
    import math

    records = make_records(48, 16)
    print("executed engine (n = 48+pad pages, m = 8), 800 tracked relocations:")
    print(f"{'c target':>9} {'k':>4} {'c achieved':>11} {'c measured':>11} "
          f"{'entropy (bits)':>15} {'TV dist':>8}")
    for c in (1.2, 2.0, 6.0):
        db = PirDatabase.create(
            records, cache_capacity=8, target_c=c, page_capacity=16,
            reserve_fraction=0.2, cipher_backend="null", trace_enabled=False,
            seed=int(c * 10),
        )
        params = db.params
        experiment = measure_landing_distribution(
            db, trials=800, rng=SecureRandom(int(c * 100))
        )
        entropy = landing_entropy_bits(
            params.num_locations, params.cache_capacity, params.block_size
        )
        tv = total_variation_from_uniform(
            params.num_locations, params.cache_capacity, params.block_size
        )
        print(f"{c:>9} {params.block_size:>4} {params.achieved_c:>11.3f} "
              f"{experiment.empirical_c():>11.3f} "
              f"{entropy:>9.3f}/{math.log2(params.num_locations):5.3f} "
              f"{tv:>8.4f}")
    print()


def endpoints() -> None:
    print("endpoints of the trade-off:")
    print("  c = 1   -> k = n: read the whole database per query "
          "(repro.baselines.TrivialPir)")
    print("  c -> oo -> k = 1: one extra page per query; fast, but the server")
    print("             can narrow a relocated page down to ~m block "
          "candidates quickly.")


def main() -> None:
    full_scale_table()
    executed_sweep()
    endpoints()


if __name__ == "__main__":
    main()
