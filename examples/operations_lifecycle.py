#!/usr/bin/env python3
"""Operating a private database over its whole lifecycle.

Production concerns beyond a single session: serving many clients through
the three-party front-end (Figure 1), rotating the encryption key online
with zero extra I/O (a free consequence of the continuous reshuffle), and
surviving a restart via sealed snapshots.

Run:  python examples/operations_lifecycle.py
"""

from __future__ import annotations

import tempfile

from repro import PirDatabase
from repro.core.snapshot import load_snapshot, save_snapshot
from repro.service import QueryFrontend, ServiceClient


def main() -> None:
    records = [f"account balance row {i}".encode() for i in range(120)]
    db = PirDatabase.create(
        records,
        cache_capacity=16,
        target_c=2.0,
        page_capacity=64,
        reserve_fraction=0.1,
        seed=99,
        master_key=b"2026-Q2-key",
    )
    print("created:", db.params.describe())

    # -- multiple clients through the secure-hardware front-end ---------------
    frontend = QueryFrontend(db)
    alice = ServiceClient(frontend)
    bob = ServiceClient(frontend)
    alice.update(10, b"updated by alice")
    print("bob reads alice's write:", bob.query(10).decode())
    print(f"sessions: {frontend.counters.get('sessions')}, "
          f"requests: {frontend.counters.get('requests')}; each session has "
          "its own keys, so clients cannot read each other's traffic")

    # -- online key rotation ----------------------------------------------------
    db.rotate_master_key(b"2026-Q3-key")
    remaining = db.engine.rotation_requests_remaining
    print(f"\nkey rotation started: completes within T = {remaining} requests")
    while db.cop.rotation_in_progress:
        alice.query(db.engine.request_count % 120)  # normal traffic
    print("rotation finished during ordinary traffic — zero extra disk I/O")

    # -- snapshot, 'crash', restore -----------------------------------------------
    with tempfile.TemporaryDirectory() as directory:
        save_snapshot(db, directory)
        print(f"\nsnapshot written to {directory} "
              "(encrypted frames + sealed trusted state)")
        restored = load_snapshot(directory, master_key=b"2026-Q3-key", seed=7)
        assert restored.query(10) == b"updated by alice"
        restored.consistency_check()
        print("restored database verified: payloads, position map, cache, "
              "round-robin pointer all intact")
        try:
            load_snapshot(directory, master_key=b"stolen-guess")
        except Exception as exc:
            print(f"restore with wrong key -> {type(exc).__name__} (as it should)")


if __name__ == "__main__":
    main()
