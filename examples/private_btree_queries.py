#!/usr/bin/env python3
"""Private key-value queries over a disk-resident B+-tree.

The paper's motivating architecture ([23], §1-2): the client resolves SQL-ish
point and range queries by *privately* retrieving pages of an index stored at
an untrusted server.  Every node visit below is one c-approximate PIR
retrieval, so the server learns neither the keys searched nor the rows read.

Run:  python examples/private_btree_queries.py
"""

from __future__ import annotations

from repro.hardware.specs import IBM_4764
from repro.index import PrivateKeyValueStore


def main() -> None:
    # A toy "employees by id" table: 2000 rows serialised as key/value pairs.
    rows = [
        (employee_id, f"employee-{employee_id}|dept-{employee_id % 7}".encode())
        for employee_id in range(0, 4000, 2)
    ]

    store = PrivateKeyValueStore.create(
        rows,
        cache_capacity=32,
        target_c=2.0,
        page_capacity=512,
        seed=7,
    )
    db = store.database
    print(f"B+-tree: {db.num_pages} pages, height {store.height}, "
          f"k = {db.params.block_size}, c = {db.achieved_c:.3f}")

    # -- private point lookups ------------------------------------------------
    for key in (0, 1234, 3998):
        value = store.get(key)
        print(f"get({key}) -> {value.decode()}")
    assert store.get(1) is None  # odd ids were never inserted
    print("get(1) -> None (absent key)")

    # -- private range scan ---------------------------------------------------
    window = store.range(100, 140)
    print(f"range(100, 140) -> {len(window)} rows, first = "
          f"{window[0][1].decode()}")

    # -- the privacy/cost ledger ----------------------------------------------
    print(f"\nprivate page retrievals so far: {store.retrievals}")
    print(f"each retrieval moves 2(k+1) = {2 * (db.params.block_size + 1)} "
          f"pages past the server")

    # On real secure hardware (Table 2) a point lookup costs height x Eq. 8:
    timed = PrivateKeyValueStore.create(
        rows[:500], cache_capacity=32, target_c=2.0, page_capacity=512,
        seed=8, spec=IBM_4764,
    )
    print(f"estimated IBM-4764 point-lookup latency: "
          f"{timed.query_cost_estimate() * 1e3:.1f} ms "
          f"({timed.height} levels x Eq. 8)")

    # The server-side view is the same uniform footprint for every request.
    from repro.storage.trace import shapes_identical
    assert shapes_identical(db.trace, 0)
    print("server-side trace footprint is uniform across all index accesses")


if __name__ == "__main__":
    main()
