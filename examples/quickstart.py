#!/usr/bin/env python3
"""Quickstart: a private page store in a dozen lines.

Builds a small encrypted, obliviously permuted database, runs queries and
updates through the secure-hardware engine, and shows what the adversarial
server actually observes (and what it doesn't).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PirDatabase
from repro.errors import PageDeletedError
from repro.storage.trace import shapes_identical


def main() -> None:
    # 100 pages of user data.
    records = [f"record number {i:03d}".encode() for i in range(100)]

    # m = 16 cached pages, privacy target c = 2: any location is at most
    # twice as likely as any other to receive a relocated page (Def. 1).
    db = PirDatabase.create(
        records,
        cache_capacity=16,
        target_c=2.0,
        page_capacity=64,
        reserve_fraction=0.1,   # pre-allocate free pages for inserts (§4.3)
        seed=42,                # reproducible demo; omit in production
    )
    print("configuration:", db.params.describe())

    # -- private queries ---------------------------------------------------
    assert db.query(17) == b"record number 017"
    assert db.query(17) == b"record number 017"  # cache hit: same answer
    print("query(17)  ->", db.query(17).decode())

    # -- updates are trace-identical to queries (§4.3) ----------------------
    db.update(17, b"record 017 (revised)")
    print("update(17) ->", db.query(17).decode())

    new_id = db.insert(b"a brand new record")
    print(f"insert()   -> page id {new_id}:", db.query(new_id).decode())

    db.delete(3)
    try:
        db.query(3)
    except PageDeletedError:
        print("delete(3)  -> page 3 now refuses queries")

    # -- what the server sees ------------------------------------------------
    trace = db.trace
    print(f"\nserver observed {len(trace)} disk accesses over "
          f"{trace.num_requests()} requests")
    print("first request's footprint:", trace.request_shape(0))
    print("all requests identical?   ", shapes_identical(trace, 0))
    print("achieved privacy level c =", round(db.achieved_c, 4))

    # The position map, cache, and keys live inside the tamper boundary:
    report = db.storage_report()
    print(f"secure memory: pageMap={report.page_map}B, "
          f"cache={report.page_cache}B, serverBlock={report.server_block}B "
          f"(total {report.total}B)")

    # Full integrity audit (decrypts everything; small databases only).
    db.consistency_check()
    print("consistency check passed")


if __name__ == "__main__":
    main()
