"""Definition 1 as a guessing game, played against the executed engine.

A Bayesian adversary watches every disk access after a tracked page enters
the cache and, once the page has provably left (we tell it when, which only
helps it), guesses the page's location.  Definition 1 caps any location's
posterior at ``c`` times uniform, so the adversary's top-1 hit rate must
stay below ~``c / n`` — against ``1 / n`` for blind guessing.  The bench
measures the actual hit rate over many trials.
"""

from __future__ import annotations

from repro.analysis.adversary import TrackingAdversary
from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.crypto.rng import SecureRandom


def test_adversary_guessing_game(report, benchmark):
    db = PirDatabase.create(
        make_records(40, 16), cache_capacity=8, target_c=2.0,
        page_capacity=16, reserve_fraction=0.2, cipher_backend="null",
        trace_enabled=False, seed=77,
    )
    params = db.params
    rng = SecureRandom(78)
    pm = db.cop.page_map

    def run_trials(trials: int) -> float:
        hits = 0
        for _ in range(trials):
            tracked = rng.randrange(params.num_user_pages)
            while not pm.is_cached(tracked):
                db.query(tracked)
            adversary = TrackingAdversary(
                params.num_locations, params.block_size, params.cache_capacity
            )
            while pm.is_cached(tracked):
                while True:
                    other = rng.randrange(params.num_user_pages)
                    if other != tracked:
                        break
                db.query(other)
                outcome = db.engine.last_outcome
                adversary.observe_request(outcome.block_start,
                                          outcome.extra_location)
            if adversary.guess() == pm.lookup(tracked).position:
                hits += 1
        return hits / trials

    trials = 600
    hit_rate = benchmark.pedantic(lambda: run_trials(trials),
                                  rounds=1, iterations=1)
    n = params.num_locations
    c = params.achieved_c
    report.line(
        f"adversary top-1 location guess after one relocation "
        f"({trials} trials, n = {n}, c = {c:.3f})"
    )
    report.table(
        ["strategy", "hit rate"],
        [
            ["blind uniform guess", 1.0 / n],
            ["Definition-1 ceiling c/n", c / n],
            ["Bayesian tracking adversary (measured)", hit_rate],
        ],
    )
    # The adversary beats blind guessing but stays at the c/n ceiling
    # (3-sigma band for a Bernoulli(c/n) estimate over `trials`).
    sigma = (c / n * (1 - c / n) / trials) ** 0.5
    assert hit_rate <= c / n + 3 * sigma
    assert hit_rate > 1.0 / n  # tracking does extract the allowed advantage
