"""Micro-benchmarks of the executed system's moving parts.

Not a paper artifact — engineering numbers for this implementation: query
throughput as a function of k, setup cost (direct vs oblivious shuffle),
and the two-party protocol overhead.

Besides the pytest-benchmark tests, this file is a script::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick --out run.jsonl

which runs a pinned-seed traced workload and writes the per-phase
breakdown as JSONL (meta line + one row per phase).  The CI perf gate
diffs such a run against ``benchmarks/results/perf_baseline.jsonl`` via
``benchmarks/compare_bench.py``.  ``--slow-phase decrypt:2.0`` injects a
synthetic busy-wait slowdown into one phase, used to demonstrate that the
gate actually fails on a regression.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import time
from os import path
from typing import List, Optional

try:
    import repro  # noqa: F401
except ImportError:  # script mode from a checkout without PYTHONPATH
    sys.path.insert(0, path.join(path.dirname(__file__), "..", "src"))

import pytest

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.shuffle.oblivious import network_size
from repro.twoparty import TwoPartySession


@pytest.mark.parametrize("block_size", [2, 8, 32])
def test_query_throughput_vs_k(benchmark, block_size):
    db = PirDatabase.create(
        make_records(128, 16), cache_capacity=8, block_size=block_size,
        page_capacity=16, cipher_backend="blake2", trace_enabled=False,
        seed=block_size,
    )
    counter = iter(range(10**9))

    def one_query():
        return db.query(next(counter) % 128)

    benchmark(one_query)


def test_setup_direct(benchmark):
    def build():
        return PirDatabase.create(
            make_records(256, 16), cache_capacity=8, block_size=8,
            page_capacity=16, trace_enabled=False, seed=1,
        )

    db = benchmark.pedantic(build, rounds=3, iterations=1)
    assert db.params.num_locations >= 256


def test_setup_oblivious(benchmark, report):
    def build():
        return PirDatabase.create(
            make_records(64, 16), cache_capacity=8, block_size=8,
            page_capacity=16, trace_enabled=False, seed=2,
            setup_mode="oblivious",
        )

    db = benchmark.pedantic(build, rounds=1, iterations=1)
    assert db.query(5) == make_records(64, 16)[5]
    report.line("oblivious setup cost (Batcher network compare-exchanges)")
    report.table(
        ["n", "comparators", "per-comparator disk ops"],
        [[db.params.num_locations, network_size(db.params.num_locations), 4]],
    )


def test_two_party_query(benchmark):
    session = TwoPartySession.create(
        make_records(96, 16), cache_capacity=8, block_size=8,
        page_capacity=16, seed=3,
    )
    counter = iter(range(10**9))

    def one_query():
        return session.query(next(counter) % 96)

    benchmark(one_query)


# ---------------------------------------------------------------------------
# Script mode: structured per-phase JSONL for the CI perf gate
# ---------------------------------------------------------------------------

#: Pinned workload shape — change it and the committed baseline together.
DEFAULT_SEED = 1234
DEFAULT_QUERIES = 400
QUICK_QUERIES = 120
_BENCH_PAGES = 128
_BENCH_BLOCK = 8
_BENCH_PAGE_SIZE = 64


def calibration_seconds() -> float:
    """Wall time of a fixed hashing workload (~10 MB of SHA-256).

    Recorded in the JSONL meta row so :mod:`compare_bench` can normalise
    wall times between machines of different speed: what is compared is
    each phase's wall time *relative to this machine's calibration*, not
    the raw seconds, so a baseline recorded on a fast runner still gates
    a slower one.
    """
    blob = b"\x5a" * 4096
    start = time.perf_counter()
    for _ in range(25_000):
        blob = hashlib.sha256(blob).digest() * 128  # back to 4096 bytes
    return time.perf_counter() - start


def run_phase_bench(
    queries: int,
    seed: int,
    slowdown: Optional[dict] = None,
):
    """Run the pinned traced workload; returns (tracer, database)."""
    from repro.core.journal import MemoryJournal
    from repro.hardware.specs import IBM_4764
    from repro.obs import Tracer

    tracer = Tracer()
    if slowdown:
        tracer.slowdown.update(slowdown)
    db = PirDatabase.create(
        make_records(_BENCH_PAGES, _BENCH_PAGE_SIZE),
        cache_capacity=8,
        block_size=_BENCH_BLOCK,
        page_capacity=_BENCH_PAGE_SIZE,
        cipher_backend="blake2",
        trace_enabled=False,
        seed=seed,
        spec=IBM_4764,
        journal=MemoryJournal(),
        tracer=tracer,
    )
    for index in range(queries):
        db.query(index % _BENCH_PAGES)
    return tracer, db


def _parse_slow_phase(text: str) -> dict:
    try:
        name, factor = text.split(":", 1)
        return {name: float(factor)}
    except ValueError:
        raise SystemExit(
            f"--slow-phase expects NAME:FACTOR (e.g. decrypt:2.0), got {text!r}"
        )


def main(argv: Optional[List[str]] = None) -> int:
    from repro.obs import phase_rows, write_jsonl

    parser = argparse.ArgumentParser(
        description="per-phase engine benchmark (JSONL for the CI perf gate)"
    )
    parser.add_argument("--quick", action="store_true",
                        help=f"run {QUICK_QUERIES} queries instead of "
                             f"{DEFAULT_QUERIES}")
    parser.add_argument("--queries", type=int, default=0,
                        help="explicit query count (overrides --quick)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--slow-phase", default="",
                        help="NAME:FACTOR synthetic slowdown drill "
                             "(e.g. decrypt:2.0)")
    parser.add_argument("--out", default="",
                        help="JSONL output path (default stdout)")
    args = parser.parse_args(argv)

    queries = args.queries or (QUICK_QUERIES if args.quick else DEFAULT_QUERIES)
    slowdown = _parse_slow_phase(args.slow_phase) if args.slow_phase else None
    calibration = calibration_seconds()
    tracer, db = run_phase_bench(queries, args.seed, slowdown)

    rows = [{
        "kind": "meta",
        "queries": queries,
        "seed": args.seed,
        "pages": _BENCH_PAGES,
        "block_size": db.params.block_size,
        "page_size": _BENCH_PAGE_SIZE,
        "calibration_s": calibration,
        "slow_phase": args.slow_phase,
    }]
    rows.extend(phase_rows(tracer))
    if args.out:
        written = write_jsonl(args.out, rows)
        print(f"wrote {written} rows ({queries} queries, "
              f"calibration {calibration:.4f}s) to {args.out}")
    else:
        import json

        for row in rows:
            print(json.dumps(row, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
