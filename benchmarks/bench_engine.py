"""Micro-benchmarks of the executed system's moving parts.

Not a paper artifact — engineering numbers for this implementation: query
throughput as a function of k, setup cost (direct vs oblivious shuffle),
and the two-party protocol overhead.
"""

from __future__ import annotations

import pytest

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.shuffle.oblivious import network_size
from repro.twoparty import TwoPartySession


@pytest.mark.parametrize("block_size", [2, 8, 32])
def test_query_throughput_vs_k(benchmark, block_size):
    db = PirDatabase.create(
        make_records(128, 16), cache_capacity=8, block_size=block_size,
        page_capacity=16, cipher_backend="blake2", trace_enabled=False,
        seed=block_size,
    )
    counter = iter(range(10**9))

    def one_query():
        return db.query(next(counter) % 128)

    benchmark(one_query)


def test_setup_direct(benchmark):
    def build():
        return PirDatabase.create(
            make_records(256, 16), cache_capacity=8, block_size=8,
            page_capacity=16, trace_enabled=False, seed=1,
        )

    db = benchmark.pedantic(build, rounds=3, iterations=1)
    assert db.params.num_locations >= 256


def test_setup_oblivious(benchmark, report):
    def build():
        return PirDatabase.create(
            make_records(64, 16), cache_capacity=8, block_size=8,
            page_capacity=16, trace_enabled=False, seed=2,
            setup_mode="oblivious",
        )

    db = benchmark.pedantic(build, rounds=1, iterations=1)
    assert db.query(5) == make_records(64, 16)[5]
    report.line("oblivious setup cost (Batcher network compare-exchanges)")
    report.table(
        ["n", "comparators", "per-comparator disk ops"],
        [[db.params.num_locations, network_size(db.params.num_locations), 4]],
    )


def test_two_party_query(benchmark):
    session = TwoPartySession.create(
        make_records(96, 16), cache_capacity=8, block_size=8,
        page_capacity=16, seed=3,
    )
    counter = iter(range(10**9))

    def one_query():
        return session.query(next(counter) % 96)

    benchmark(one_query)
