"""Online re-permutation benchmark — the last amortized stall, removed.

The offline Batcher shuffle is a stop-the-world event: ``network_size(n)``
compare-exchanges during which the database refuses every request.  The
online reshuffler executes the same network as bounded batches interleaved
with serving, and the hot tier absorbs the extra block traffic.  This
bench quantifies both claims on one pinned workload:

* **Byte identity** — every query served before, during and after a full
  epoch (with a piggybacked key rotation) returns the original record,
  and the content digest survives the epoch (exit 2: correctness).
* **Zero refusals under load** — a loadgen loop drives the frontend while
  a *background* epoch runs to completion; not a single request may be
  refused, and the served-during-epoch counter must prove real overlap
  (exit 1: the availability claim of the PR).
* **Bounded tail latency** — wall-clock p99 during the background epoch
  must stay within ``1.5x`` of the same loop's no-reshuffle p99 (exit 1).
* **Hot-tier effectiveness** — the memory tier (sized to the frame
  array, the deployment default) must absorb at least 95% of frame
  reads across serving and the epoch itself (exit 1).

Besides the pytest check, this file is a script::

    PYTHONPATH=src python benchmarks/bench_reshuffle.py --quick --out run.jsonl

emitting the perf-gate JSONL layout (meta line + phase rows) that
``benchmarks/compare_bench.py`` diffs against
``benchmarks/results/perf_baseline_reshuffle.jsonl``.  The count/bytes/
virtual-second columns come from the virtual clock and the deterministic
comparator network, so they are exact under the pinned seed; the wall-time
loadgen gates run in-script only and are never emitted as phase rows.
"""

from __future__ import annotations

import argparse
import sys
import time
from os import path
from typing import List, Optional, Tuple

try:
    import repro  # noqa: F401
except ImportError:  # script mode from a checkout without PYTHONPATH
    sys.path.insert(0, path.join(path.dirname(__file__), "..", "src"))

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.core.journal import MemoryJournal
from repro.hardware.specs import IBM_4764
from repro.obs.registry import MetricsRegistry
from repro.shuffle.oblivious import network_size

#: Pinned workload shape — change it and the committed baseline together.
DEFAULT_SEED = 9177
DEFAULT_QUERIES = 256
QUICK_QUERIES = 128
_BENCH_RECORDS = 96
_BENCH_PAGE_SIZE = 32
_BLOCK_SIZE = 8
_CACHE = 8
_HOT_FRAMES = 96         # full residency: memory tier sized to n frames
_RESHUFFLE_BATCH = 16    # comparator units per journaled batch

MIN_HIT_RATE = 0.95
P99_RATIO_MAX = 1.5
_LOADGEN_WARMUP = 200            # discarded: caches and allocator settling
_LOADGEN_BASELINE = 1000         # latency samples on each side of the epoch
_LOADGEN_MIN_OVERLAP = 64        # served-during-epoch floor for the gate
_LOADGEN_CAP = 50000             # runaway guard if the epoch never ends
_LOADGEN_ATTEMPTS = 3            # best-of-N for the one-sided-noise p99 gate


def _make_db(seed: int, metrics: Optional[MetricsRegistry] = None,
             spec=IBM_4764) -> PirDatabase:
    # The IBM 4764 timing model prices the comparator I/O honestly on the
    # virtual clock; the hot tier fronts the cold store exactly as the
    # deployment path does.  A clock-charging journal prices durability.
    db = PirDatabase.create(
        make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE),
        cache_capacity=_CACHE,
        block_size=_BLOCK_SIZE,
        page_capacity=_BENCH_PAGE_SIZE,
        cipher_backend="blake2",
        trace_enabled=False,
        seed=seed,
        spec=spec,
        metrics=metrics,
        hot_tier_frames=_HOT_FRAMES,
    )
    if spec is not None:
        db.engine.journal = MemoryJournal(clock=db.clock,
                                          timing=db.cop.spec.disk)
    return db


def _query_id(i: int) -> int:
    return (i * 13 + 5) % _BENCH_RECORDS


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[int(q * (len(ordered) - 1))]


# ---------------------------------------------------------------------------
# Deterministic phases (virtual clock)
# ---------------------------------------------------------------------------


def run_serve_baseline(db: PirDatabase, records: List[bytes],
                       queries: int) -> Tuple[dict, List[str]]:
    problems: List[str] = []
    virtual_start = db.clock.now
    wall_start = time.perf_counter()
    for i in range(queries):
        page_id = _query_id(i)
        if db.query(page_id) != records[page_id]:
            problems.append(f"baseline query {page_id} returned wrong bytes")
    row = {
        "kind": "phase", "name": "serve.baseline",
        "count": queries,
        "bytes": queries * (_BLOCK_SIZE + 1) * db.cop.frame_size,
        "virtual_s": db.clock.now - virtual_start,
        "wall_s": time.perf_counter() - wall_start,
    }
    return row, problems


def run_foreground_epoch(db: PirDatabase) -> Tuple[dict, List[str]]:
    """One full epoch with a piggybacked rotation, no interleaved serving."""
    problems: List[str] = []
    digest = db.content_digest()
    driver = db.begin_reshuffle(batch_size=_RESHUFFLE_BATCH,
                                rotate_to=b"bench-rotated-key",
                                journal=MemoryJournal())
    virtual_start = db.clock.now
    wall_start = time.perf_counter()
    units = driver.run()
    wall = time.perf_counter() - wall_start
    virtual = db.clock.now - virtual_start
    if units != driver.total_units:
        problems.append(f"epoch ran {units} of {driver.total_units} units")
    if driver.active:
        problems.append("epoch still active after run()")
    if db.cop.rotation_in_progress or db.cop.legacy_master_key is not None:
        problems.append("piggybacked key rotation did not complete")
    if db.content_digest() != digest:
        problems.append("content digest changed across the epoch")
    # Every comparator rewrites 2 frames; every sweep slot rewrites 1.
    frames = 2 * driver.counters.get("comparators") + driver.counters.get(
        "sweeps"
    )
    row = {
        "kind": "phase", "name": "reshuffle.epoch",
        "count": units, "bytes": frames * db.cop.frame_size,
        "virtual_s": virtual, "wall_s": wall,
    }
    return row, problems


def run_serve_interleaved(db: PirDatabase, records: List[bytes],
                          ) -> Tuple[dict, List[str]]:
    """One query between every comparator batch of a second epoch."""
    problems: List[str] = []
    driver = db.begin_reshuffle(batch_size=_RESHUFFLE_BATCH,
                                journal=MemoryJournal())
    virtual_start = db.clock.now
    wall_start = time.perf_counter()
    served = 0
    while driver.active:
        page_id = _query_id(served)
        if db.query(page_id) != records[page_id]:
            problems.append(f"mid-epoch query {page_id} returned wrong bytes")
        driver.step()
        served += 1
    row = {
        "kind": "phase", "name": "serve.interleaved",
        "count": served,
        "bytes": served * (_BLOCK_SIZE + 1) * db.cop.frame_size,
        "virtual_s": db.clock.now - virtual_start,
        "wall_s": time.perf_counter() - wall_start,
    }
    if served * _RESHUFFLE_BATCH < driver.total_units:
        problems.append("interleaved loop served fewer queries than batches")
    return row, problems


def check_hit_rate(metrics: MetricsRegistry) -> Tuple[float, List[str]]:
    hits = metrics.counter("tier.hit").value
    misses = metrics.counter("tier.miss").value
    rate = hits / (hits + misses) if hits + misses else 0.0
    if rate < MIN_HIT_RATE:
        return rate, [f"hot-tier hit rate {rate:.2%} < {MIN_HIT_RATE:.0%}"]
    return rate, []


# ---------------------------------------------------------------------------
# Wall-clock loadgen gate (in-script only; never emitted as phase rows)
# ---------------------------------------------------------------------------


def _loadgen_attempt(seed: int) -> Tuple[dict, List[str], List[str]]:
    from repro.service.frontend import QueryFrontend, ServiceClient

    correctness: List[str] = []
    perf: List[str] = []
    records = make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE)
    db = _make_db(seed, spec=None)  # zero-cost timing: wall time dominates
    frontend = QueryFrontend(db)
    client = ServiceClient(frontend)

    def sample(count: int, phase: str) -> List[float]:
        latencies: List[float] = []
        for i in range(count):
            page_id = _query_id(i)
            t0 = time.perf_counter()
            payload = client.query(page_id)
            latencies.append(time.perf_counter() - t0)
            if payload != records[page_id]:
                correctness.append(f"{phase} query {page_id} diverged")
        return latencies

    try:
        sample(_LOADGEN_WARMUP, "warmup")  # caches, allocator, JIT-ish costs
        before = sample(_LOADGEN_BASELINE, "baseline")
        driver = db.begin_reshuffle(batch_size=1, background=True,
                                    idle_interval=0.001,
                                    rotate_to=b"loadgen-rotated-key",
                                    journal=MemoryJournal())
        during: List[float] = []
        i = 0
        while driver.active and i < _LOADGEN_CAP:
            page_id = _query_id(i)
            t0 = time.perf_counter()
            payload = client.query(page_id)
            during.append(time.perf_counter() - t0)
            if payload != records[page_id]:
                correctness.append(f"mid-epoch query {page_id} diverged")
            i += 1
        if driver.active:
            perf.append(f"background epoch unfinished after {i} queries")
        # Bracket the epoch: ambient machine noise is one-sided, so the
        # better of the two surrounding baselines is the fairer yardstick.
        after = sample(_LOADGEN_BASELINE, "post-baseline")
        db.consistency_check()
        if db.cop.rotation_in_progress:
            correctness.append("loadgen rotation did not complete")

        refused = sum(amount
                      for name, amount in frontend.counters.as_dict().items()
                      if name.startswith("refused."))
        overlap = frontend.counters.get("requests.during_reshuffle")
        if refused:
            perf.append(f"{refused} requests refused during the epoch")
        if overlap < _LOADGEN_MIN_OVERLAP:
            perf.append(f"only {overlap} requests overlapped the epoch "
                        f"(need >= {_LOADGEN_MIN_OVERLAP}: gate is vacuous)")
        p99_base = min(_percentile(before, 0.99), _percentile(after, 0.99))
        p99_during = _percentile(during, 0.99) if during else float("inf")
        ratio = p99_during / p99_base if p99_base else float("inf")
        if ratio > P99_RATIO_MAX:
            perf.append(f"p99 during epoch {p99_during * 1e3:.3f} ms is "
                        f"{ratio:.2f}x baseline {p99_base * 1e3:.3f} ms "
                        f"(max {P99_RATIO_MAX}x)")
        stats = {
            "loadgen_queries": len(before) + len(during) + len(after),
            "loadgen_overlap": overlap,
            "loadgen_refused": refused,
            "p99_baseline_ms": p99_base * 1e3,
            "p99_during_ms": p99_during * 1e3,
            "p99_ratio": ratio,
        }
        return stats, correctness, perf
    finally:
        client.close()
        db.close()


def run_loadgen_gate(seed: int) -> Tuple[dict, List[str], List[str]]:
    """Background epoch under live frontend traffic: zero refusals, p99.

    Correctness problems (diverged bytes, refusals-as-corruption) fail the
    first attempt outright.  The p99 tail gate is retried best-of-N: a
    scheduler hiccup only ever *inflates* a latency sample, so one clean
    attempt is evidence the stall bound holds and the noisy attempts were
    ambient.  Returns (stats, correctness_problems, perf_problems).
    """
    stats: dict = {}
    correctness: List[str] = []
    perf: List[str] = []
    for attempt in range(_LOADGEN_ATTEMPTS):
        stats, correctness, perf = _loadgen_attempt(seed + attempt)
        if correctness or not perf:
            break
        print(f"note: loadgen attempt {attempt + 1}/{_LOADGEN_ATTEMPTS} "
              f"missed a perf gate ({'; '.join(perf)}); retrying",
              file=sys.stderr)
    return stats, correctness, perf


# ---------------------------------------------------------------------------
# Pytest check (collected with the benchmark suite)
# ---------------------------------------------------------------------------


def test_online_reshuffle_serves_through_epoch(report):
    """Full epoch + rotation with zero divergence and a warm hot tier."""
    records = make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE)
    metrics = MetricsRegistry()
    db = _make_db(DEFAULT_SEED, metrics=metrics)
    try:
        base_row, problems = run_serve_baseline(db, records, QUICK_QUERIES)
        epoch_row, epoch_problems = run_foreground_epoch(db)
        inter_row, inter_problems = run_serve_interleaved(db, records)
        db.consistency_check()
        assert problems + epoch_problems + inter_problems == []
        rate, rate_problems = check_hit_rate(metrics)
        assert rate_problems == [], rate_problems

        n = db.params.num_locations
        report.line(f"online epoch over n={n} locations: "
                    f"{network_size(n)} comparators + {n} sweep reseals, "
                    f"batch={_RESHUFFLE_BATCH}, piggybacked key rotation")
        report.table(
            ["phase", "count", "virtual s", "wall ms"],
            [[row["name"], row["count"], row["virtual_s"],
              row["wall_s"] * 1e3]
             for row in (base_row, epoch_row, inter_row)],
        )
        report.line(f"hot-tier hit rate {rate:.2%} "
                    f"(gate: >= {MIN_HIT_RATE:.0%}); "
                    f"{inter_row['count']} queries interleaved mid-epoch")
    finally:
        db.close()


# ---------------------------------------------------------------------------
# Script mode: structured JSONL for the CI perf gate
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    try:
        from bench_engine import calibration_seconds  # script mode
    except ImportError:
        from benchmarks.bench_engine import calibration_seconds
    from repro.obs import write_jsonl

    parser = argparse.ArgumentParser(
        description="online-reshuffle benchmark (JSONL for the CI perf gate)"
    )
    parser.add_argument("--quick", action="store_true",
                        help=f"serve {QUICK_QUERIES} baseline queries "
                             f"instead of {DEFAULT_QUERIES}")
    parser.add_argument("--queries", type=int, default=0,
                        help="explicit baseline query count "
                             "(overrides --quick)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--skip-loadgen", action="store_true",
                        help="skip the wall-clock zero-refusal/p99 gate "
                             "(deterministic phases only)")
    parser.add_argument("--out", default="",
                        help="JSONL output path (default stdout)")
    args = parser.parse_args(argv)

    queries = args.queries or (QUICK_QUERIES if args.quick
                               else DEFAULT_QUERIES)
    calibration = calibration_seconds()
    records = make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE)
    metrics = MetricsRegistry()
    db = _make_db(args.seed, metrics=metrics)
    try:
        base_row, problems = run_serve_baseline(db, records, queries)
        epoch_row, epoch_problems = run_foreground_epoch(db)
        inter_row, inter_problems = run_serve_interleaved(db, records)
        db.consistency_check()
        for problem in problems + epoch_problems + inter_problems:
            print(f"error: {problem}", file=sys.stderr)
        if problems + epoch_problems + inter_problems:
            return 2
        hit_rate, rate_problems = check_hit_rate(metrics)
    finally:
        db.close()

    loadgen_stats: dict = {}
    if not args.skip_loadgen:
        loadgen_stats, correctness, perf_problems = run_loadgen_gate(
            args.seed
        )
        for problem in correctness:
            print(f"error: {problem}", file=sys.stderr)
        if correctness:
            return 2
        rate_problems += perf_problems
    if rate_problems:
        for problem in rate_problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1

    rows = [dict({
        "kind": "meta",
        "queries": queries,
        "seed": args.seed,
        "pages": _BENCH_RECORDS,
        "block_size": _BLOCK_SIZE,
        "page_size": _BENCH_PAGE_SIZE,
        "hot_frames": _HOT_FRAMES,
        "reshuffle_batch": _RESHUFFLE_BATCH,
        "calibration_s": calibration,
        # Informational (not gated here): the in-script zero-refusal,
        # p99-ratio and hit-rate checks above are the gates;
        # compare_bench.py gates the virtual_s columns exactly.
        "hit_rate": hit_rate,
    }, **loadgen_stats)]
    rows.append(base_row)
    rows.append(epoch_row)
    rows.append(inter_row)
    if args.out:
        written = write_jsonl(args.out, rows)
        print(f"wrote {written} rows (epoch of {epoch_row['count']} units, "
              f"{inter_row['count']} queries interleaved, hot-tier hit rate "
              f"{hit_rate:.2%}) to {args.out}")
    else:
        import json

        for row in rows:
            print(json.dumps(row, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
