"""§2's complexity landscape, measured: transfers per query vs database size.

All schemes are run for real at n in {64, 256, 1024} with the standard
parameterisations (sqrt(n) secure storage for Wang and this scheme,
sqrt(n) shelter for square-root ORAM, auto-depth pyramid) and we count the
page frames that actually cross the trusted boundary per query.

The paper's thesis falls out of the mean-vs-max columns: the amortized
schemes' *means* scale like their textbook complexity, but their *maxima*
are full-database reshuffles; this scheme's maximum equals its mean.
"""

from __future__ import annotations

import math

from repro.baselines import (
    CApproxScheme,
    PyramidOram,
    SquareRootOram,
    WangPir,
    make_records,
    measure_latencies,
)
from repro.core.database import PirDatabase
from repro.crypto.rng import SecureRandom


def _frames_per_query(scheme, trace, frame_size, queries, rng, num_pages):
    trace.clear()
    per_query = []
    for _ in range(queries):
        before = trace.bytes_transferred(frame_size) if len(trace) else 0
        scheme.retrieve(rng.randrange(num_pages))
        after = trace.bytes_transferred(frame_size)
        per_query.append((after - before) / frame_size)
    return per_query


def test_transfer_scaling(report, benchmark):
    rows = []
    for n in (64, 256, 1024):
        records = make_records(n, 16)
        m = max(2, math.isqrt(n))
        rng = SecureRandom(n)
        queries = 3 * m  # enough to cross several reshuffle epochs

        db = PirDatabase.create(records, cache_capacity=m, target_c=2.0,
                                page_capacity=16, cipher_backend="null",
                                seed=n)
        ours = CApproxScheme(db)
        samples = _frames_per_query(ours, db.trace, db.cop.frame_size,
                                    queries, rng, n)
        rows.append(["c-approx", n, db.params.block_size,
                     sum(samples) / len(samples), max(samples)])

        wang = WangPir.create(records, storage_capacity=m, page_capacity=16,
                              cipher_backend="null", seed=n + 1)
        samples = _frames_per_query(wang, wang.trace,
                                    wang._endpoint.frame_size, queries, rng, n)
        rows.append(["wang2006", n, "-", sum(samples) / len(samples),
                     max(samples)])

        oram = SquareRootOram.create(records, page_capacity=16,
                                     cipher_backend="null", seed=n + 2)
        samples = _frames_per_query(oram, oram.trace,
                                    oram._endpoint.frame_size, queries, rng, n)
        rows.append(["sqrt-oram", n, "-", sum(samples) / len(samples),
                     max(samples)])

        pyramid = PyramidOram.create(records, page_capacity=16,
                                     cipher_backend="null", seed=n + 3)
        samples = _frames_per_query(pyramid, pyramid.trace,
                                    pyramid._endpoint.frame_size, queries,
                                    rng, n)
        rows.append(["pyramid-oram", n, "-", sum(samples) / len(samples),
                     max(samples)])

    benchmark(lambda: None)
    report.line("page frames across the trusted boundary per query "
                "(m = shelter = sqrt(n); c = 2)")
    report.table(["scheme", "n", "k", "mean frames/query", "max frames/query"],
                 rows)

    by_scheme = {}
    for scheme, n, _k, mean, worst in rows:
        by_scheme.setdefault(scheme, []).append((n, mean, worst))
    # This scheme: worst == mean at every size (the constant-cost claim).
    for n, mean, worst in by_scheme["c-approx"]:
        assert worst == mean, (n, mean, worst)
    # Amortized schemes: worst-case grows like n (full reshuffles), far
    # above their means at the largest size.
    for scheme in ("wang2006", "sqrt-oram"):
        n, mean, worst = by_scheme[scheme][-1]
        assert worst > 1.5 * n, (scheme, worst)
        assert worst > 3 * mean, (scheme, mean, worst)
    # Pyramid rebuilds are logarithmically amortized but still spiky.
    n, mean, worst = by_scheme["pyramid-oram"][-1]
    assert worst > 3 * mean
