"""Executed miniature of Figure 4: the real engine swept over cache sizes.

The paper's Figure 4 is analytical; this bench runs the *actual* system at
reduced scale over the same axis (cache size m at fixed privacy target
c = 2) and reports measured latency, measured privacy ratio, and secure
storage, demonstrating that the executed trade-off curve has the paper's
shape.  Results are also exported as CSV under ``benchmarks/results/``.
"""

from __future__ import annotations

import os

from repro.analysis.plots import ascii_plot
from repro.analysis.sweep import EnginePoint, run_engine_sweep, write_csv

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def test_executed_cache_sweep(report, benchmark):
    points = benchmark.pedantic(
        lambda: run_engine_sweep(
            num_records=60,
            cache_capacities=[4, 8, 16, 24],
            target_c=2.0,
            trials=200,
            workload_length=100,
            seed=31,
        ),
        rounds=1,
        iterations=1,
    )
    report.line("executed engine sweep (n = 60 user pages, c = 2, Table-2 HW)")
    report.table(
        ["m", "k", "c achieved", "c measured", "mean latency (s)",
         "secure bytes"],
        [
            [p.cache_capacity, p.block_size, p.achieved_c, p.measured_c,
             p.mean_latency, p.secure_storage_bytes]
            for p in points
        ],
    )
    report.line(ascii_plot(
        [("measured latency", [p.cache_capacity for p in points],
          [p.mean_latency for p in points])],
        log_x=False, log_y=True, width=44, height=10,
        title="executed response time vs cache size",
        x_label="m", y_label="seconds",
    ))
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    written = write_csv(
        os.path.join(_RESULTS_DIR, "executed_cache_sweep.csv"),
        EnginePoint.csv_header(),
        [p.csv_row() for p in points],
    )
    assert written == len(points)
    latencies = [p.mean_latency for p in points]
    assert latencies == sorted(latencies, reverse=True)
    for point in points:
        assert point.achieved_c <= 2.0 + 1e-9
