"""Ablations of the design choices DESIGN.md calls out.

1. *Randomized vs LRU cache replacement* — the geometric eviction law
   (Eq. 1) requires uniform victims; LRU makes evictions deterministic, so
   a page's landing position becomes concentrated and the measured privacy
   ratio explodes.
2. *Round-robin block schedule* — guarantees every location is rewritten
   once per T requests; we measure scan coverage.
3. *Cipher backends* — cost of the fidelity knob (aes / blake2 / null).
"""

from __future__ import annotations

from repro.analysis.empirical import measure_landing_distribution
from repro.analysis.mixing import measure_displacement
from repro.analysis.plots import ascii_bar_chart
from repro.crypto.rng import SecureRandom as _SR
from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.crypto.rng import SecureRandom
from repro.hardware.cache import LRU_POLICY, RANDOM_POLICY


def _db(policy=RANDOM_POLICY, backend="null", seed=1):
    return PirDatabase.create(
        make_records(40, 16), cache_capacity=8, block_size=8,
        page_capacity=16, reserve_fraction=0.2, cache_policy=policy,
        cipher_backend=backend, trace_enabled=False, seed=seed,
    )


def test_cache_policy_ablation(report, benchmark):
    rows = []
    for policy in (RANDOM_POLICY, LRU_POLICY):
        db = _db(policy=policy, seed=3)
        experiment = measure_landing_distribution(
            db, trials=600, rng=SecureRandom(31)
        )
        rows.append([
            policy,
            db.params.achieved_c,
            experiment.empirical_c(),
            max(experiment.offset_counts) / sum(experiment.offset_counts),
        ])
    benchmark(lambda: None)
    report.line("ablation: cache replacement policy (Eq. 1 requires random)")
    report.table(
        ["policy", "c promised (Eq. 5)", "c measured", "max offset share"],
        rows,
    )
    random_row, lru_row = rows
    # Random replacement honours the bound; LRU concentrates the landing
    # distribution far beyond it.
    assert random_row[2] < random_row[1] * 1.4
    assert lru_row[2] > 5 * lru_row[1]
    # Essentially deterministic landing offset (a page is evicted exactly m
    # requests after entering; the residue below 1.0 comes from trials whose
    # tracked page was already cache-resident with a stale LRU age).
    assert lru_row[3] > 0.7


def test_round_robin_scan_coverage(report, benchmark):
    """Every disk location is written exactly once per scan period."""
    db = _db(seed=4)
    db.disk.trace.enabled = True
    period = db.params.scan_period
    for _ in range(period):
        db.touch()
    writes = db.trace.location_write_counts()
    block_writes = {
        loc: count
        for loc, count in writes.items()
    }
    benchmark(lambda: db.touch())
    covered = sum(1 for loc in range(db.params.num_locations)
                  if block_writes.get(loc, 0) >= 1)
    report.line("round-robin coverage after one scan period")
    report.table(
        ["locations", "written >= once", "scan period T"],
        [[db.params.num_locations, covered, period]],
    )
    assert covered == db.params.num_locations


def test_long_run_mixing(report, benchmark):
    """Beyond Definition 1: the layout keeps mixing — mean page displacement
    converges to the uniform-placement expectation (~n/4 circular)."""
    db = _db(seed=7)
    series = benchmark.pedantic(
        lambda: measure_displacement(db, total_requests=1000, checkpoints=5,
                                     rng=_SR(71)),
        rounds=1, iterations=1,
    )
    report.line("mean displacement from the initial layout (n = "
                f"{series.num_locations}, uniform expectation "
                f"{series.uniform_expectation:.1f})")
    report.line(ascii_bar_chart(
        [str(c) for c in series.checkpoints],
        series.mean_displacement,
        title="requests -> mean circular displacement",
    ))
    assert 0.6 < series.final_relative_to_uniform() < 1.5


def test_cipher_backend_cost(report, benchmark):
    """Wall-clock cost of a query per backend (the simulation-fidelity knob)."""
    import time

    rows = []
    for backend in ("null", "blake2", "aes"):
        db = _db(backend=backend, seed=5)
        started = time.perf_counter()
        count = 30
        for i in range(count):
            db.query(i % 40)
        elapsed = (time.perf_counter() - started) / count
        rows.append([backend, elapsed * 1e3])
    db = _db(backend="blake2", seed=6)
    benchmark(lambda: db.query(7))
    report.line("wall-clock per executed query by cipher backend (k = 8)")
    report.table(["backend", "ms / query (this machine)"], rows)
    by_name = {row[0]: row[1] for row in rows}
    assert by_name["null"] <= by_name["aes"]
