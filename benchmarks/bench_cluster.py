"""Cluster tier benchmark — routed serving, failover chaos, reconvergence.

Exercises ``repro.cluster`` end to end on localhost:

* **cluster.routed** — a fleet of blocking clients drives a pinned query
  stream through the :class:`~repro.cluster.router.ClusterRouter` into
  N in-process backends.  Counts and reply bytes are deterministic and
  gated exactly; sustained QPS is reported informationally (the GIL
  serialises in-process backends, so wall-clock scaling with N is *not*
  a claim this lane makes).
* **cluster.chaos** — the acceptance gate for the fault-tolerant tier:
  mid-traffic, the backend holding the most pinned sessions is
  **killed** (event loop slammed, no drain).  Every client must still
  complete every request — router failover + RESUME adoption +
  retransmission through the shared reply cache — with zero acknowledged
  requests lost and nothing double-applied (``sum(engine requests) ==
  replies delivered``: a retransmission the dead backend already applied
  is answered from cache, never re-executed).  The killed backend then
  restarts and the run asserts membership reconverges to full strength.

Both phases fail loudly on any lost, duplicated, or wrong-byte reply.

Besides the pytest checks, this file is a script::

    PYTHONPATH=src python benchmarks/bench_cluster.py --quick --out run.jsonl

emitting the perf-gate JSONL layout diffed by ``compare_bench.py``
against ``benchmarks/results/perf_baseline_cluster.jsonl``.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import tempfile
import threading
import time
from os import path
from typing import List, Optional

try:
    import repro  # noqa: F401
except ImportError:  # script mode from a checkout without PYTHONPATH
    sys.path.insert(0, path.join(path.dirname(__file__), "..", "src"))

from repro.baselines import make_records
from repro.cluster import ClusterRouter, RouterThread, build_cluster
from repro.faults.retry import RetryPolicy
from repro.net import NetworkClient

#: Pinned workload shape — change it and the committed baseline together.
DEFAULT_SEED = 1177
DEFAULT_QUERIES = 160
QUICK_QUERIES = 64
_BENCH_RECORDS = 64
_BENCH_PAGE_SIZE = 64
_BENCH_CACHE = 8
_CLIENTS = 4
_BACKENDS = 2
#: Fraction of the chaos workload completed before the kill lands.
_KILL_AFTER_FRACTION = 0.25


@contextlib.contextmanager
def _cluster(seed: int, backends: int = _BACKENDS, router_kw=None):
    """N seeded backends behind a router, all on loopback."""
    records = make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE)
    with tempfile.TemporaryDirectory() as snap_dir:
        handles = build_cluster(
            records, backends, snap_dir,
            cache_capacity=_BENCH_CACHE, seed=seed,
            target_c=2.0, page_capacity=_BENCH_PAGE_SIZE,
            cipher_backend="blake2", trace_enabled=False,
        )
        try:
            for handle in handles:
                handle.start()
            kw = dict(probe_interval=0.05, probe_timeout=1.0,
                      eject_after=2, readmit_after=2,
                      connect_timeout=1.0, backend_timeout=5.0)
            kw.update(router_kw or {})
            router = ClusterRouter([h.spec for h in handles], **kw)
            with RouterThread(router) as thread:
                yield handles, router, thread
        finally:
            for handle in handles:
                handle.kill()
            for handle in handles:
                handle.db.close()


class _Fleet:
    """Blocking clients on threads; collects per-reply correctness."""

    def __init__(self, host: str, port: int, clients: int, per_client: int,
                 expected: List[bytes]):
        self.host = host
        self.port = port
        self.per_client = per_client
        self.expected = expected
        self.ok = 0
        self.bytes = 0
        self.errors: List[BaseException] = []
        self._lock = threading.Lock()
        self._progress_callbacks: List = []
        self._threads = [
            threading.Thread(target=self._drive, args=(index,), daemon=True)
            for index in range(clients)
        ]

    def on_progress(self, threshold: int, callback) -> None:
        """Run ``callback`` once, when total completions cross ``threshold``."""
        self._progress_callbacks.append([threshold, callback])

    def _drive(self, index: int) -> None:
        try:
            client = NetworkClient(
                self.host, self.port, timeout=10.0, read_timeout=10.0,
                retry=RetryPolicy(max_attempts=4, base_delay=0.05,
                                  max_delay=0.5),
                rng_seed=DEFAULT_SEED + index,
            )
            try:
                for step in range(self.per_client):
                    page_id = (index * self.per_client + step) % len(
                        self.expected
                    )
                    payload = client.query(page_id)
                    assert payload == self.expected[page_id], (
                        f"reply bytes diverged on page {page_id}"
                    )
                    with self._lock:
                        self.ok += 1
                        self.bytes += len(payload)
                        fired = [
                            entry for entry in self._progress_callbacks
                            if self.ok >= entry[0]
                        ]
                        for entry in fired:
                            self._progress_callbacks.remove(entry)
                    for _, callback in fired:
                        callback()
            finally:
                client.close()
        except BaseException as exc:  # surfaced by join()
            with self._lock:
                self.errors.append(exc)

    def run(self) -> float:
        start = time.perf_counter()
        for thread in self._threads:
            thread.start()
        for thread in self._threads:
            thread.join(timeout=120.0)
        wall = time.perf_counter() - start
        if self.errors:
            raise AssertionError(
                f"{len(self.errors)} client(s) failed; first: "
                f"{self.errors[0]!r}"
            ) from self.errors[0]
        return wall


def _wait_until(predicate, timeout: float = 15.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def run_routed(queries: int, seed: int, backends: int = _BACKENDS):
    """Routed fleet, no faults; returns (count, bytes, wall)."""
    expected = make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE)
    per_client = queries // _CLIENTS
    with _cluster(seed, backends=backends) as (handles, router, thread):
        fleet = _Fleet(thread.host, thread.port, _CLIENTS, per_client,
                       expected)
        wall = fleet.run()
        served = sum(h.db.engine.request_count for h in handles)
        total = per_client * _CLIENTS
        assert fleet.ok == total, f"{fleet.ok}/{total} requests completed"
        assert served == total, (
            f"engines served {served} requests for {total} queries "
            "(lost or double-applied)"
        )
        assert router.counters.get("sessions.routed") == _CLIENTS
        # Orderly BYEs released every pin.
        assert _wait_until(lambda: sum(
            state.pinned for state in router.membership.members) == 0), (
            "sessions stayed pinned after close"
        )
    return total, fleet.bytes, wall


def run_chaos(queries: int, seed: int):
    """Kill-one-backend-under-load; returns (count, bytes, wall, stats).

    The in-run gates ARE the acceptance criteria: zero acknowledged
    requests lost, exactly-once application, membership reconvergence.
    """
    expected = make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE)
    per_client = queries // _CLIENTS
    total = per_client * _CLIENTS
    with _cluster(seed, router_kw={"backend_timeout": 2.0}) as (
            handles, router, thread):
        fleet = _Fleet(thread.host, thread.port, _CLIENTS, per_client,
                       expected)
        killed = {}

        def kill_busiest():
            by_address = {h.spec.address: h for h in handles}
            state = max(router.membership.members,
                        key=lambda member: member.pinned)
            victim = by_address[state.address]
            victim.kill()
            killed["handle"] = victim
            killed["address"] = state.address

        fleet.on_progress(max(1, int(total * _KILL_AFTER_FRACTION)),
                          kill_busiest)
        wall = fleet.run()

        # Chaos gate 1: nothing acknowledged was lost — every client
        # completed every request despite the mid-traffic kill.
        assert killed, "the kill trigger never fired"
        assert fleet.ok == total, (
            f"{fleet.ok}/{total} requests completed through the kill"
        )
        # Chaos gate 2: exactly-once.  Killed engines survive in-process,
        # so the sum counts every application that ever happened; a
        # retransmission the dead backend had already applied was served
        # from the shared reply cache (duplicate), never re-executed.
        served = sum(h.db.engine.request_count for h in handles)
        duplicates = sum(
            h.frontend.counters.get("requests.duplicate") for h in handles
        )
        assert served == total, (
            f"engines served {served} requests for {total} delivered "
            f"replies ({duplicates} duplicates absorbed) — lost or "
            "double-applied"
        )
        # Chaos gate 3: the cluster reconverges to full strength.
        assert _wait_until(
            lambda: not router.membership.member(killed["address"]).up), (
            "dead member never ejected"
        )
        killed["handle"].restart()
        assert _wait_until(lambda: router.membership.at_full_strength), (
            "membership never reconverged after the restart"
        )
        stats = {
            "failovers": router.counters.get("failovers"),
            "retransmits": router.counters.get("retransmits"),
            "duplicates": duplicates,
        }
    return total, fleet.bytes, wall, stats


# ---------------------------------------------------------------------------
# Pytest checks (run explicitly via the CI cluster lane)
# ---------------------------------------------------------------------------


def test_routed_exact_and_clean():
    count, nbytes, _wall = run_routed(16, DEFAULT_SEED)
    assert count == 16
    assert nbytes == 16 * _BENCH_PAGE_SIZE


def test_chaos_kill_under_load_exactly_once():
    count, nbytes, _wall, stats = run_chaos(32, DEFAULT_SEED)
    assert count == 32
    assert nbytes == 32 * _BENCH_PAGE_SIZE
    # The kill landed mid-traffic: at least one session had to move.
    assert stats["failovers"] >= 1


# ---------------------------------------------------------------------------
# Script mode: structured JSONL for the CI perf gate
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    try:
        from bench_engine import calibration_seconds  # script mode
    except ImportError:
        from benchmarks.bench_engine import calibration_seconds
    from repro.obs import write_jsonl

    parser = argparse.ArgumentParser(
        description="cluster tier benchmark (JSONL for the CI perf gate)"
    )
    parser.add_argument("--quick", action="store_true",
                        help=f"run {QUICK_QUERIES} queries instead of "
                             f"{DEFAULT_QUERIES}")
    parser.add_argument("--queries", type=int, default=0,
                        help="explicit query count (overrides --quick); "
                             f"must be a multiple of {_CLIENTS}")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--out", default="",
                        help="JSONL output path (default stdout)")
    args = parser.parse_args(argv)

    queries = args.queries or (QUICK_QUERIES if args.quick else DEFAULT_QUERIES)
    if queries % _CLIENTS:
        print(f"error: --queries must be a multiple of {_CLIENTS}",
              file=sys.stderr)
        return 2
    calibration = calibration_seconds()

    solo_count, _solo_bytes, solo_wall = run_routed(queries, args.seed,
                                                    backends=1)
    routed_count, routed_bytes, routed_wall = run_routed(queries, args.seed)
    chaos_count, chaos_bytes, chaos_wall, chaos_stats = run_chaos(
        queries, args.seed
    )

    rows = [{
        "kind": "meta",
        "queries": queries,
        "seed": args.seed,
        "pages": _BENCH_RECORDS,
        "block_size": None,  # filled below
        "page_size": _BENCH_PAGE_SIZE,
        "clients": _CLIENTS,
        "backends": _BACKENDS,
        "calibration_s": calibration,
        # Informational (not gated): in-process backends share the GIL,
        # so routed QPS measures router overhead, not horizontal scale.
        "qps_1_backend": solo_count / solo_wall if solo_wall > 0 else 0.0,
        "qps_n_backends": (routed_count / routed_wall
                           if routed_wall > 0 else 0.0),
        "chaos_failovers": chaos_stats["failovers"],
        "chaos_retransmits": chaos_stats["retransmits"],
        "chaos_duplicates": chaos_stats["duplicates"],
    }]
    rows.append({
        "kind": "phase", "name": "cluster.routed",
        "count": routed_count, "bytes": routed_bytes,
        "virtual_s": 0.0, "wall_s": routed_wall,
    })
    rows.append({
        "kind": "phase", "name": "cluster.chaos",
        "count": chaos_count, "bytes": chaos_bytes,
        "virtual_s": 0.0, "wall_s": chaos_wall,
    })

    from repro.core.params import SystemParameters

    rows[0]["block_size"] = SystemParameters.solve(
        _BENCH_RECORDS, _BENCH_CACHE, 2.0,
        page_capacity=_BENCH_PAGE_SIZE,
    ).block_size

    if args.out:
        written = write_jsonl(args.out, rows)
        print(f"wrote {written} rows ({queries} queries through "
              f"{_BACKENDS} backends, {chaos_stats['failovers']} "
              f"failover(s) and {chaos_stats['duplicates']} duplicate(s) "
              f"absorbed under chaos) to {args.out}")
    else:
        import json

        for row in rows:
            print(json.dumps(row, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
