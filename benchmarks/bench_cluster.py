"""Cluster tier benchmark — routed serving, failover chaos, reconvergence.

Exercises ``repro.cluster`` end to end on localhost:

* **cluster.routed** — a fleet of blocking clients drives a pinned query
  stream through the :class:`~repro.cluster.router.ClusterRouter` into
  N in-process backends.  Counts and reply bytes are deterministic and
  gated exactly; sustained QPS is reported informationally (the GIL
  serialises in-process backends, so wall-clock scaling with N is *not*
  a claim this lane makes).
* **cluster.chaos** — the acceptance gate for the fault-tolerant tier:
  mid-traffic, the backend holding the most pinned sessions is
  **killed** (event loop slammed, no drain).  Every client must still
  complete every request — router failover + RESUME adoption +
  retransmission through the shared reply cache — with zero acknowledged
  requests lost and nothing double-applied (``sum(engine requests) ==
  replies delivered``: a retransmission the dead backend already applied
  is answered from cache, never re-executed).  The killed backend then
  restarts and the run asserts membership reconverges to full strength.
* **cluster.replicated** — the acceptance gate for sealed write
  replication (DESIGN.md §13): a write-capable fleet updates disjoint
  pages through a replication-connected mesh, reading every write back
  immediately (any stale read fails the run); the busiest backend is
  killed mid-stream, writes keep landing through failover (a
  read-your-writes shed is retried as a fresh request, never served
  stale), and after the victim restarts the run asserts both members
  converge to byte-identical trusted state (``content_digest``).

All phases fail loudly on any lost, duplicated, stale, or wrong-byte
reply.

Besides the pytest checks, this file is a script::

    PYTHONPATH=src python benchmarks/bench_cluster.py --quick --out run.jsonl

emitting the perf-gate JSONL layout diffed by ``compare_bench.py``
against ``benchmarks/results/perf_baseline_cluster.jsonl``.  The
``--phases`` flag selects which phases run — the ``cluster-replication``
CI lane runs ``--phases replicated`` against its own baseline
(``perf_baseline_cluster_repl.jsonl``).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import tempfile
import threading
import time
from os import path
from typing import Dict, List, Optional

try:
    import repro  # noqa: F401
except ImportError:  # script mode from a checkout without PYTHONPATH
    sys.path.insert(0, path.join(path.dirname(__file__), "..", "src"))

from repro.baselines import make_records
from repro.cluster import (
    ClusterRouter,
    RouterThread,
    build_cluster,
    connect_replication,
)
from repro.errors import DegradedServiceError
from repro.faults.retry import RetryPolicy
from repro.net import NetworkClient

#: Pinned workload shape — change it and the committed baseline together.
DEFAULT_SEED = 1177
DEFAULT_QUERIES = 160
QUICK_QUERIES = 64
_BENCH_RECORDS = 64
_BENCH_PAGE_SIZE = 64
_BENCH_CACHE = 8
_CLIENTS = 4
_BACKENDS = 2
#: Fraction of the chaos workload completed before the kill lands.
_KILL_AFTER_FRACTION = 0.25
#: Fixed write payload width keeps the replicated phase's byte column
#: deterministic (must stay <= _BENCH_PAGE_SIZE, the page capacity).
_REPL_PAYLOAD_LEN = 24
#: Outer retry budget for a write/read-back op that keeps shedding
#: retryably (read-your-writes refusals during failover).
_REPL_OP_DEADLINE = 30.0


def _repl_payload(page_id: int) -> bytes:
    return f"repl-{page_id:05d}".encode().ljust(_REPL_PAYLOAD_LEN, b".")


@contextlib.contextmanager
def _cluster(seed: int, backends: int = _BACKENDS, router_kw=None,
             replicated: bool = False):
    """N seeded backends behind a router, all on loopback.

    ``replicated=True`` additionally wires the started members into a
    full sealed-replication mesh with a durable backlog under the
    snapshot directory — the write-capable configuration DESIGN.md §13
    describes.
    """
    records = make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE)
    with tempfile.TemporaryDirectory() as snap_dir:
        handles = build_cluster(
            records, backends, snap_dir,
            cache_capacity=_BENCH_CACHE, seed=seed,
            target_c=2.0, page_capacity=_BENCH_PAGE_SIZE,
            cipher_backend="blake2", trace_enabled=False,
        )
        try:
            for handle in handles:
                handle.start()
            if replicated:
                durable = os.path.join(snap_dir, "repl")
                os.makedirs(durable, exist_ok=True)
                connect_replication(handles, durable_dir=durable)
            kw = dict(probe_interval=0.05, probe_timeout=1.0,
                      eject_after=2, readmit_after=2,
                      connect_timeout=1.0, backend_timeout=5.0)
            kw.update(router_kw or {})
            router = ClusterRouter([h.spec for h in handles], **kw)
            with RouterThread(router) as thread:
                yield handles, router, thread
        finally:
            for handle in handles:
                handle.kill()
            for handle in handles:
                handle.db.close()


class _Fleet:
    """Blocking clients on threads; collects per-reply correctness."""

    def __init__(self, host: str, port: int, clients: int, per_client: int,
                 expected: List[bytes]):
        self.host = host
        self.port = port
        self.per_client = per_client
        self.expected = expected
        self.ok = 0
        self.bytes = 0
        self.errors: List[BaseException] = []
        self._lock = threading.Lock()
        self._progress_callbacks: List = []
        self._threads = [
            threading.Thread(target=self._drive, args=(index,), daemon=True)
            for index in range(clients)
        ]

    def on_progress(self, threshold: int, callback) -> None:
        """Run ``callback`` once, when total completions cross ``threshold``."""
        self._progress_callbacks.append([threshold, callback])

    def _drive(self, index: int) -> None:
        try:
            client = NetworkClient(
                self.host, self.port, timeout=10.0, read_timeout=10.0,
                retry=RetryPolicy(max_attempts=4, base_delay=0.05,
                                  max_delay=0.5),
                rng_seed=DEFAULT_SEED + index,
            )
            try:
                for step in range(self.per_client):
                    page_id = (index * self.per_client + step) % len(
                        self.expected
                    )
                    payload = client.query(page_id)
                    assert payload == self.expected[page_id], (
                        f"reply bytes diverged on page {page_id}"
                    )
                    with self._lock:
                        self.ok += 1
                        self.bytes += len(payload)
                        fired = [
                            entry for entry in self._progress_callbacks
                            if self.ok >= entry[0]
                        ]
                        for entry in fired:
                            self._progress_callbacks.remove(entry)
                    for _, callback in fired:
                        callback()
            finally:
                client.close()
        except BaseException as exc:  # surfaced by join()
            with self._lock:
                self.errors.append(exc)

    def run(self) -> float:
        start = time.perf_counter()
        for thread in self._threads:
            thread.start()
        for thread in self._threads:
            thread.join(timeout=120.0)
        wall = time.perf_counter() - start
        if self.errors:
            raise AssertionError(
                f"{len(self.errors)} client(s) failed; first: "
                f"{self.errors[0]!r}"
            ) from self.errors[0]
        return wall


class _WriteFleet(_Fleet):
    """Write-then-read-back clients over disjoint page ranges.

    Each client owns ``per_client`` pages nobody else touches and, per
    step, updates one and immediately queries it back — the read-your-
    writes gate.  A retryable shed (``DegradedServiceError``: the
    routed member cannot yet prove it holds the write, or no caught-up
    failover candidate exists) is retried as a *fresh* request until
    :data:`_REPL_OP_DEADLINE`; a stale read-back fails the run on the
    spot.  One write per page keeps the final per-page state
    order-independent, so the post-run convergence gate is exact.
    """

    def _retry_degraded(self, op):
        deadline = time.monotonic() + _REPL_OP_DEADLINE
        while True:
            try:
                return op()
            except DegradedServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def _drive(self, index: int) -> None:
        try:
            client = NetworkClient(
                self.host, self.port, timeout=10.0, read_timeout=10.0,
                retry=RetryPolicy(max_attempts=4, base_delay=0.05,
                                  max_delay=0.5),
                rng_seed=DEFAULT_SEED + index,
            )
            try:
                for step in range(self.per_client):
                    page_id = index * self.per_client + step
                    payload = _repl_payload(page_id)
                    self._retry_degraded(
                        lambda: client.update(page_id, payload)
                    )
                    echoed = self._retry_degraded(
                        lambda: client.query(page_id)
                    )
                    assert echoed == payload, (
                        f"STALE READ: page {page_id} read back "
                        f"{echoed!r} after acknowledged write of "
                        f"{payload!r}"
                    )
                    with self._lock:
                        self.ok += 1
                        self.bytes += len(echoed)
                        fired = [
                            entry for entry in self._progress_callbacks
                            if self.ok >= entry[0]
                        ]
                        for entry in fired:
                            self._progress_callbacks.remove(entry)
                    for _, callback in fired:
                        callback()
            finally:
                client.close()
        except BaseException as exc:  # surfaced by join()
            with self._lock:
                self.errors.append(exc)


def _wait_until(predicate, timeout: float = 15.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def run_routed(queries: int, seed: int, backends: int = _BACKENDS):
    """Routed fleet, no faults; returns (count, bytes, wall)."""
    expected = make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE)
    per_client = queries // _CLIENTS
    with _cluster(seed, backends=backends) as (handles, router, thread):
        fleet = _Fleet(thread.host, thread.port, _CLIENTS, per_client,
                       expected)
        wall = fleet.run()
        served = sum(h.db.engine.request_count for h in handles)
        total = per_client * _CLIENTS
        assert fleet.ok == total, f"{fleet.ok}/{total} requests completed"
        assert served == total, (
            f"engines served {served} requests for {total} queries "
            "(lost or double-applied)"
        )
        assert router.counters.get("sessions.routed") == _CLIENTS
        # Orderly BYEs released every pin.
        assert _wait_until(lambda: sum(
            state.pinned for state in router.membership.members) == 0), (
            "sessions stayed pinned after close"
        )
    return total, fleet.bytes, wall


def run_chaos(queries: int, seed: int):
    """Kill-one-backend-under-load; returns (count, bytes, wall, stats).

    The in-run gates ARE the acceptance criteria: zero acknowledged
    requests lost, exactly-once application, membership reconvergence.
    """
    expected = make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE)
    per_client = queries // _CLIENTS
    total = per_client * _CLIENTS
    with _cluster(seed, router_kw={"backend_timeout": 2.0}) as (
            handles, router, thread):
        fleet = _Fleet(thread.host, thread.port, _CLIENTS, per_client,
                       expected)
        killed = {}

        def kill_busiest():
            by_address = {h.spec.address: h for h in handles}
            state = max(router.membership.members,
                        key=lambda member: member.pinned)
            victim = by_address[state.address]
            victim.kill()
            killed["handle"] = victim
            killed["address"] = state.address

        fleet.on_progress(max(1, int(total * _KILL_AFTER_FRACTION)),
                          kill_busiest)
        wall = fleet.run()

        # Chaos gate 1: nothing acknowledged was lost — every client
        # completed every request despite the mid-traffic kill.
        assert killed, "the kill trigger never fired"
        assert fleet.ok == total, (
            f"{fleet.ok}/{total} requests completed through the kill"
        )
        # Chaos gate 2: exactly-once.  Killed engines survive in-process,
        # so the sum counts every application that ever happened; a
        # retransmission the dead backend had already applied was served
        # from the shared reply cache (duplicate), never re-executed.
        served = sum(h.db.engine.request_count for h in handles)
        duplicates = sum(
            h.frontend.counters.get("requests.duplicate") for h in handles
        )
        assert served == total, (
            f"engines served {served} requests for {total} delivered "
            f"replies ({duplicates} duplicates absorbed) — lost or "
            "double-applied"
        )
        # Chaos gate 3: the cluster reconverges to full strength.
        assert _wait_until(
            lambda: not router.membership.member(killed["address"]).up), (
            "dead member never ejected"
        )
        killed["handle"].restart()
        assert _wait_until(lambda: router.membership.at_full_strength), (
            "membership never reconverged after the restart"
        )
        stats = {
            "failovers": router.counters.get("failovers"),
            "retransmits": router.counters.get("retransmits"),
            "duplicates": duplicates,
        }
    return total, fleet.bytes, wall, stats


def run_replicated(seed: int):
    """Replicated writes under a mid-stream kill; returns
    (count, bytes, wall, stats).

    In-run gates (DESIGN.md §13 acceptance):

    * **zero stale reads** — every acknowledged write is read back
      immediately and must echo exactly, through the kill and the
      failovers it forces;
    * **replica convergence** — after the victim restarts and the mesh
      catches up, both members hold every written page at its written
      value and their ``content_digest`` matches byte for byte.

    The workload writes each page exactly once (``_BENCH_RECORDS``
    pages split across ``_CLIENTS`` clients), so it is sized by the
    record count, not ``--queries`` — single-writer-per-page is the
    ordering discipline sealed replication guarantees convergence
    under.
    """
    per_client = _BENCH_RECORDS // _CLIENTS
    total = per_client * _CLIENTS
    with _cluster(seed, router_kw={"backend_timeout": 2.0},
                  replicated=True) as (handles, router, thread):
        fleet = _WriteFleet(thread.host, thread.port, _CLIENTS, per_client,
                            expected=[])
        killed = {}

        def kill_busiest():
            by_address = {h.spec.address: h for h in handles}
            state = max(router.membership.members,
                        key=lambda member: member.pinned)
            victim = by_address[state.address]
            victim.kill()
            killed["handle"] = victim
            killed["address"] = state.address
            # The crashed member comes back mid-run (a process
            # supervisor restart).  Sessions whose last acknowledged
            # write died with the victim un-streamed are *correctly*
            # refused everywhere else until this happens — the restart
            # replays the durable backlog and unwedges them.
            restarter = threading.Timer(1.5, victim.restart)
            restarter.daemon = True
            restarter.start()
            killed["restarter"] = restarter

        fleet.on_progress(max(1, int(total * _KILL_AFTER_FRACTION)),
                          kill_busiest)
        wall = fleet.run()

        # Replication gate 1: zero stale reads.  Every write/read-back
        # pair completed (the stale-read assert lives inside the fleet).
        assert killed, "the kill trigger never fired"
        assert fleet.ok == total, (
            f"{fleet.ok}/{total} write/read-back pairs completed through "
            "the kill"
        )
        # Replication gate 2: the restarted victim rejoins and the mesh
        # drains its backlog both ways — every member has applied
        # everything every peer ever emitted.
        killed["restarter"].join()
        assert _wait_until(lambda: router.membership.at_full_strength), (
            "membership never reconverged after the restart"
        )

        def caught_up():
            for mine in handles:
                for peer in handles:
                    if mine is peer:
                        continue
                    applied = mine.repl_applier.applied_for(
                        peer.repl_log.origin
                    )
                    if applied < peer.repl_log.last_seq:
                        return False
            return True

        assert _wait_until(caught_up, timeout=30.0), (
            "replication backlog never drained after the restart"
        )
        sheds = router.counters.get("ryw.rejected")
        stats = {
            "failovers": router.counters.get("failovers"),
            "retransmits": router.counters.get("retransmits"),
            "ryw_checks": router.counters.get("ryw.checks"),
            "ryw_rejected": sheds,
        }
        # Replication gate 3: convergence.  Quiesce both members (kill
        # stops the applier-serving workers), then compare trusted
        # state directly — every page at its written value on *both*
        # members, and byte-identical content digests.
        for handle in handles:
            handle.kill()
        for page_id in range(total):
            expected = _repl_payload(page_id)
            for handle in handles:
                got = handle.db.query(page_id)
                assert got == expected, (
                    f"DIVERGED: page {page_id} on {handle.spec.address} "
                    f"is {got!r}, expected {expected!r}"
                )
        digests = {h.db.content_digest() for h in handles}
        assert len(digests) == 1, (
            f"content digests diverged across members: {digests}"
        )
    return total, fleet.bytes, wall, stats


# ---------------------------------------------------------------------------
# Pytest checks (run explicitly via the CI cluster lane)
# ---------------------------------------------------------------------------


def test_routed_exact_and_clean():
    count, nbytes, _wall = run_routed(16, DEFAULT_SEED)
    assert count == 16
    assert nbytes == 16 * _BENCH_PAGE_SIZE


def test_chaos_kill_under_load_exactly_once():
    count, nbytes, _wall, stats = run_chaos(32, DEFAULT_SEED)
    assert count == 32
    assert nbytes == 32 * _BENCH_PAGE_SIZE
    # The kill landed mid-traffic: at least one session had to move.
    assert stats["failovers"] >= 1


def test_replicated_writes_zero_stale_reads_and_convergence():
    count, nbytes, _wall, stats = run_replicated(DEFAULT_SEED)
    assert count == _BENCH_RECORDS
    assert nbytes == _BENCH_RECORDS * _REPL_PAYLOAD_LEN
    # The kill landed mid-stream: at least one writing session moved,
    # and at least one adoption was held to the read-your-writes gate
    # (sessions that never held a watermark on the dead member skip it).
    assert stats["failovers"] >= 1
    assert stats["ryw_checks"] >= 1


# ---------------------------------------------------------------------------
# Script mode: structured JSONL for the CI perf gate
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    try:
        from bench_engine import calibration_seconds  # script mode
    except ImportError:
        from benchmarks.bench_engine import calibration_seconds
    from repro.obs import write_jsonl

    parser = argparse.ArgumentParser(
        description="cluster tier benchmark (JSONL for the CI perf gate)"
    )
    parser.add_argument("--quick", action="store_true",
                        help=f"run {QUICK_QUERIES} queries instead of "
                             f"{DEFAULT_QUERIES}")
    parser.add_argument("--queries", type=int, default=0,
                        help="explicit query count (overrides --quick); "
                             f"must be a multiple of {_CLIENTS}")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--phases", nargs="+",
                        choices=["routed", "chaos", "replicated"],
                        default=["routed", "chaos"],
                        help="which phases to run (default: routed chaos; "
                             "the cluster-replication CI lane runs "
                             "'replicated' alone against its own baseline)")
    parser.add_argument("--out", default="",
                        help="JSONL output path (default stdout)")
    args = parser.parse_args(argv)

    queries = args.queries or (QUICK_QUERIES if args.quick else DEFAULT_QUERIES)
    if queries % _CLIENTS:
        print(f"error: --queries must be a multiple of {_CLIENTS}",
              file=sys.stderr)
        return 2
    calibration = calibration_seconds()

    meta: Dict[str, object] = {
        "kind": "meta",
        "queries": queries,
        "seed": args.seed,
        "pages": _BENCH_RECORDS,
        "block_size": None,  # filled below
        "page_size": _BENCH_PAGE_SIZE,
        "clients": _CLIENTS,
        "backends": _BACKENDS,
        "calibration_s": calibration,
    }
    rows: List[dict] = [meta]
    summary = []

    if "routed" in args.phases:
        solo_count, _solo_bytes, solo_wall = run_routed(queries, args.seed,
                                                        backends=1)
        routed_count, routed_bytes, routed_wall = run_routed(queries,
                                                             args.seed)
        # Informational (not gated): in-process backends share the GIL,
        # so routed QPS measures router overhead, not horizontal scale.
        meta["qps_1_backend"] = (solo_count / solo_wall
                                 if solo_wall > 0 else 0.0)
        meta["qps_n_backends"] = (routed_count / routed_wall
                                  if routed_wall > 0 else 0.0)
        rows.append({
            "kind": "phase", "name": "cluster.routed",
            "count": routed_count, "bytes": routed_bytes,
            "virtual_s": 0.0, "wall_s": routed_wall,
        })
        summary.append(f"{routed_count} routed queries")
    if "chaos" in args.phases:
        chaos_count, chaos_bytes, chaos_wall, chaos_stats = run_chaos(
            queries, args.seed
        )
        meta["chaos_failovers"] = chaos_stats["failovers"]
        meta["chaos_retransmits"] = chaos_stats["retransmits"]
        meta["chaos_duplicates"] = chaos_stats["duplicates"]
        rows.append({
            "kind": "phase", "name": "cluster.chaos",
            "count": chaos_count, "bytes": chaos_bytes,
            "virtual_s": 0.0, "wall_s": chaos_wall,
        })
        summary.append(
            f"{chaos_stats['failovers']} failover(s) and "
            f"{chaos_stats['duplicates']} duplicate(s) absorbed under chaos"
        )
    if "replicated" in args.phases:
        repl_count, repl_bytes, repl_wall, repl_stats = run_replicated(
            args.seed
        )
        meta["repl_failovers"] = repl_stats["failovers"]
        meta["repl_ryw_checks"] = repl_stats["ryw_checks"]
        meta["repl_ryw_rejected"] = repl_stats["ryw_rejected"]
        rows.append({
            "kind": "phase", "name": "cluster.replicated",
            "count": repl_count, "bytes": repl_bytes,
            "virtual_s": 0.0, "wall_s": repl_wall,
        })
        summary.append(
            f"{repl_count} replicated writes read back with zero stale "
            f"reads ({repl_stats['ryw_checks']} read-your-writes "
            f"check(s), {repl_stats['ryw_rejected']} shed(s)) and "
            "converged digests"
        )

    from repro.core.params import SystemParameters

    meta["block_size"] = SystemParameters.solve(
        _BENCH_RECORDS, _BENCH_CACHE, 2.0,
        page_capacity=_BENCH_PAGE_SIZE,
    ).block_size

    if args.out:
        written = write_jsonl(args.out, rows)
        print(f"wrote {written} rows through {_BACKENDS} backends "
              f"({'; '.join(summary)}) to {args.out}")
    else:
        import json

        for row in rows:
            print(json.dumps(row, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
