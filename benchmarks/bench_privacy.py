"""Definition 1 / Eqs. 1-5 — empirical privacy of the executed scheme.

Not a figure in the paper (its privacy argument is analytical); this bench
is the missing measurement: run the real engine, track page relocations,
and compare the landing distribution and its max/min ratio against the
closed forms.  Also sweeps the cache size to exhibit the paper's c -> 1
convergence (end of §4.2).
"""

from __future__ import annotations

import pytest

from repro.analysis.empirical import measure_landing_distribution
from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.core.params import achieved_privacy
from repro.crypto.rng import SecureRandom


def _database(num_records=40, cache=8, block=8, seed=1):
    return PirDatabase.create(
        make_records(num_records, 16),
        cache_capacity=cache,
        block_size=block,
        page_capacity=16,
        reserve_fraction=0.2,
        cipher_backend="null",
        trace_enabled=False,
        seed=seed,
    )


def test_landing_distribution_vs_theory(report, benchmark):
    db = _database()
    experiment = benchmark.pedantic(
        lambda: measure_landing_distribution(db, trials=1500,
                                             rng=SecureRandom(11)),
        rounds=1,
        iterations=1,
    )
    theory = experiment.theoretical_offset_probabilities()
    observed = experiment.observed_offset_frequencies()
    report.line(
        f"landing distribution by scan offset "
        f"(n={experiment.num_locations}, k={experiment.block_size}, "
        f"m={experiment.cache_capacity}, trials={experiment.trials})"
    )
    report.table(
        ["offset t", "theory P(t)", "observed", "abs err"],
        [
            [t + 1, theory[t], observed[t], abs(theory[t] - observed[t])]
            for t in range(len(theory))
        ],
    )
    c_theory = achieved_privacy(
        experiment.num_locations, experiment.cache_capacity, experiment.block_size
    )
    c_measured = experiment.empirical_c()
    report.line()
    report.table(
        ["quantity", "value"],
        [
            ["configured c (Eq. 5)", c_theory],
            ["measured c (max/min offsets)", c_measured],
            ["measured c (geometric MLE fit)", experiment.fitted_c()],
            ["total variation error", experiment.total_variation_error()],
            ["mean eviction time (theory = m)", experiment.mean_eviction_time()],
        ],
    )
    assert experiment.total_variation_error() < 0.06
    assert c_measured == pytest.approx(c_theory, rel=0.3)


def test_privacy_converges_with_cache_size(report, benchmark):
    """Eq. 5: for fixed T = n/k, c -> 1 as m grows (paper, end of §4.2)."""
    rows = []
    for cache in (4, 8, 16, 32):
        db = _database(cache=cache, seed=cache)
        experiment = measure_landing_distribution(
            db, trials=400, rng=SecureRandom(100 + cache)
        )
        c_theory = achieved_privacy(db.params.num_locations, cache,
                                    db.params.block_size)
        rows.append([cache, db.params.scan_period, c_theory,
                     experiment.empirical_c()])
    benchmark(lambda: achieved_privacy(48, 32, 8))
    report.line("privacy level vs cache size at fixed k = 8 (n = 48)")
    report.table(["m", "T", "c (Eq. 5)", "c (measured)"], rows)
    theory_column = [row[2] for row in rows]
    assert theory_column == sorted(theory_column, reverse=True)
    # Measured values should track the theoretical ordering downward too.
    assert rows[0][3] > rows[-1][3]
