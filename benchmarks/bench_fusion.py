"""Fused batch engine benchmark — one disk pass per query window.

Quantifies the tentpole of the batch-fusion PR: a batch of ``B`` operations
grouped into round-robin windows of at most ``k`` ops costs **one** physical
read of the k-frame block per window (plus one extra frame per op) and one
journaled write-back, instead of the serial loop's ``k + 1`` reads and full
write-back *per op*.  With the IBM 4764 seek/transfer model and a journaled
engine the per-query virtual cost must drop at least 2x for ``B = k = 8``.

Three gates run in script mode (and as pytest checks):

* **Byte identity** — fused replies must equal the serial loop's, slot by
  slot, on twin same-seed databases (exit 2 on divergence: correctness).
* **Read collapse** — the deterministic ``batch.fused.*`` counters must
  show exactly one block read and ``B`` extra reads per window (exit 2).
* **Virtual speedup** — serial per-query virtual time over fused per-query
  virtual time must be >= 2x (exit 1: the perf claim of the PR).

Besides the pytest checks, this file is a script::

    PYTHONPATH=src python benchmarks/bench_fusion.py --quick --out run.jsonl

emitting the perf-gate JSONL layout (meta line + phase rows) that
``benchmarks/compare_bench.py`` diffs against
``benchmarks/results/perf_baseline_fusion.jsonl``.  The count/bytes/
virtual-second columns are deterministic under the pinned seed.
"""

from __future__ import annotations

import argparse
import sys
import time
from os import path
from typing import List, Optional

try:
    import repro  # noqa: F401
except ImportError:  # script mode from a checkout without PYTHONPATH
    sys.path.insert(0, path.join(path.dirname(__file__), "..", "src"))

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.core.engine import BatchOp
from repro.core.journal import MemoryJournal
from repro.hardware.specs import IBM_4764

#: Pinned workload shape — change it and the committed baseline together.
DEFAULT_SEED = 4321
DEFAULT_ROUNDS = 24
QUICK_ROUNDS = 8
_BENCH_RECORDS = 64
_BENCH_PAGE_SIZE = 32
_BLOCK_SIZE = 8          # k — and the fused window capacity
_BATCH = 8               # B ops per batch: one full window
MIN_SPEEDUP = 2.0


def _make_db(seed: int) -> PirDatabase:
    # The IBM 4764 spec (not the zero-cost default) so virtual time prices
    # seeks honestly, and a clock-charging journal so durability is priced
    # the same way the robustness lane prices it.
    db = PirDatabase.create(
        make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE),
        cache_capacity=8,
        block_size=_BLOCK_SIZE,
        page_capacity=_BENCH_PAGE_SIZE,
        cipher_backend="blake2",
        trace_enabled=False,
        seed=seed,
        spec=IBM_4764,
    )
    db.engine.journal = MemoryJournal(clock=db.clock, timing=db.cop.spec.disk)
    return db


def _round_ids(round_index: int) -> List[int]:
    return [(round_index * 13 + i * 5) % _BENCH_RECORDS
            for i in range(_BATCH)]


def run_serial(rounds: int, seed: int):
    """The reference loop: every op is its own full request."""
    db = _make_db(seed)
    payloads: List[bytes] = []
    virtual_start = db.clock.now
    wall_start = time.perf_counter()
    for round_index in range(rounds):
        for page_id in _round_ids(round_index):
            payloads.append(db.query(page_id))
    wall = time.perf_counter() - wall_start
    return payloads, db.clock.now - virtual_start, wall, db


def run_fused(rounds: int, seed: int):
    """The same op stream through the one-disk-pass-per-window path."""
    db = _make_db(seed)
    payloads: List[bytes] = []
    virtual_start = db.clock.now
    wall_start = time.perf_counter()
    for round_index in range(rounds):
        batch = [BatchOp("query", page_id=page_id)
                 for page_id in _round_ids(round_index)]
        for item in db.run_batch(batch):
            if isinstance(item, Exception):
                raise item
            payloads.append(item)
    wall = time.perf_counter() - wall_start
    return payloads, db.clock.now - virtual_start, wall, db


def check_read_collapse(db: PirDatabase, rounds: int) -> List[str]:
    """The deterministic counter contract of the fused path."""
    counters = db.engine.counters
    expected = {
        "batch.fused.windows": rounds,
        "batch.fused.ops": rounds * _BATCH,
        "batch.fused.block_reads": rounds,
        "batch.fused.extra_reads": rounds * _BATCH,
        # Serial would read B*(k+1) frames per round; fused reads k+B.
        "batch.fused.reads_saved": rounds * (
            _BATCH * (_BLOCK_SIZE + 1) - (_BLOCK_SIZE + _BATCH)
        ),
    }
    return [
        f"{name}: expected {want}, got {counters.get(name)}"
        for name, want in expected.items()
        if counters.get(name) != want
    ]


# ---------------------------------------------------------------------------
# Pytest checks (collected with the benchmark suite)
# ---------------------------------------------------------------------------


def test_fused_batch_speedup_and_identity(report):
    """Byte-identical replies, exact read collapse, >= 2x virtual speedup."""
    serial_payloads, serial_virtual, serial_wall, _serial_db = run_serial(
        QUICK_ROUNDS, DEFAULT_SEED
    )
    fused_payloads, fused_virtual, fused_wall, fused_db = run_fused(
        QUICK_ROUNDS, DEFAULT_SEED
    )
    assert fused_payloads == serial_payloads
    assert check_read_collapse(fused_db, QUICK_ROUNDS) == []

    ops = QUICK_ROUNDS * _BATCH
    speedup = serial_virtual / fused_virtual
    assert speedup >= MIN_SPEEDUP, (
        f"per-query virtual speedup {speedup:.2f}x < {MIN_SPEEDUP:.0f}x "
        f"for B={_BATCH} fused vs serial"
    )
    report.line(f"fused batch path, B={_BATCH} ops/window, k={_BLOCK_SIZE}, "
                f"{QUICK_ROUNDS} windows, IBM 4764 timing + journal")
    report.table(
        ["mode", "virtual ms/op", "wall ms/op", "frames read"],
        [
            ["serial", serial_virtual / ops * 1e3, serial_wall / ops * 1e3,
             ops * (_BLOCK_SIZE + 1)],
            ["fused", fused_virtual / ops * 1e3, fused_wall / ops * 1e3,
             QUICK_ROUNDS * _BLOCK_SIZE + ops],
        ],
    )
    report.line(f"per-query virtual speedup: {speedup:.2f}x "
                f"(gate: >= {MIN_SPEEDUP:.0f}x)")


# ---------------------------------------------------------------------------
# Script mode: structured JSONL for the CI perf gate
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    try:
        from bench_engine import calibration_seconds  # script mode
    except ImportError:
        from benchmarks.bench_engine import calibration_seconds
    from repro.obs import write_jsonl

    parser = argparse.ArgumentParser(
        description="fused-batch benchmark (JSONL for the CI perf gate)"
    )
    parser.add_argument("--quick", action="store_true",
                        help=f"run {QUICK_ROUNDS} windows instead of "
                             f"{DEFAULT_ROUNDS}")
    parser.add_argument("--rounds", type=int, default=0,
                        help="explicit window count (overrides --quick)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--out", default="",
                        help="JSONL output path (default stdout)")
    args = parser.parse_args(argv)

    rounds = args.rounds or (QUICK_ROUNDS if args.quick else DEFAULT_ROUNDS)
    calibration = calibration_seconds()
    serial_payloads, serial_virtual, serial_wall, _serial_db = run_serial(
        rounds, args.seed
    )
    fused_payloads, fused_virtual, fused_wall, fused_db = run_fused(
        rounds, args.seed
    )
    if fused_payloads != serial_payloads:
        print("error: fused replies diverged from the serial loop",
              file=sys.stderr)
        return 2
    collapse_problems = check_read_collapse(fused_db, rounds)
    if collapse_problems:
        for problem in collapse_problems:
            print(f"error: read collapse broken — {problem}", file=sys.stderr)
        return 2

    ops = rounds * _BATCH
    speedup = (serial_virtual / ops) / (fused_virtual / ops)
    if speedup < MIN_SPEEDUP:
        print(f"error: per-query virtual speedup {speedup:.2f}x "
              f"< {MIN_SPEEDUP:.0f}x", file=sys.stderr)
        return 1

    frame_size = fused_db.engine.disk.frame_size
    fused_frames = rounds * _BLOCK_SIZE + ops  # k per window + 1 per op
    rows = [{
        "kind": "meta",
        "queries": ops,
        "seed": args.seed,
        "pages": _BENCH_RECORDS,
        "block_size": _BLOCK_SIZE,
        "page_size": _BENCH_PAGE_SIZE,
        "batch": _BATCH,
        "calibration_s": calibration,
        # Informational (not gated here): the in-script >= 2x check above
        # is the gate; compare_bench.py gates the virtual_s columns exactly.
        "virtual_speedup": speedup,
    }]
    rows.append({
        "kind": "phase", "name": "batch.serial",
        "count": ops, "bytes": ops * (_BLOCK_SIZE + 1) * frame_size,
        "virtual_s": serial_virtual, "wall_s": serial_wall,
    })
    rows.append({
        "kind": "phase", "name": "batch.fused",
        "count": ops, "bytes": fused_frames * frame_size,
        "virtual_s": fused_virtual, "wall_s": fused_wall,
    })
    if args.out:
        written = write_jsonl(args.out, rows)
        print(f"wrote {written} rows ({rounds} windows of {_BATCH} ops, "
              f"virtual speedup {speedup:.2f}x) to {args.out}")
    else:
        import json

        for row in rows:
            print(json.dumps(row, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
