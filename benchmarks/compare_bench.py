"""Per-phase diff of two ``bench_engine.py`` JSONL runs — the CI perf gate.

Usage::

    PYTHONPATH=src python benchmarks/compare_bench.py BASELINE CURRENT \
        [--threshold 0.25] [--min-wall 0.005]

Exit status 0 when the current run is within the threshold of the
baseline, 1 on any regression, 2 on malformed/incomparable inputs.

Two classes of comparison:

* **Deterministic metrics** (``count``, ``bytes``, ``virtual_s``) come
  from the pinned-seed workload on the virtual clock and must match the
  baseline *exactly* (virtual seconds to a relative 1e-9).  A mismatch
  means the engine's access pattern changed — that is a correctness-class
  regression, reported regardless of wall time.

* **Wall time** is machine-dependent, so each run's phase wall times are
  first normalised by that run's ``calibration_s`` (a fixed hashing
  workload timed by ``bench_engine.py``).  A phase regresses when its
  normalised wall time exceeds the baseline's by more than ``--threshold``
  (default 25%).  Phases whose baseline wall time is below ``--min-wall``
  seconds in total are reported but not gated: at sub-millisecond scale
  scheduler noise exceeds any real signal.

New phases (in current but not baseline) are reported but never gated;
phases that *disappear* are gated, since losing a span usually means an
instrumentation or code-path break.
"""

from __future__ import annotations

import argparse
import sys
from os import path
from typing import Dict, List, Optional

try:
    import repro  # noqa: F401
except ImportError:  # script mode from a checkout without PYTHONPATH
    sys.path.insert(0, path.join(path.dirname(__file__), "..", "src"))

from repro.obs import read_jsonl, rows_by_kind

_VIRTUAL_REL_TOL = 1e-9

# Every phase row must carry these columns; a row missing one is malformed
# input (exit 2), not a silent KeyError traceback mid-comparison.
_PHASE_COLUMNS = ("count", "bytes", "virtual_s", "wall_s")


def load_run(file_path: str) -> Dict[str, object]:
    """Load one JSONL run: its meta row plus phase rows keyed by name."""
    rows = read_jsonl(file_path)
    metas = rows_by_kind(rows, "meta")
    phases = rows_by_kind(rows, "phase")
    if len(metas) != 1 or not phases:
        raise ValueError(
            f"{file_path}: expected exactly one meta row and at least one "
            f"phase row, found {len(metas)} meta / {len(phases)} phase"
        )
    meta = metas[0]
    calibration = float(meta.get("calibration_s", 0.0))
    if calibration <= 0.0:
        raise ValueError(f"{file_path}: meta row lacks a positive calibration_s")
    for row in phases:
        if "name" not in row:
            raise ValueError(
                f"{file_path}: phase row without a 'name' column: {row!r}"
            )
        missing = [key for key in _PHASE_COLUMNS if key not in row]
        if missing:
            raise ValueError(
                f"{file_path}: phase {row['name']!r} is missing "
                f"column(s) {', '.join(missing)} — run is malformed"
            )
    return {
        "meta": meta,
        "calibration": calibration,
        "phases": {row["name"]: row for row in phases},
    }


def _check_comparable(base_meta: dict, cur_meta: dict) -> List[str]:
    problems = []
    for key in ("queries", "seed", "pages", "block_size", "page_size"):
        if base_meta.get(key) != cur_meta.get(key):
            problems.append(
                f"meta mismatch on {key!r}: baseline {base_meta.get(key)} "
                f"vs current {cur_meta.get(key)} — runs are not comparable"
            )
    return problems


def compare_runs(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float,
    min_wall: float,
) -> "tuple[List[List[object]], List[str]]":
    """Per-phase delta table plus the list of regression descriptions."""
    base_phases: Dict[str, dict] = baseline["phases"]  # type: ignore[assignment]
    cur_phases: Dict[str, dict] = current["phases"]  # type: ignore[assignment]
    base_cal: float = baseline["calibration"]  # type: ignore[assignment]
    cur_cal: float = current["calibration"]  # type: ignore[assignment]

    table: List[List[object]] = []
    regressions: List[str] = []

    for name in sorted(set(base_phases) | set(cur_phases)):
        base = base_phases.get(name)
        cur = cur_phases.get(name)
        if base is None:
            table.append([name, "-", f"{cur['wall_s']:.4f}", "-", "new"])
            continue
        if cur is None:
            # Spell out what the baseline recorded, column by column, so the
            # CI log shows exactly which measurements vanished.
            lost = ", ".join(
                f"{key}={base[key]!r} -> absent" for key in _PHASE_COLUMNS
            )
            regressions.append(
                f"{name}: phase disappeared from current run ({lost})"
            )
            table.append([name, f"{base['wall_s']:.4f}", "-", "-", "MISSING"])
            continue

        for key in ("count", "bytes"):
            if base[key] != cur[key]:
                regressions.append(
                    f"{name}: deterministic {key} changed "
                    f"{base[key]} -> {cur[key]}"
                )
        base_virtual = float(base["virtual_s"])
        cur_virtual = float(cur["virtual_s"])
        tolerance = _VIRTUAL_REL_TOL * max(abs(base_virtual), 1.0)
        if abs(base_virtual - cur_virtual) > tolerance:
            regressions.append(
                f"{name}: deterministic virtual_s changed "
                f"{base_virtual!r} -> {cur_virtual!r}"
            )

        base_norm = float(base["wall_s"]) / base_cal
        cur_norm = float(cur["wall_s"]) / cur_cal
        delta = (cur_norm - base_norm) / base_norm if base_norm > 0 else 0.0
        gated = float(base["wall_s"]) >= min_wall
        status = "ok"
        if gated and delta > threshold:
            status = "REGRESSED"
            regressions.append(
                f"{name}: normalised wall time {delta:+.1%} vs baseline "
                f"(threshold {threshold:+.0%})"
            )
        elif not gated:
            status = "ok (not gated)"
        table.append([
            name,
            f"{base['wall_s']:.4f}",
            f"{cur['wall_s']:.4f}",
            f"{delta:+.1%}",
            status,
        ])
    return table, regressions


def _print_table(rows: List[List[object]]) -> None:
    headers = ["phase", "base wall (s)", "cur wall (s)", "norm delta", "status"]
    printable = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in printable))
        if printable else len(headers[i])
        for i in range(len(headers))
    ]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in printable:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two bench_engine.py JSONL runs; exit 1 on regression"
    )
    parser.add_argument("baseline", help="committed baseline JSONL")
    parser.add_argument("current", help="freshly produced JSONL")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative wall-time regression limit "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--min-wall", type=float, default=0.005,
                        help="baseline wall seconds below which a phase is "
                             "reported but not gated (default 0.005)")
    args = parser.parse_args(argv)

    try:
        baseline = load_run(args.baseline)
        current = load_run(args.current)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    problems = _check_comparable(baseline["meta"], current["meta"])
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 2

    table, regressions = compare_runs(
        baseline, current, args.threshold, args.min_wall
    )
    print(
        f"baseline calibration {baseline['calibration']:.4f}s, "
        f"current {current['calibration']:.4f}s "
        f"(wall deltas are calibration-normalised)"
    )
    _print_table(table)
    if regressions:
        print(f"\n{len(regressions)} regression(s):")
        for regression in regressions:
            print(f"  - {regression}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
