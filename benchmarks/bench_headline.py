"""§5 prose — the headline response times quoted in the paper's text.

27 ms / 94 ms (1 GB), 197 ms & 65 ms (10 GB, 1 vs 2 units), 197 ms (100 GB),
727 ms (1 TB), plus the coprocessor-unit counts the storage demands imply.
"""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import headline_numbers


def test_headline_numbers(report, benchmark):
    rows = benchmark(headline_numbers)
    report.line("§5 headline response times: paper vs this model")
    report.table(
        ["configuration", "paper (s)", "model (s)", "k", "storage (MB)", "units"],
        [
            [
                r["label"],
                r["paper_seconds"],
                r["model_seconds"],
                r["block_size"],
                r["storage_mb"],
                r["units"],
            ]
            for r in rows
        ],
    )
    for row in rows:
        assert row["model_seconds"] == pytest.approx(
            row["paper_seconds"], rel=0.05
        ), row["label"]
