"""§5 prose — the headline response times quoted in the paper's text.

27 ms / 94 ms (1 GB), 197 ms & 65 ms (10 GB, 1 vs 2 units), 197 ms (100 GB),
727 ms (1 TB), plus the coprocessor-unit counts the storage demands imply.
Each configuration is also decomposed into Eq. 8's four additive terms
(seek / disk / link / crypto), the same split the runtime tracer measures.
"""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import eq8_terms, headline_numbers
from repro.hardware.specs import IBM_4764


def test_headline_numbers(report, benchmark):
    rows = benchmark(headline_numbers)
    report.line("§5 headline response times: paper vs this model")
    report.table(
        ["configuration", "paper (s)", "model (s)", "k", "storage (MB)", "units"],
        [
            [
                r["label"],
                r["paper_seconds"],
                r["model_seconds"],
                r["block_size"],
                r["storage_mb"],
                r["units"],
            ]
            for r in rows
        ],
    )
    report.line()
    report.line("Eq. 8 per-phase breakdown (seconds; Table-2 hardware)")
    breakdown = []
    for r in rows:
        terms = eq8_terms(IBM_4764, r["block_size"], r["page_size"])
        breakdown.append(
            [r["label"], terms["seek"], terms["disk"], terms["link"],
             terms["crypto"], terms["total"]]
        )
        assert terms["total"] == pytest.approx(r["model_seconds"])
    report.table(
        ["configuration", "seek", "disk", "link", "crypto", "total"],
        breakdown,
    )
    for row in rows:
        assert row["model_seconds"] == pytest.approx(
            row["paper_seconds"], rel=0.05
        ), row["label"]
