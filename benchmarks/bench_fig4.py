"""Figure 4 — page retrieval time & secure storage vs cache size (1 KB pages, c = 2).

Four panels (1 GB, 10 GB, 100 GB, 1 TB databases).  The paper's own figure
is analytical over Table 2 (Eqs. 7-8); we regenerate exactly those series,
then validate the model against the *executed* engine at reduced scale:
the virtual-clock time of a real request must equal Eq. 8.
"""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import AnalyticalCostModel, figure4_series
from repro.analysis.plots import ascii_plot
from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.hardware.specs import HardwareSpec


def test_figure4_series(report, benchmark):
    series = benchmark(figure4_series)
    for panel, points in series.items():
        report.line(f"Figure 4 ({panel} database, B = 1 KB, c = 2)")
        report.table(
            ["m (pages)", "k", "response (s)", "storage (MB)"],
            [
                [p.cache_pages, p.block_size, p.query_time, p.secure_storage_mb]
                for p in points
            ],
        )
        report.line()
        times = [p.query_time for p in points]
        storages = [p.secure_storage_bytes for p in points]
        assert times == sorted(times, reverse=True), panel
        assert storages == sorted(storages), panel
    # Paper's anchor: 27 ms at (1 GB, m = 50000).
    assert series["1GB"][-1].query_time == pytest.approx(0.027, abs=0.002)
    report.line(ascii_plot(
        [
            (panel, [p.cache_pages for p in points],
             [p.query_time for p in points])
            for panel, points in series.items()
        ],
        log_x=True, log_y=True,
        title="Figure 4 (all panels): response time vs cache size",
        x_label="m", y_label="seconds",
    ))


def test_figure4_model_matches_executed_engine(report, benchmark):
    """Reduced-scale execution: Eq. 8 with the frame size as B equals the
    virtual-clock cost of a real request, for several k."""
    model = AnalyticalCostModel()
    rows = []
    for block_size in (2, 8, 24):
        db = PirDatabase.create(
            make_records(96, 16),
            cache_capacity=8,
            block_size=block_size,
            page_capacity=16,
            spec=HardwareSpec(),
            seed=block_size,
        )
        start = db.clock.now
        db.query(0)
        measured = db.clock.now - start
        expected = model.query_time(block_size, db.cop.frame_size)
        rows.append([block_size, measured, expected, abs(measured - expected)])
        assert measured == pytest.approx(expected, rel=1e-9)
    benchmark(lambda: model.query_time(29, 1024))
    report.line("executed engine vs Eq. 8 (n = 96 pages, real timing model)")
    report.table(["k", "measured (s)", "Eq. 8 (s)", "abs err"], rows)
