"""§4.3 — database updates are trace-indistinguishable from queries.

Runs each operation type through the executed engine and prints the
observable per-request footprint; all rows must be identical.  Also
benchmarks a mixed workload's throughput.
"""

from __future__ import annotations

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.crypto.rng import SecureRandom
from repro.errors import CapacityError, PageDeletedError, PageNotFoundError
from repro.storage.trace import shapes_identical
from repro.workload import operation_stream


def _db(seed=1):
    return PirDatabase.create(
        make_records(64, 16), cache_capacity=8, target_c=2.0,
        page_capacity=16, reserve_fraction=0.25, seed=seed,
    )


def test_operation_trace_footprints(report, benchmark):
    db = _db()
    operations = [
        ("query (miss)", lambda: db.query(1)),
        ("query (hit)", lambda: db.query(1)),
        ("modify", lambda: db.update(2, b"new")),
        ("insert", lambda: db.insert(b"fresh")),
        ("delete", lambda: db.delete(3)),
        ("dummy touch", lambda: db.touch()),
    ]
    rows = []
    for label, operation in operations:
        operation()
        request = db.engine.request_count - 1
        shape = db.trace.request_shape(request)
        rows.append([label] + [f"{op}:{count}" for op, count in shape])
    benchmark(lambda: db.touch())
    report.line("observable disk footprint per operation type (§4.3)")
    report.table(["operation", "access 1", "access 2", "access 3", "access 4"],
                 rows)
    footprints = {tuple(row[1:]) for row in rows}
    assert len(footprints) == 1, "operation types must be indistinguishable"
    assert shapes_identical(db.trace, 0)


def test_mixed_workload_throughput(report, benchmark):
    db = _db(seed=2)
    rng = SecureRandom(9)
    operations = operation_stream(db.num_pages, 50, rng)

    def run_batch():
        for op in operations:
            try:
                if op.kind == "query":
                    db.query(op.page_id)
                elif op.kind == "update":
                    db.update(op.page_id, op.payload)
                elif op.kind == "insert":
                    db.insert(op.payload)
                else:
                    db.delete(op.page_id)
            except (PageDeletedError, PageNotFoundError, CapacityError):
                pass  # generator races against its own deletes; expected

    benchmark.pedantic(run_batch, rounds=3, iterations=1)
    db.consistency_check()
    per_request = db.clock.now  # instantaneous spec: 0; wall time in bench
    report.line("mixed workload (70/20/5/5 query/update/insert/delete)")
    report.table(
        ["requests executed", "trace uniform"],
        [[db.engine.request_count, shapes_identical(db.trace, 0)]],
    )
    assert shapes_identical(db.trace, 0)
    assert per_request == 0.0
