"""Robustness cost: journaled write-back overhead and retry-under-fault latency.

Not a paper artifact — engineering numbers for this implementation's
fault-tolerance layer.  The headline acceptance number is the *journaled
write-back overhead*: charging every request an extra sealed intent-record
write (modelled as one contiguous NVRAM/disk write of the record size) must
stay under 2x the unjournaled per-request virtual cost.
"""

from __future__ import annotations

import time

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.core.journal import MemoryJournal
from repro.faults import FaultInjector, FlakyChannel, drop_messages
from repro.faults.retry import RetryPolicy
from repro.hardware.specs import IBM_4764
from repro.service import QueryFrontend, ServiceClient
from repro.sim.metrics import LatencySeries

NUM_RECORDS = 64
NUM_REQUESTS = 200


def _make_db(seed: int, **options) -> PirDatabase:
    # The IBM 4764 spec (not the zero-cost default) so virtual time is real.
    return PirDatabase.create(
        make_records(NUM_RECORDS, 16), cache_capacity=8, block_size=8,
        page_capacity=16, cipher_backend="blake2", trace_enabled=False,
        seed=seed, spec=IBM_4764, **options,
    )


def _run_requests(db: PirDatabase) -> None:
    for step in range(NUM_REQUESTS):
        db.query((step * 7) % NUM_RECORDS)


def test_journaled_writeback_overhead(report):
    """Virtual + wall per-request cost, journal off vs on (< 2x required)."""
    rows = []
    per_request = {}
    for label, journaled in (("unjournaled", False), ("journaled", True)):
        db = _make_db(seed=11)
        if journaled:
            # The journal charges virtual time like a contiguous disk write,
            # so the comparison prices durability honestly.
            db.engine.journal = MemoryJournal(
                clock=db.clock, timing=db.cop.spec.disk
            )
        virtual_start = db.clock.now
        wall_start = time.perf_counter()
        _run_requests(db)
        wall = (time.perf_counter() - wall_start) / NUM_REQUESTS
        virtual = (db.clock.now - virtual_start) / NUM_REQUESTS
        per_request[label] = (virtual, wall)
        rows.append([label, virtual * 1e3, wall * 1e3])

    virtual_ratio = per_request["journaled"][0] / per_request["unjournaled"][0]
    wall_ratio = per_request["journaled"][1] / per_request["unjournaled"][1]
    report.line(f"journaled write-back overhead over {NUM_REQUESTS} queries "
                f"(k={_make_db(seed=11).params.block_size})")
    report.table(["mode", "virtual ms/req", "wall ms/req"], rows)
    report.line(f"virtual overhead: {virtual_ratio:.3f}x   "
                f"wall overhead: {wall_ratio:.3f}x   (budget: < 2x)")
    assert virtual_ratio < 2.0, (
        f"journaled write-back costs {virtual_ratio:.2f}x virtual time"
    )


def test_retry_latency_under_channel_faults(report):
    """Client-observed latency as the channel drop rate rises."""
    rows = []
    for drop_rate in (0.0, 0.05, 0.2):
        db = _make_db(seed=23)
        frontend = QueryFrontend(db)
        injector = FaultInjector(
            41, [drop_messages(probability=drop_rate, times=None)]
        )
        client = ServiceClient(
            frontend,
            retry=RetryPolicy(max_attempts=6, base_delay=0.01),
            channel_wrapper=lambda ch: FlakyChannel(ch, injector),
        )
        observed = LatencySeries()
        for step in range(NUM_REQUESTS):
            started = client.channel.clock.now
            client.query((step * 5) % NUM_RECORDS)
            observed.record(client.channel.clock.now - started)
        stats = observed.summary()
        rows.append([
            f"{drop_rate:.0%}",
            client.counters.get("retries"),
            stats["mean"] * 1e3,
            stats["p99"] * 1e3,
            stats["max"] * 1e3,
        ])

    report.line(f"client retry behaviour over {NUM_REQUESTS} queries per "
                "drop rate (virtual time; backoff base 10 ms)")
    report.table(
        ["drop rate", "retries", "mean ms", "p99 ms", "max ms"], rows
    )


def test_crash_recovery_cost(report):
    """Virtual cost of replaying one torn write-back from the journal."""
    from repro.faults import FaultyDiskStore, SimulatedCrash, crash_after_writes
    from repro.storage.disk import DiskStore

    injector = FaultInjector(0, [])
    db = _make_db(
        seed=31, journal=MemoryJournal(),
        disk_factory=lambda n, f, t, c, tr: FaultyDiskStore(
            DiskStore(n, f, t, c, tr), injector
        ),
    )
    baseline_start = db.clock.now
    db.query(1)
    request_cost = db.clock.now - baseline_start

    k = db.params.block_size
    injector.add(crash_after_writes(
        injector.frames_seen("disk.write") + (k + 1) // 2
    ))
    try:
        db.query(2)
        raise AssertionError("crash plan did not fire")
    except SimulatedCrash:
        pass
    recovery_start = db.clock.now
    wall_start = time.perf_counter()
    outcome = db.recover()
    recovery_wall = time.perf_counter() - wall_start
    recovery_cost = db.clock.now - recovery_start
    assert outcome.action == "replayed"
    db.consistency_check()

    report.line("crash recovery: replay one torn (k+1)-frame write-back")
    report.table(
        ["metric", "value"],
        [
            ["normal request virtual ms", request_cost * 1e3],
            ["recovery virtual ms", recovery_cost * 1e3],
            ["recovery / request", recovery_cost / request_cost],
            ["recovery wall ms", recovery_wall * 1e3],
        ],
    )
