"""Network serving stack benchmark — sustained qps, shed rate, drain.

Exercises the ``repro.net`` stack end to end on localhost:

* **net.serial** — one blocking :class:`~repro.net.client.NetworkClient`
  drives a pinned query stream through a real TCP socket.  Counts, reply
  bytes and the engine's virtual seconds are deterministic under the
  pinned seed, so the perf gate checks them exactly; wall time is
  calibration-normalised with a loose threshold (sockets + scheduler).
* **net.concurrent** — 8 async clients issue a fixed workload
  concurrently.  Counts/bytes stay deterministic (fixed message sizes,
  no shedding); virtual seconds are reported as 0.0 because concurrent
  arrival order is scheduler-dependent.
* **net.shed** — the same async fleet against a deliberately undersized
  token bucket.  The run *fails* unless backpressure engages (nonzero
  shed) and every shed surfaced as a retryable refusal, not an error.

Each phase gets a fresh seeded database/server; after every phase the
server drains gracefully and the run asserts no request was lost or
double-applied (engine request count == successfully answered requests)
and every session was closed.

Besides the pytest checks, this file is a script::

    PYTHONPATH=src python benchmarks/bench_net.py --quick --out run.jsonl

emitting the perf-gate JSONL layout diffed by ``compare_bench.py``
against ``benchmarks/results/perf_baseline_net.jsonl``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from os import path
from typing import List, Optional

try:
    import repro  # noqa: F401
except ImportError:  # script mode from a checkout without PYTHONPATH
    sys.path.insert(0, path.join(path.dirname(__file__), "..", "src"))

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.hardware.specs import IBM_4764
from repro.errors import DegradedServiceError
from repro.net import (
    AdmissionController,
    NetworkClient,
    PirServer,
    ServerThread,
    TokenBucket,
)
from repro.net.client import AsyncNetworkClient
from repro.service.frontend import SESSION_RANDOM, QueryFrontend

#: Pinned workload shape — change it and the committed baseline together.
DEFAULT_SEED = 977
DEFAULT_QUERIES = 160
QUICK_QUERIES = 64
_BENCH_RECORDS = 64
_BENCH_PAGE_SIZE = 64
_BENCH_CACHE = 8
_CLIENTS = 8
_SHED_ATTEMPTS_PER_CLIENT = 3
_SHED_RATE = 1.0       # tokens/second — deliberately undersized
_SHED_CAPACITY = 2.0   # burst of two, then everything sheds


class _Deployment:
    """A fresh seeded database served over loopback TCP."""

    def __init__(self, seed: int, admission: Optional[AdmissionController] = None):
        self.db = PirDatabase.create(
            make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE),
            cache_capacity=_BENCH_CACHE,
            target_c=2.0,
            page_capacity=_BENCH_PAGE_SIZE,
            seed=seed,
            spec=IBM_4764,  # real timing model → nonzero virtual seconds
            cipher_backend="blake2",
            trace_enabled=False,
        )
        self.frontend = QueryFrontend(self.db,
                                      session_id_mode=SESSION_RANDOM)
        self.server = PirServer(self.frontend, admission=admission)
        self.handle = ServerThread(self.server)

    def __enter__(self) -> "_Deployment":
        self.handle.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.handle.drain()
        assert self.frontend.session_count == 0, "sessions leaked past drain"
        self.db.close()


def run_serial(queries: int, seed: int):
    """Pinned single-client stream; returns (count, bytes, virtual_s, wall)."""
    expected = make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE)
    with _Deployment(seed) as deployment:
        client = NetworkClient(deployment.handle.host,
                               deployment.handle.port)
        virtual_start = deployment.db.clock.now
        reply_bytes = 0
        start = time.perf_counter()
        for index in range(queries):
            page_id = index % _BENCH_RECORDS
            payload = client.query(page_id)
            assert payload == expected[page_id], "reply bytes diverged"
            reply_bytes += len(payload)
        wall = time.perf_counter() - start
        virtual = deployment.db.clock.now - virtual_start
        client.close()
        served = deployment.db.engine.request_count
        assert served == queries, (
            f"engine served {served} requests for {queries} queries "
            "(lost or double-applied)"
        )
    return queries, reply_bytes, virtual, wall


async def _drive_clients(host, port, per_client, seed, stats):
    expected = make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE)

    async def one(index: int) -> None:
        client = await AsyncNetworkClient.connect(host, port,
                                                  rng_seed=seed + index)
        try:
            for step in range(per_client):
                page_id = (index * per_client + step) % _BENCH_RECORDS
                try:
                    payload = await client.query(page_id)
                except DegradedServiceError:
                    stats["shed"] += 1
                    continue
                assert payload == expected[page_id], "reply bytes diverged"
                stats["ok"] += 1
                stats["bytes"] += len(payload)
        finally:
            await client.close()

    await asyncio.gather(*(one(index) for index in range(_CLIENTS)))


def run_concurrent(queries: int, seed: int):
    """8-client concurrent stream; returns (count, bytes, wall)."""
    per_client = queries // _CLIENTS
    stats = {"ok": 0, "shed": 0, "bytes": 0}
    with _Deployment(seed) as deployment:
        start = time.perf_counter()
        asyncio.run(_drive_clients(deployment.handle.host,
                                   deployment.handle.port,
                                   per_client, seed, stats))
        wall = time.perf_counter() - start
        served = deployment.db.engine.request_count
    total = per_client * _CLIENTS
    assert stats["shed"] == 0, "unexpected shed without admission control"
    assert stats["ok"] == total, (
        f"{stats['ok']}/{total} requests completed"
    )
    assert served == total, (
        f"engine served {served} requests for {total} queries"
    )
    return total, stats["bytes"], wall


def run_shed(seed: int):
    """Undersized token bucket; returns (attempts, ok, shed, wall)."""
    admission = AdmissionController(
        bucket=TokenBucket(rate=_SHED_RATE, capacity=_SHED_CAPACITY),
    )
    stats = {"ok": 0, "shed": 0, "bytes": 0}
    with _Deployment(seed, admission=admission) as deployment:
        start = time.perf_counter()
        asyncio.run(_drive_clients(deployment.handle.host,
                                   deployment.handle.port,
                                   _SHED_ATTEMPTS_PER_CLIENT, seed, stats))
        wall = time.perf_counter() - start
        served = deployment.db.engine.request_count
    attempts = _CLIENTS * _SHED_ATTEMPTS_PER_CLIENT
    assert stats["ok"] + stats["shed"] == attempts, (
        "a request was neither answered nor shed"
    )
    assert stats["shed"] > 0, (
        "undersized token bucket never engaged backpressure"
    )
    assert served == stats["ok"], (
        f"engine served {served} but only {stats['ok']} replies delivered"
    )
    assert admission.counters.get("shed") == stats["shed"], (
        "client-observed sheds disagree with the server's shed counter"
    )
    return attempts, stats["ok"], stats["shed"], wall


# ---------------------------------------------------------------------------
# Pytest checks (collected with the benchmark suite)
# ---------------------------------------------------------------------------


def test_serial_stream_exact_and_clean():
    count, nbytes, virtual, _wall = run_serial(12, DEFAULT_SEED)
    assert count == 12
    assert nbytes == 12 * _BENCH_PAGE_SIZE
    assert virtual > 0.0


def test_concurrent_clients_zero_errors():
    count, nbytes, _wall = run_concurrent(16, DEFAULT_SEED)
    assert count == 16
    assert nbytes == 16 * _BENCH_PAGE_SIZE


def test_undersized_bucket_sheds():
    attempts, ok, shed, _wall = run_shed(DEFAULT_SEED)
    assert attempts == _CLIENTS * _SHED_ATTEMPTS_PER_CLIENT
    assert shed > 0 and ok + shed == attempts


# ---------------------------------------------------------------------------
# Script mode: structured JSONL for the CI perf gate
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    try:
        from bench_engine import calibration_seconds  # script mode
    except ImportError:
        from benchmarks.bench_engine import calibration_seconds
    from repro.obs import write_jsonl

    parser = argparse.ArgumentParser(
        description="network serving benchmark (JSONL for the CI perf gate)"
    )
    parser.add_argument("--quick", action="store_true",
                        help=f"run {QUICK_QUERIES} queries instead of "
                             f"{DEFAULT_QUERIES}")
    parser.add_argument("--queries", type=int, default=0,
                        help="explicit query count (overrides --quick); "
                             f"must be a multiple of {_CLIENTS}")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--out", default="",
                        help="JSONL output path (default stdout)")
    args = parser.parse_args(argv)

    queries = args.queries or (QUICK_QUERIES if args.quick else DEFAULT_QUERIES)
    if queries % _CLIENTS:
        print(f"error: --queries must be a multiple of {_CLIENTS}",
              file=sys.stderr)
        return 2
    calibration = calibration_seconds()

    serial_count, serial_bytes, serial_virtual, serial_wall = run_serial(
        queries, args.seed
    )
    conc_count, conc_bytes, conc_wall = run_concurrent(queries, args.seed)
    attempts, shed_ok, shed, shed_wall = run_shed(args.seed)

    qps = conc_count / conc_wall if conc_wall > 0 else 0.0
    rows = [{
        "kind": "meta",
        "queries": queries,
        "seed": args.seed,
        "pages": _BENCH_RECORDS,
        "block_size": None,  # filled below from the serial deployment
        "page_size": _BENCH_PAGE_SIZE,
        "clients": _CLIENTS,
        "calibration_s": calibration,
        # Informational (not gated): shed split and throughput depend on
        # real-time token refill and scheduling.
        "shed": shed,
        "shed_attempts": attempts,
        "sustained_qps": qps,
    }]
    rows.append({
        "kind": "phase", "name": "net.serial",
        "count": serial_count, "bytes": serial_bytes,
        "virtual_s": serial_virtual, "wall_s": serial_wall,
    })
    rows.append({
        "kind": "phase", "name": "net.concurrent",
        "count": conc_count, "bytes": conc_bytes,
        "virtual_s": 0.0, "wall_s": conc_wall,
    })
    rows.append({
        "kind": "phase", "name": "net.shed",
        "count": attempts, "bytes": 0,
        "virtual_s": 0.0, "wall_s": shed_wall,
    })

    # block_size is a pure function of (pages, cache, c); derive it the
    # same way the deployment does so the meta row is comparable.
    from repro.core.params import SystemParameters

    rows[0]["block_size"] = SystemParameters.solve(
        _BENCH_RECORDS, _BENCH_CACHE, 2.0,
        page_capacity=_BENCH_PAGE_SIZE,
    ).block_size

    if args.out:
        written = write_jsonl(args.out, rows)
        print(f"wrote {written} rows ({queries} queries, "
              f"{qps:.0f} qps over {_CLIENTS} clients, "
              f"{shed}/{attempts} shed under the undersized bucket) "
              f"to {args.out}")
    else:
        import json

        for row in rows:
            print(json.dumps(row, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
