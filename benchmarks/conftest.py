"""Benchmark-suite infrastructure.

Each bench regenerates one of the paper's tables or figures.  Numeric series
are routed through the :class:`Reporter` fixture, which (a) saves them under
``benchmarks/results/`` and (b) replays them in pytest's terminal summary —
so ``pytest benchmarks/ --benchmark-only`` prints the reproduced figures
even though per-test stdout is captured.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

import pytest

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_REPORTS: Dict[str, List[str]] = {}


class Reporter:
    """Collects one experiment's text output."""

    def __init__(self, name: str):
        self.name = name
        self.lines: List[str] = []

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        printable = [[fmt(v) for v in row] for row in rows]
        widths = [
            max(len(str(h)), *(len(r[i]) for r in printable)) if printable else len(str(h))
            for i, h in enumerate(headers)
        ]
        self.line("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
        self.line("  ".join("-" * w for w in widths))
        for row in printable:
            self.line("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))

    def flush(self) -> None:
        _REPORTS[self.name] = list(self.lines)
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        path = os.path.join(_RESULTS_DIR, f"{self.name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(self.lines) + "\n")


@pytest.fixture
def report(request):
    """Per-test reporter named after the test's module."""
    name = request.node.name.replace("[", "_").replace("]", "")
    reporter = Reporter(f"{request.module.__name__}.{name}")
    yield reporter
    reporter.flush()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper tables & figures")
    for name in sorted(_REPORTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {name} ==")
        for line in _REPORTS[name]:
            terminalreporter.write_line(line)
