"""The paper's motivation (§1-2): private query processing latency.

[23] showed that resolving one query over a disk-resident index costs a
*sequence* of PIR retrievals, and with perfect-privacy PIR "query
processing may require tens of seconds, even for moderate databases".
This bench reproduces that arithmetic end to end:

1. build a real paged B+-tree and measure how many private retrievals a
   point lookup / small range / kNN actually needs (executed);
2. price those retrieval counts at paper scale (1 GB and 10 GB databases,
   Table-2 hardware) under (a) this scheme at c = 2 and c = 1.1 and
   (b) perfect privacy via the trivial full-scan PIR — the only
   constant-latency perfect scheme (amortized schemes' *worst* query is a
   reshuffle, priced in bench_baselines).
"""

from __future__ import annotations

from repro.analysis.costmodel import AnalyticalCostModel
from repro.crypto.rng import SecureRandom
from repro.hardware.specs import GIGABYTE, IBM_4764
from repro.index import PrivateKeyValueStore, PrivateSpatialStore, SpatialPoint


def _trivial_scan_seconds(num_pages: int, page_size: int) -> float:
    per_byte = (
        1 / IBM_4764.disk.read_bandwidth
        + 1 / IBM_4764.link_bandwidth
        + 1 / IBM_4764.crypto_throughput
    )
    return IBM_4764.disk.seek_time + num_pages * page_size * per_byte


def test_private_index_retrieval_counts(report, benchmark):
    """Executed: retrievals per index operation on a real private B+-tree."""
    items = [(key, f"row-{key}".encode()) for key in range(0, 6000, 2)]
    store = PrivateKeyValueStore.create(
        items, cache_capacity=16, target_c=2.0, page_capacity=256,
        cipher_backend="null", seed=3,
    )
    rows = []
    start = store.retrievals
    store.get(4000)
    rows.append(["point lookup", store.retrievals - start, store.height])
    start = store.retrievals
    store.range(1000, 1100)
    rows.append(["range scan (51 keys)", store.retrievals - start, "-"])

    rng = SecureRandom(4)
    points = [SpatialPoint(rng.random() * 100, rng.random() * 100,
                           f"p{i}".encode()) for i in range(400)]
    spatial = PrivateSpatialStore.create(
        points, cache_capacity=16, target_c=2.0, page_capacity=512,
        cipher_backend="null", seed=5,
    )
    start = spatial.retrievals
    spatial.knn(50, 50, 3)
    rows.append(["spatial 3-NN", spatial.retrievals - start, "-"])

    benchmark(lambda: store.get(2000))
    report.line("private retrievals per index operation (executed)")
    report.table(["operation", "retrievals", "tree height"], rows)
    assert rows[0][1] == store.height  # a lookup is one retrieval per level


def test_motivation_latency_table(report, benchmark):
    """Full-scale pricing: index lookups at 1 GB / 10 GB, 1 KB pages."""
    model = benchmark(AnalyticalCostModel)
    retrievals_per_lookup = 3  # measured height above at comparable fanout
    rows = []
    for label, db_bytes, m in (("1GB", 1 * GIGABYTE, 50_000),
                               ("10GB", 10 * GIGABYTE, 100_000)):
        num_pages = db_bytes // 1000
        ours_c2 = model.point(db_bytes, 1000, m, 2.0).query_time
        ours_c11 = model.point(db_bytes, 1000, m, 1.1).query_time
        trivial = _trivial_scan_seconds(num_pages, 1000)
        rows.append([
            label,
            retrievals_per_lookup * ours_c2,
            retrievals_per_lookup * ours_c11,
            retrievals_per_lookup * trivial,
        ])
    report.line(
        f"index point-lookup latency = {retrievals_per_lookup} retrievals "
        "(seconds, Table-2 hardware)"
    )
    report.table(
        ["DB", "this scheme c=2", "this scheme c=1.1", "perfect privacy "
         "(trivial PIR)"],
        rows,
    )
    # The paper's motivating gap: perfect privacy needs tens-to-hundreds of
    # seconds per query; the c-approximate scheme stays interactive.
    for label, ours_c2, ours_c11, trivial in rows:
        assert ours_c2 < 1.0, label
        assert trivial > 30.0, label
        assert trivial / ours_c2 > 100, label
