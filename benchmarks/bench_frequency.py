"""§1 motivation — frequency analysis vs encryption-only outsourcing.

The paper's introduction argues that encrypting the database is not enough:
access-pattern popularity still leaks the queries.  This bench executes the
attack: a Zipf workload against (a) a static encrypted store and (b) the
c-approximate scheme, scored by Spearman correlation between per-location
read counts and true page popularity, hot-page identification, and the TV
distance of observed read frequencies from uniform.
"""

from __future__ import annotations

from repro.analysis.frequency import StaticEncryptedStore, run_frequency_experiment
from repro.analysis.stats import chi_square_test
from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.crypto.rng import SecureRandom
from repro.workload import zipf_stream

_RECORDS = make_records(60, 16)


def test_frequency_attack(report, benchmark):
    workload = zipf_stream(60, 800, SecureRandom(21), theta=1.1)
    static = StaticEncryptedStore.create(_RECORDS, page_capacity=16, seed=22)
    database = PirDatabase.create(
        _RECORDS, cache_capacity=8, target_c=2.0, page_capacity=16,
        cipher_backend="null", seed=23,
    )
    results = benchmark.pedantic(
        lambda: run_frequency_experiment(workload, static, database),
        rounds=1, iterations=1,
    )
    report.line("frequency-analysis attack under a Zipf(1.1) workload "
                f"({len(workload)} queries over {len(_RECORDS)} pages)")
    report.table(
        ["scheme", "popularity correlation", "hot page found", "TV from uniform"],
        [
            [r.scheme, r.popularity_correlation, r.hot_page_identified,
             r.uniformity_gap]
            for r in results
        ],
    )
    static_result, ours = results
    assert static_result.popularity_correlation > 0.9
    assert abs(ours.popularity_correlation) < 0.4
    assert static_result.hot_page_identified
    assert static_result.uniformity_gap > 10 * ours.uniformity_gap


def test_block_reads_are_uniform(report, benchmark):
    """Chi-square: the c-approx scheme's per-location read counts are
    indistinguishable from uniform coverage even under maximal skew."""
    database = PirDatabase.create(
        _RECORDS, cache_capacity=8, target_c=2.0, page_capacity=16,
        cipher_backend="null", seed=24,
    )
    n = database.params.num_locations
    period = database.params.scan_period

    def run():
        # Hammer a single page: worst-case skew.
        for _ in range(20 * period):
            database.query(7)
        return database.trace

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    counts = [0] * n
    for event in trace:
        if event.op == "read" and event.count > 1:  # block reads only
            for location in event.locations:
                counts[location] += 1
    result = chi_square_test(counts, [1.0 / n] * n)
    report.line("uniformity of block-read coverage under single-page hammering")
    report.table(
        ["locations", "block reads/location (min..max)", "chi2", "p-value"],
        [[n, f"{min(counts)}..{max(counts)}", result.statistic, result.p_value]],
    )
    # Round-robin coverage is *exactly* uniform.
    assert min(counts) == max(counts)
