"""Table 2 — system specifications used throughout the evaluation.

Prints the constants every other bench consumes, and measures the *actual*
throughput of this repo's software crypto backends for context (the paper's
r_ed = 10 MB/s is the IBM 4764's engine, charged via the timing model, not
our Python speed — see DESIGN.md §3).
"""

from __future__ import annotations

from repro.crypto.rng import SecureRandom
from repro.crypto.suite import CipherSuite
from repro.hardware.specs import IBM_4764


def test_table2_constants(report, benchmark):
    spec = IBM_4764
    benchmark(lambda: spec.ingest_time(10**6))
    report.line("Table 2: system specifications (IBM 4764 deployment)")
    report.table(
        ["parameter", "value"],
        [
            ["secure hardware cache", f"{spec.secure_memory // 10**6} MB"],
            ["disk seek time t_s", f"{spec.disk.seek_time * 1e3:.0f} ms"],
            ["disk read/write r_d", f"{spec.disk.read_bandwidth / 1e6:.0f} MB/s"],
            ["link bandwidth r_b", f"{spec.link_bandwidth / 1e6:.0f} MB/s"],
            ["encryption/decryption r_ed", f"{spec.crypto_throughput / 1e6:.0f} MB/s"],
        ],
    )


def test_software_crypto_throughput(report, benchmark):
    """Throughput of the repo's own page encryption (blake2 backend)."""
    suite = CipherSuite(b"bench", backend="blake2", rng=SecureRandom(1))
    payload = bytes(4096)

    def encrypt_decrypt():
        return suite.decrypt_page(suite.encrypt_page(payload))

    result = benchmark(encrypt_decrypt)
    assert result == payload
    per_round = benchmark.stats.stats.mean
    mb_per_s = 2 * len(payload) / per_round / 1e6
    report.line("software AEAD throughput (4 KiB pages, encrypt+decrypt)")
    report.table(
        ["backend", "MB/s (this machine)", "paper r_ed"],
        [["blake2", f"{mb_per_s:.1f}", "10 MB/s (HW engine, simulated)"]],
    )
