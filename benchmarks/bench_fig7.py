"""Figure 7 — the two-party (outsourcing) model on a 1 TB database (c = 2).

(a) 1 KB pages (n = 10^9), (b) 10 KB pages (n = 10^8); response time and
owner-side storage vs cache size, with a 50 ms RTT network.

Two parts:
1. the analytical series at full paper scale (network bandwidth calibrated
   to the paper's 0.737 s anchor — see EXPERIMENTS.md);
2. an *executed* session at the paper's block size but reduced n, over the
   simulated channel, showing the measured latency lands near the model.
"""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import TwoPartyCostModel, figure7_series
from repro.analysis.plots import ascii_plot
from repro.baselines import make_records
from repro.twoparty import TwoPartySession


def test_figure7_series(report, benchmark):
    series = benchmark(figure7_series)
    for panel, points in series.items():
        report.line(f"Figure 7 ({panel} pages, 1 TB database, c = 2)")
        report.table(
            ["m (pages)", "k", "response (s)", "owner storage (GB)"],
            [
                [p.cache_pages, p.block_size, p.query_time, p.secure_storage_gb]
                for p in points
            ],
        )
        report.line()
        times = [p.query_time for p in points]
        storages = [p.secure_storage_bytes for p in points]
        assert times == sorted(times, reverse=True), panel
        assert storages == sorted(storages), panel
    report.line(ascii_plot(
        [
            (panel, [p.cache_pages for p in points],
             [p.query_time for p in points])
            for panel, points in series.items()
        ],
        log_x=True, log_y=True,
        title="Figure 7: two-party response time vs cache size",
        x_label="m", y_label="seconds",
    ))
    # Paper's measured anchors.
    assert series["1KB"][-1].query_time == pytest.approx(0.737, rel=0.05)
    assert series["1KB"][-1].secure_storage_gb == pytest.approx(5.9, rel=0.05)
    assert series["10KB"][-1].secure_storage_gb > 10


def test_figure7_executed_session(report, benchmark):
    """Run the real protocol with the paper's k = 722 (the m = 2M point of
    panel (a)) against a reduced-n provider; the wire bytes per query are
    identical to full scale, so the measured latency isolates exactly the
    network + disk costs the model charges."""
    k = 722
    session = TwoPartySession.create(
        make_records(2 * k, 32),
        cache_capacity=16,
        block_size=k,
        page_capacity=1024,
        seed=7,
        rtt=0.05,
        bandwidth=2.33e6,
    )

    def one_query():
        return session.query(5)

    benchmark.pedantic(one_query, rounds=3, iterations=1)
    series = session.measure_queries([1, 2, 3])
    model = TwoPartyCostModel().query_time(k, session.owner.cop.frame_size)
    report.line("executed two-party session at k = 722 (paper's 1KB/2M point)")
    report.table(
        ["quantity", "seconds"],
        [
            ["measured (virtual clock)", series.mean()],
            ["cost model", model],
            ["paper (measured on WiFi)", 0.737],
        ],
    )
    # Executed protocol should be within ~25% of the calibrated model (the
    # protocol pays one extra RTT versus the model's single-RTT idealisation).
    assert series.mean() == pytest.approx(model, rel=0.25)
