"""Figure 6 — response time vs privacy parameter c = 1 + epsilon (B = 1 KB).

Four panels with fixed caches (50k / 100k / 500k / 500k pages).  Shape
checks: response time falls monotonically with epsilon, and the §5 claims
hold — sub-second at c = 1.1 for databases up to 100 GB; not for 1 TB.
"""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import FIGURE6_EPSILONS, figure6_series
from repro.analysis.plots import ascii_plot


def test_figure6_series(report, benchmark):
    series = benchmark(figure6_series)
    for panel, points in series.items():
        report.line(f"Figure 6 ({panel} database, B = 1 KB, m fixed)")
        report.table(
            ["epsilon", "c", "k", "response (s)"],
            [
                [p.privacy_c - 1.0, p.privacy_c, p.block_size, p.query_time]
                for p in points
            ],
        )
        report.line()
        times = [p.query_time for p in points]
        assert times == sorted(times, reverse=True), panel
    report.line(ascii_plot(
        [
            (panel, [p.privacy_c - 1.0 for p in points],
             [p.query_time for p in points])
            for panel, points in series.items()
        ],
        log_x=True, log_y=True,
        title="Figure 6 (all panels): response time vs epsilon",
        x_label="epsilon", y_label="seconds",
    ))


def test_figure6_paper_claims(report, benchmark):
    series = benchmark(figure6_series)
    rows = []
    for panel, points in series.items():
        c11 = next(p for p in points if abs(p.privacy_c - 1.1) < 1e-9)
        rows.append([panel, c11.query_time, c11.query_time < 1.0])
    report.line("§5 claim: sub-second at c = 1.1 for DBs up to 100 GB")
    report.table(["panel", "response @ c=1.1 (s)", "sub-second"], rows)
    by_panel = dict((row[0], row[2]) for row in rows)
    assert by_panel["1GB"] and by_panel["10GB"] and by_panel["100GB"]
    assert not by_panel["1TB"]
    assert list(FIGURE6_EPSILONS)[0] == 0.01
