"""Figure 5 — page retrieval time & secure storage vs cache size (10 KB pages, c = 2)."""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import figure4_series, figure5_series
from repro.analysis.plots import ascii_plot


def test_figure5_series(report, benchmark):
    series = benchmark(figure5_series)
    for panel, points in series.items():
        report.line(f"Figure 5 ({panel} database, B = 10 KB, c = 2)")
        report.table(
            ["m (pages)", "k", "response (s)", "storage (MB)"],
            [
                [p.cache_pages, p.block_size, p.query_time, p.secure_storage_mb]
                for p in points
            ],
        )
        report.line()
        times = [p.query_time for p in points]
        assert times == sorted(times, reverse=True), panel
    # Paper's anchor: 94 ms at (1 GB, m = 5000).
    assert series["1GB"][-1].query_time == pytest.approx(0.094, abs=0.004)
    report.line(ascii_plot(
        [
            (panel, [p.cache_pages for p in points],
             [p.query_time for p in points])
            for panel, points in series.items()
        ],
        log_x=True, log_y=True,
        title="Figure 5 (all panels): response time vs cache size (10 KB)",
        x_label="m", y_label="seconds",
    ))


def test_figure5_crossover_against_figure4(report, benchmark):
    """Shape check: at matched panels, 10 KB pages cost more per query than
    1 KB pages (more bytes per request despite smaller n)."""
    f4 = benchmark(figure4_series)
    f5 = figure5_series()
    rows = []
    for panel in f4:
        t4 = f4[panel][-1].query_time
        t5 = f5[panel][-1].query_time
        rows.append([panel, t4, t5, t5 / t4])
        assert t5 > t4
    report.line("largest-cache point of each panel: 1 KB vs 10 KB pages")
    report.table(["panel", "1KB (s)", "10KB (s)", "ratio"], rows)
