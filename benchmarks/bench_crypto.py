"""Micro-benchmarks of the cryptographic substrate.

Engineering numbers for this implementation (the *paper's* crypto cost is
the Table-2 r_ed constant, charged by the timing model): throughput of each
cipher-suite backend, the raw AES block transform, and the oblivious
shuffle's compare-exchange.
"""

from __future__ import annotations

import pytest

from repro.crypto.aes import AES
from repro.crypto.rng import SecureRandom
from repro.crypto.sha256 import sha256
from repro.crypto.suite import BACKENDS, CipherSuite


@pytest.mark.parametrize("backend", BACKENDS)
def test_suite_roundtrip_throughput(benchmark, backend):
    suite = CipherSuite(b"bench", backend=backend, rng=SecureRandom(1))
    payload = bytes(1024)

    def roundtrip():
        return suite.decrypt_page(suite.encrypt_page(payload))

    assert benchmark(roundtrip) == payload


def test_aes_block_transform(benchmark):
    cipher = AES(bytes(16))
    block = bytes(16)
    benchmark(lambda: cipher.encrypt_block(block))


def test_pure_sha256_throughput(benchmark):
    data = bytes(4096)
    benchmark(lambda: sha256(data))


def test_rng_randrange(benchmark):
    rng = SecureRandom(2)
    benchmark(lambda: rng.randrange(10**6))


def test_compare_exchange(benchmark, report):
    """One oblivious-shuffle comparator: 2 unseals + 2 fresh seals."""
    from repro.shuffle.oblivious import ObliviousShuffler, network_size
    from repro.storage.page import Page

    suite = CipherSuite(b"bench", backend="blake2", rng=SecureRandom(3))
    shuffler = ObliviousShuffler(suite, SecureRandom(4), 64)
    frame_a = shuffler.seal_tagged(SecureRandom(5).token(16), Page(0, bytes(64)))
    frame_b = shuffler.seal_tagged(SecureRandom(6).token(16), Page(1, bytes(64)))

    def compare_exchange():
        tag_a, page_a = shuffler.unseal_tagged(frame_a)
        tag_b, page_b = shuffler.unseal_tagged(frame_b)
        if tag_a > tag_b:
            page_a, page_b = page_b, page_a
            tag_a, tag_b = tag_b, tag_a
        return (shuffler.seal_tagged(tag_a, page_a),
                shuffler.seal_tagged(tag_b, page_b))

    benchmark(compare_exchange)
    per_op = benchmark.stats.stats.mean
    for n in (1024, 65536):
        comparators = network_size(n)
        report.line(
            f"oblivious setup estimate for n = {n}: {comparators} comparators "
            f"~= {comparators * per_op:.1f} s at this machine's crypto speed"
        )
