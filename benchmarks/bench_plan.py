"""Planner + autotuner benchmark — predictions that survive measurement.

``repro.plan`` makes two falsifiable claims, and this bench gates both on
one pinned workload:

* **Prediction accuracy** — the offline planner's per-phase cost
  predictions (spec-calibrated *and* probe-calibrated) must each land
  within ``MAX_VERIFY_ERROR`` of a traced measurement of the planned
  configuration on the virtual clock (exit 1).  A planner that can't
  predict what its own plan costs is a random-number generator with a
  dataclass.
* **Controller discipline** — with a live database serving queries while
  a background re-permutation epoch runs, the online controller must
  (a) record at least one adjustment of *each* cost-side tunable
  (admission rate, pipeline byte budget, reshuffle pacing), (b) hold the
  virtual-clock query p99 at or under its latency target, and (c) leave
  every privacy parameter (k, m, n — hence the achieved c) untouched
  (privacy drift is exit 2: correctness, not performance).

Besides the pytest check, this file is a script::

    PYTHONPATH=src python benchmarks/bench_plan.py --quick --out run.jsonl

emitting the perf-gate JSONL layout (meta line + phase rows) that
``benchmarks/compare_bench.py`` diffs against
``benchmarks/results/perf_baseline_plan.jsonl``.  The verify phases run
on the virtual clock under a pinned seed, so their count/bytes/virtual
columns are exact; the controller gate re-runs best-of-N because the
admission token bucket and the background epoch's interleaving are
wall-clock-driven even though the gated p99 itself is virtual.
"""

from __future__ import annotations

import argparse
import sys
import time
from os import path
from typing import List, Optional, Tuple

try:
    import repro  # noqa: F401
except ImportError:  # script mode from a checkout without PYTHONPATH
    sys.path.insert(0, path.join(path.dirname(__file__), "..", "src"))

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.core.journal import MemoryJournal
from repro.hardware.specs import IBM_4764
from repro.net.admission import AdmissionController, TokenBucket
from repro.obs.registry import MetricsRegistry
from repro.plan import CalibratedCostModel, PlanController, PlanTarget
from repro.plan import plan as solve_plan
from repro.plan import verify_plan
from repro.plan.model import frame_size_for

#: Pinned workload shape — change it and the committed baseline together.
DEFAULT_SEED = 4471
DEFAULT_VERIFY_QUERIES = 64
QUICK_VERIFY_QUERIES = 32

_BENCH_RECORDS = 96
_BENCH_PAGE_SIZE = 32
_VERIFY_TARGET = dict(num_pages=_BENCH_RECORDS, page_size=_BENCH_PAGE_SIZE,
                      p99_seconds=0.05, qps=5.0, privacy_c=3.0)
_PROBE_BLOCK_SIZES = (4, 12)

#: Controller-run shape: a real database under queries while a background
#: epoch runs, the controller stepping once per batch of requests.
_CTRL_BLOCK_SIZE = 8
_CTRL_CACHE = 8
_CTRL_TARGET_P99 = 0.5          # virtual seconds; Eq. 8 floor is ~0.02
_CTRL_CYCLES = 8
_CTRL_QUERIES_PER_CYCLE = 16
_CTRL_BUCKET_RATE = 50.0        # undersized on purpose: must shed
_CTRL_BUCKET_BURST = 2.0
_CTRL_EPOCH_DEADLINE = 30.0     # wall seconds to drain the epoch after

MAX_VERIFY_ERROR = 0.15
_TUNABLES = ("admission", "pipeline", "reshuffle")
_CTRL_ATTEMPTS = 3              # best-of-N: wall-driven interleaving


def _percentile_gate_target() -> float:
    return _CTRL_TARGET_P99


# ---------------------------------------------------------------------------
# Deterministic phases (virtual clock): prediction-accuracy gates
# ---------------------------------------------------------------------------


def _verify_rows_to_phase(name: str, built, rows: List[dict],
                          queries: int, wall: float) -> dict:
    total = next(row for row in rows if row["phase"] == "total")
    frame = frame_size_for(built.target.page_size)
    return {
        "kind": "phase", "name": name,
        "count": queries,
        "bytes": queries * (built.block_size + 1) * frame,
        "virtual_s": total["measured_s"] * queries,
        "wall_s": wall,
    }


def run_verify_gate(calibrate: str, queries: int,
                    seed: int) -> Tuple[dict, dict, List[str]]:
    """Plan the pinned target, measure it, gate every phase's error.

    Returns (phase_row, worst, problems): ``worst`` holds the phase with
    the largest prediction error for reporting.
    """
    problems: List[str] = []
    if calibrate == "probe":
        model = CalibratedCostModel.from_probe(
            page_size=_BENCH_PAGE_SIZE, num_records=_BENCH_RECORDS,
            queries=queries, seed=seed, block_sizes=_PROBE_BLOCK_SIZES,
        )
    else:
        model = CalibratedCostModel.from_spec(
            IBM_4764, page_size=_BENCH_PAGE_SIZE
        )
    built = solve_plan(PlanTarget(**_VERIFY_TARGET), model=model)
    wall_start = time.perf_counter()
    rows = verify_plan(built, model, queries=queries, seed=seed)
    wall = time.perf_counter() - wall_start
    if built.achieved_c > _VERIFY_TARGET["privacy_c"] * (1 + 1e-9):
        problems.append(
            f"{calibrate}: planned c={built.achieved_c:.4f} misses the "
            f"c={_VERIFY_TARGET['privacy_c']} bound"
        )
    worst = max(rows, key=lambda row: row["error"])
    for row in rows:
        if row["error"] > MAX_VERIFY_ERROR:
            problems.append(
                f"{calibrate}: phase {row['phase']} prediction "
                f"{row['predicted_s']:.3e}s vs measured "
                f"{row['measured_s']:.3e}s — error {row['error']:.1%} > "
                f"{MAX_VERIFY_ERROR:.0%}"
            )
    phase_row = _verify_rows_to_phase(
        f"plan.verify.{calibrate}", built, rows, queries, wall
    )
    return phase_row, worst, problems


# ---------------------------------------------------------------------------
# Controller gate: live traffic, background epoch, three tunables
# ---------------------------------------------------------------------------


def _controller_attempt(seed: int) -> Tuple[dict, List[str], List[str]]:
    """One controller-on run. Returns (stats, correctness, perf problems)."""
    correctness: List[str] = []
    perf: List[str] = []
    records = make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE)
    registry = MetricsRegistry()
    db = PirDatabase.create(
        records,
        cache_capacity=_CTRL_CACHE,
        block_size=_CTRL_BLOCK_SIZE,
        page_capacity=_BENCH_PAGE_SIZE,
        cipher_backend="blake2",
        trace_enabled=False,
        seed=seed,
        spec=IBM_4764,
        metrics=registry,
        keystream_pipeline="sync",
    )
    admission = AdmissionController(
        bucket=TokenBucket(rate=_CTRL_BUCKET_RATE,
                           capacity=_CTRL_BUCKET_BURST),
        metrics=registry,
    )
    privacy_before = (db.params.block_size, db.params.cache_capacity,
                      db.params.num_locations, db.params.achieved_c)
    driver = db.begin_reshuffle(batch_size=2, background=True,
                                idle_interval=0.02,
                                journal=MemoryJournal())
    controller = PlanController(
        registry,
        target_p99=_CTRL_TARGET_P99,
        admission=admission,
        pipeline=db.cop.pipeline,
        reshuffler=lambda: db.reshuffle,
        # Any window with a miss grows the budget; any near-perfect window
        # with idle budget shrinks it — either way the pipeline knob moves
        # on real traffic.
        hit_rate_target=0.999,
    )
    try:
        sheds = 0
        for cycle in range(_CTRL_CYCLES):
            for i in range(_CTRL_QUERIES_PER_CYCLE):
                page_id = (cycle * _CTRL_QUERIES_PER_CYCLE + i * 13) \
                    % _BENCH_RECORDS
                if admission.admit_request(0) is not None:
                    sheds += 1  # shed requests still count as offered load
                if db.query(page_id) != records[page_id]:
                    correctness.append(
                        f"cycle {cycle} query {page_id} returned wrong bytes"
                    )
            controller.step()

        # Drain the epoch (the controller has been speeding its pacing up)
        # so the closing consistency check runs on a settled database.
        driver.set_pacing(batch_size=512, idle_interval=1e-5)
        deadline = time.time() + _CTRL_EPOCH_DEADLINE
        while driver.active and time.time() < deadline:
            time.sleep(0.01)
        if driver.active:
            perf.append("background epoch did not finish within the "
                        f"{_CTRL_EPOCH_DEADLINE:.0f}s drain deadline")
        db.consistency_check()

        privacy_after = (db.params.block_size, db.params.cache_capacity,
                         db.params.num_locations, db.params.achieved_c)
        if privacy_after != privacy_before:
            correctness.append(
                f"privacy parameters drifted: {privacy_before} -> "
                f"{privacy_after}"
            )
        touched = {a.tunable for a in controller.adjustments}
        if not touched <= set(_TUNABLES):
            correctness.append(
                f"controller touched non-cost tunables: "
                f"{sorted(touched - set(_TUNABLES))}"
            )
        for tunable in _TUNABLES:
            if tunable not in touched:
                perf.append(f"controller never adjusted the {tunable} "
                            "tunable under forced pressure")
        p99 = registry.histogram("engine.query_seconds").quantile(0.99)
        if p99 > _percentile_gate_target():
            perf.append(
                f"virtual query p99 {p99:.4f}s breached the controller "
                f"target {_CTRL_TARGET_P99:.2f}s"
            )
        if sheds == 0:
            perf.append("undersized admission bucket never shed — the "
                        "admission gate is vacuous")
        stats = {
            "ctrl_p99_virtual_s": p99,
            "ctrl_adjustments": len(controller.adjustments),
            "ctrl_tunables": sorted(touched),
            "ctrl_sheds": sheds,
            "ctrl_cycles": registry.counter("plan.cycles").value,
        }
        return stats, correctness, perf
    finally:
        controller.close()
        if db.reshuffle is not None:
            db.reshuffle.close()
        db.close()


def run_controller_gate(seed: int) -> Tuple[dict, List[str], List[str]]:
    """Best-of-N controller gate (see module doc for why it may retry)."""
    stats: dict = {}
    correctness: List[str] = []
    perf: List[str] = []
    for attempt in range(_CTRL_ATTEMPTS):
        stats, correctness, perf = _controller_attempt(seed + attempt)
        if correctness or not perf:
            break
        print(f"note: controller attempt {attempt + 1}/{_CTRL_ATTEMPTS} "
              f"missed a gate ({'; '.join(perf)}); retrying",
              file=sys.stderr)
    return stats, correctness, perf


# ---------------------------------------------------------------------------
# Pytest check (collected with the benchmark suite)
# ---------------------------------------------------------------------------


def test_plan_verify_and_autotune(report):
    """Per-phase prediction error <= 15% both calibrations; controller
    moves every cost tunable while privacy stays frozen."""
    spec_row, spec_worst, spec_problems = run_verify_gate(
        "spec", QUICK_VERIFY_QUERIES, DEFAULT_SEED
    )
    probe_row, probe_worst, probe_problems = run_verify_gate(
        "probe", QUICK_VERIFY_QUERIES, DEFAULT_SEED
    )
    assert spec_problems + probe_problems == []

    stats, correctness, perf = run_controller_gate(DEFAULT_SEED)
    assert correctness == []
    assert perf == []

    report.table(
        ["calibration", "worst phase", "predicted s", "measured s", "error"],
        [["spec", spec_worst["phase"], spec_worst["predicted_s"],
          spec_worst["measured_s"], f"{spec_worst['error']:.2%}"],
         ["probe", probe_worst["phase"], probe_worst["predicted_s"],
          probe_worst["measured_s"], f"{probe_worst['error']:.2%}"]],
    )
    report.line(
        f"controller: {stats['ctrl_adjustments']} adjustments across "
        f"{stats['ctrl_tunables']} over {stats['ctrl_cycles']} cycles, "
        f"virtual p99 {stats['ctrl_p99_virtual_s']:.4f}s <= "
        f"{_CTRL_TARGET_P99}s target, {stats['ctrl_sheds']} sheds absorbed, "
        f"privacy parameters byte-identical"
    )
    _ = spec_row, probe_row  # phase rows are exercised by script mode


# ---------------------------------------------------------------------------
# Script mode: structured JSONL for the CI perf gate
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    try:
        from bench_engine import calibration_seconds  # script mode
    except ImportError:
        from benchmarks.bench_engine import calibration_seconds
    from repro.obs import write_jsonl

    parser = argparse.ArgumentParser(
        description="planner/autotuner benchmark (JSONL for the CI perf "
                    "gate)"
    )
    parser.add_argument("--quick", action="store_true",
                        help=f"verify with {QUICK_VERIFY_QUERIES} queries "
                             f"instead of {DEFAULT_VERIFY_QUERIES}")
    parser.add_argument("--queries", type=int, default=0,
                        help="explicit verify query count (overrides "
                             "--quick)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--skip-controller", action="store_true",
                        help="skip the live controller gate (deterministic "
                             "verify phases only)")
    parser.add_argument("--out", default="",
                        help="JSONL output path (default stdout)")
    args = parser.parse_args(argv)

    queries = args.queries or (QUICK_VERIFY_QUERIES if args.quick
                               else DEFAULT_VERIFY_QUERIES)
    calibration = calibration_seconds()

    spec_row, spec_worst, problems = run_verify_gate(
        "spec", queries, args.seed
    )
    probe_row, probe_worst, probe_problems = run_verify_gate(
        "probe", queries, args.seed
    )
    problems += probe_problems
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1

    stats: dict = {}
    if not args.skip_controller:
        stats, correctness, perf = run_controller_gate(args.seed)
        for problem in correctness:
            print(f"error: {problem}", file=sys.stderr)
        if correctness:
            return 2
        if perf:
            for problem in perf:
                print(f"error: {problem}", file=sys.stderr)
            return 1

    rows = [dict({
        "kind": "meta",
        "queries": queries,
        "seed": args.seed,
        "pages": _BENCH_RECORDS,
        "page_size": _BENCH_PAGE_SIZE,
        "block_size": _CTRL_BLOCK_SIZE,
        "calibration_s": calibration,
        # Informational (not gated here): the in-script error and
        # controller gates above are the gates; compare_bench.py gates the
        # virtual_s columns exactly.
        "verify_worst_error_spec": spec_worst["error"],
        "verify_worst_error_probe": probe_worst["error"],
    }, **stats)]
    rows.append(spec_row)
    rows.append(probe_row)
    if args.out:
        written = write_jsonl(args.out, rows)
        print(f"wrote {written} rows (worst spec error "
              f"{spec_worst['error']:.2%}, worst probe error "
              f"{probe_worst['error']:.2%}"
              + (f", {stats['ctrl_adjustments']} controller adjustments"
                 if stats else "")
              + f") to {args.out}")
    else:
        import json

        for row in rows:
            print(json.dumps(row, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
