"""Deployment extensions: multi-unit partitioning and online key rotation.

Not figures in the paper, but direct consequences of its §5 discussion:

* partitioning the database over several coprocessors shrinks each unit's
  n (hence k and latency) at the price of either shard-id leakage or
  cover traffic;
* the continuous reshuffle makes key rotation free — one scan period of
  ordinary requests migrates every frame to the new key with zero extra
  disk accesses.
"""

from __future__ import annotations

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.core.sharded import ShardedPirDatabase
from repro.crypto.suite import CipherSuite
from repro.errors import AuthenticationError
from repro.hardware.specs import HardwareSpec

_RECORDS = make_records(96, 16)


def test_partitioned_deployment(report, benchmark):
    single = PirDatabase.create(
        _RECORDS, cache_capacity=6, target_c=2.0, page_capacity=16,
        spec=HardwareSpec(), seed=1,
    )
    rows = []
    single_start = single.clock.now
    single.query(0)
    single_latency = single.clock.now - single_start
    rows.append(["1 (single)", single.params.block_size, single_latency,
                 single.engine.request_count])
    for shards in (2, 4):
        db = ShardedPirDatabase.create(
            _RECORDS, shards, cache_capacity_per_shard=6, target_c=2.0,
            page_capacity=16, spec=HardwareSpec(), seed=shards,
        )
        before = db.elapsed()
        db.query(0)
        rows.append([
            f"{shards} (cover traffic)",
            max(s.params.block_size for s in db.shards),
            db.elapsed() - before,
            db.total_requests(),
        ])
    benchmark(lambda: single.query(1))
    report.line("partitioned deployment (96 pages, c = 2, m = 6/unit)")
    report.table(
        ["units", "k per unit", "latency (s, parallel)", "requests issued"],
        rows,
    )
    # Partitioning shrinks per-unit k and the parallel latency.
    assert rows[1][1] <= rows[0][1]
    assert rows[2][2] <= rows[0][2] + 1e-12


def test_online_key_rotation(report, benchmark):
    db = PirDatabase.create(
        _RECORDS, cache_capacity=8, target_c=2.0, page_capacity=16,
        seed=5, master_key=b"epoch-1",
    )

    def count_under(key: bytes) -> int:
        probe = CipherSuite(key, backend=db.cop.suite.backend)
        hits = 0
        for location in range(db.disk.num_locations):
            try:
                probe.decrypt_page(db.disk.peek(location))
                hits += 1
            except AuthenticationError:
                pass
        return hits

    accesses_before = len(db.trace)
    db.rotate_master_key(b"epoch-2")
    period = db.params.scan_period
    migration = []
    checkpoints = [period // 4, period // 2, period]
    done = 0
    for stop in checkpoints:
        while done < stop:
            db.touch()
            done += 1
        migration.append([done, count_under(b"epoch-2"),
                          count_under(b"epoch-1")])
    # Zero extra disk accesses beyond the requests themselves: 4 per request.
    accesses = len(db.trace) - accesses_before
    extra_accesses = accesses - 4 * period
    benchmark(lambda: db.touch())
    report.line(f"online key rotation over one scan period (T = {period})")
    report.table(["requests since rotation", "new-key frames",
                  "old-key frames"], migration)
    assert migration[-1][2] == 0  # fully migrated
    assert not db.cop.rotation_in_progress
    report.table(
        ["disk accesses during rotation", "per request", "extra for rotation"],
        [[accesses, accesses / period, extra_accesses]],
    )
    assert extra_accesses == 0
