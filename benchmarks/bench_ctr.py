"""CTR fast-path benchmark: T-table AES kernel + keystream prefetch pipeline.

Quantifies the two layers of the CTR fast-path PR:

* **Kernel speedup** — the same pinned CTR keystream workload is generated
  twice through :func:`repro.crypto.modes.ctr_keystream`, once with the
  byte-wise reference AES and once with the accelerated kernel (T-tables,
  vectorised above :data:`~repro.crypto.aes.VECTOR_THRESHOLD_BLOCKS`
  blocks).  The outputs are asserted byte-identical and the run *fails*
  if the accelerated path is less than 3x faster in wall time.
* **Prefetch hit rate** — a sequential scan workload on an aes-backend
  database with the sync :class:`~repro.crypto.pipeline.KeystreamPipeline`
  attached.  The scan order is deterministic, so all ``k`` block frames
  of every request should be served from the prefetch cache and only the
  unpredictable extra frame should miss: the run fails below a 90% hit
  rate (k=16 predicts k/(k+1) = 94.1%).

Besides the pytest checks, this file is a script::

    PYTHONPATH=src python benchmarks/bench_ctr.py --quick --out run.jsonl

emitting the perf-gate JSONL layout (meta line + phase rows) that
``benchmarks/compare_bench.py`` diffs against
``benchmarks/results/perf_baseline_ctr.jsonl``.  Count/bytes/virtual
columns are deterministic under the pinned seed; wall times are
calibration-normalised by the gate.  The kernel-speedup and hit-rate
gates run in-script, so a baseline diff is not needed to catch a fast
path that silently stopped being fast.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from os import path
from typing import List, Optional

try:
    import repro  # noqa: F401
except ImportError:  # script mode from a checkout without PYTHONPATH
    sys.path.insert(0, path.join(path.dirname(__file__), "..", "src"))

from repro.baselines import make_records
from repro.core.database import PirDatabase
from repro.crypto.aes import AES
from repro.crypto.modes import ctr_keystream

#: Pinned workload shape — change it and the committed baseline together.
DEFAULT_SEED = 9001
DEFAULT_QUERIES = 96
QUICK_QUERIES = 48
_BENCH_RECORDS = 96
_BENCH_PAGE_SIZE = 64
_BENCH_BLOCK_SIZE = 16  # k; predicted steady-state hit rate k/(k+1) = 94.1%
_BENCH_CACHE = 4
_KEYSTREAM_BLOCKS = 2048  # blocks per keystream message (32 KiB)
_KEYSTREAM_MESSAGES = 4

MIN_KERNEL_SPEEDUP = 3.0
MIN_HIT_RATE = 0.90


def run_keystream(accel: bool, seed: int):
    """Generate the pinned CTR keystream workload; returns (digest, wall)."""
    rng = random.Random(seed)
    key = rng.randbytes(16)
    nonces = [rng.randbytes(12) for _ in range(_KEYSTREAM_MESSAGES)]
    cipher = AES(key, accel=accel)
    length = _KEYSTREAM_BLOCKS * 16
    start = time.perf_counter()
    streams = [ctr_keystream(cipher, nonce, length) for nonce in nonces]
    wall = time.perf_counter() - start
    return streams, wall


def run_pipeline_scan(queries: int, seed: int, pipeline: Optional[str] = "sync"):
    """Sequential scan on an aes-backend database with prefetch attached."""
    from repro.hardware.specs import IBM_4764

    db = PirDatabase.create(
        make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE),
        cache_capacity=_BENCH_CACHE,
        block_size=_BENCH_BLOCK_SIZE,
        page_capacity=_BENCH_PAGE_SIZE,
        spec=IBM_4764,
        seed=seed,
        cipher_backend="aes",
        keystream_pipeline=pipeline,
        trace_enabled=False,
    )
    start = time.perf_counter()
    payloads = [db.query(index % _BENCH_RECORDS) for index in range(queries)]
    wall = time.perf_counter() - start
    db.close()
    return payloads, db, wall


# ---------------------------------------------------------------------------
# Pytest checks (collected with the benchmark suite)
# ---------------------------------------------------------------------------


def test_kernel_speedup_and_identity(report):
    """Accel keystream is byte-identical to reference and >= 3x faster."""
    reference, ref_wall = run_keystream(False, DEFAULT_SEED)
    accel, accel_wall = run_keystream(True, DEFAULT_SEED)
    assert accel == reference
    speedup = ref_wall / accel_wall if accel_wall else float("inf")
    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"accel keystream only {speedup:.2f}x faster than reference "
        f"(need {MIN_KERNEL_SPEEDUP}x)"
    )
    nbytes = _KEYSTREAM_MESSAGES * _KEYSTREAM_BLOCKS * 16
    report.line(f"CTR keystream, {_KEYSTREAM_MESSAGES} messages x "
                f"{_KEYSTREAM_BLOCKS} blocks ({nbytes // 1024} KiB total)")
    report.table(
        ["kernel", "wall (s)", "MB/s"],
        [
            ["reference", ref_wall, nbytes / ref_wall / 1e6],
            ["accel", accel_wall, nbytes / accel_wall / 1e6],
        ],
    )
    report.line(f"kernel speedup: {speedup:.1f}x")


def test_pipeline_hit_rate_on_sequential_scan(report):
    """>= 90% prefetch hit rate, frames identical to the pipeline-off run."""
    payloads, db, _wall = run_pipeline_scan(QUICK_QUERIES, DEFAULT_SEED)
    off_payloads, off_db, _off_wall = run_pipeline_scan(
        QUICK_QUERIES, DEFAULT_SEED, pipeline=None
    )
    assert payloads == off_payloads
    assert db.clock.now == off_db.clock.now
    hit_rate = db.cop.pipeline.hit_rate()
    assert hit_rate >= MIN_HIT_RATE, (
        f"pipeline hit rate {hit_rate:.1%} < {MIN_HIT_RATE:.0%} on a "
        "sequential scan"
    )
    counters = db.cop.pipeline.counters
    report.line(f"k={_BENCH_BLOCK_SIZE} aes-backend scan, "
                f"{QUICK_QUERIES} queries, sync pipeline")
    report.table(
        ["counter", "value"],
        [[name, counters.get(name)]
         for name in ("prefetched", "hit", "miss", "evicted")],
    )
    report.line(f"hit rate {hit_rate:.1%} "
                f"(predicted k/(k+1) = {_BENCH_BLOCK_SIZE / (_BENCH_BLOCK_SIZE + 1):.1%})")


# ---------------------------------------------------------------------------
# Script mode: structured JSONL for the CI perf gate
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    try:
        from bench_engine import calibration_seconds  # script mode
    except ImportError:
        from benchmarks.bench_engine import calibration_seconds
    from repro.obs import write_jsonl

    parser = argparse.ArgumentParser(
        description="CTR fast-path benchmark (JSONL for the CI perf gate)"
    )
    parser.add_argument("--quick", action="store_true",
                        help=f"run {QUICK_QUERIES} queries instead of "
                             f"{DEFAULT_QUERIES}")
    parser.add_argument("--queries", type=int, default=0,
                        help="explicit query count (overrides --quick)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--out", default="",
                        help="JSONL output path (default stdout)")
    args = parser.parse_args(argv)

    queries = args.queries or (QUICK_QUERIES if args.quick else DEFAULT_QUERIES)
    calibration = calibration_seconds()

    reference, ref_wall = run_keystream(False, args.seed)
    accel, accel_wall = run_keystream(True, args.seed)
    if accel != reference:
        print("error: accel keystream diverged from reference", file=sys.stderr)
        return 2
    speedup = ref_wall / accel_wall if accel_wall else float("inf")
    if speedup < MIN_KERNEL_SPEEDUP:
        print(f"error: kernel speedup {speedup:.2f}x < {MIN_KERNEL_SPEEDUP}x",
              file=sys.stderr)
        return 1

    payloads, db, scan_wall = run_pipeline_scan(queries, args.seed)
    off_payloads, off_db, off_wall = run_pipeline_scan(
        queries, args.seed, pipeline=None
    )
    if payloads != off_payloads or db.clock.now != off_db.clock.now:
        print("error: pipeline run diverged from pipeline-off run",
              file=sys.stderr)
        return 2
    counters = db.cop.pipeline.counters
    hit_rate = db.cop.pipeline.hit_rate()
    if hit_rate < MIN_HIT_RATE:
        print(f"error: pipeline hit rate {hit_rate:.1%} < {MIN_HIT_RATE:.0%}",
              file=sys.stderr)
        return 1

    keystream_bytes = _KEYSTREAM_MESSAGES * _KEYSTREAM_BLOCKS * 16
    rows = [{
        "kind": "meta",
        "queries": queries,
        "seed": args.seed,
        "pages": _BENCH_RECORDS,
        "block_size": _BENCH_BLOCK_SIZE,
        "page_size": _BENCH_PAGE_SIZE,
        "calibration_s": calibration,
        # Informational (gated in-script, not by the baseline diff).
        "kernel_speedup": speedup,
        "pipeline_hit_rate": hit_rate,
    }]
    rows.append({
        "kind": "phase", "name": "keystream.reference",
        "count": _KEYSTREAM_MESSAGES * _KEYSTREAM_BLOCKS,
        "bytes": keystream_bytes,
        "virtual_s": 0.0, "wall_s": ref_wall,
    })
    rows.append({
        "kind": "phase", "name": "keystream.accel",
        "count": _KEYSTREAM_MESSAGES * _KEYSTREAM_BLOCKS,
        "bytes": keystream_bytes,
        "virtual_s": 0.0, "wall_s": accel_wall,
    })
    rows.append({
        "kind": "phase", "name": "scan.pipeline",
        "count": counters.get("hit") + counters.get("miss"),
        "bytes": counters.get("hit") * db.cop.plaintext_page_size,
        "virtual_s": db.clock.now, "wall_s": scan_wall,
    })
    rows.append({
        "kind": "phase", "name": "scan.inline",
        "count": queries, "bytes": 0,
        "virtual_s": off_db.clock.now, "wall_s": off_wall,
    })
    if args.out:
        written = write_jsonl(args.out, rows)
        print(f"wrote {written} rows ({queries} queries, "
              f"kernel speedup {speedup:.1f}x, "
              f"hit rate {hit_rate:.1%}) to {args.out}")
    else:
        import json

        for row in rows:
            print(json.dumps(row, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
