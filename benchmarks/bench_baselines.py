"""§1/§2 claim — constant response time vs amortized PIR baselines.

Executes all four schemes (this paper's c-approximate scheme, trivial PIR,
Wang et al. 2006, square-root ORAM) over the same request stream on the
Table-2 timing model, and prints their latency profiles.  The paper's
motivating observation — perfect-privacy schemes stall on reshuffles while
this scheme's latency is flat — shows up as the CV / max-vs-median columns.

A second table gives the full-scale analytical worst case, where a Wang
reshuffle means streaming the whole database (hours for 1 TB) versus this
scheme's constant sub-second retrievals.
"""

from __future__ import annotations

from repro.analysis.costmodel import AnalyticalCostModel
from repro.baselines import (
    CApproxScheme,
    PyramidOram,
    SquareRootOram,
    TrivialPir,
    WangPir,
    make_records,
    measure_latencies,
)
from repro.core.database import PirDatabase
from repro.crypto.rng import SecureRandom
from repro.hardware.specs import IBM_4764, HardwareSpec

_N = 256
_RECORDS = make_records(_N, 16)


def _stream(count=120, seed=5):
    rng = SecureRandom(seed)
    return [rng.randrange(_N) for _ in range(count)]


def test_latency_profiles(report, benchmark):
    stream = _stream()
    db = PirDatabase.create(
        _RECORDS, cache_capacity=16, target_c=2.0, page_capacity=16,
        spec=HardwareSpec(), seed=1,
    )
    schemes = [
        CApproxScheme(db),
        WangPir.create(_RECORDS, storage_capacity=16, page_capacity=16,
                       spec=HardwareSpec(), seed=2),
        SquareRootOram.create(_RECORDS, page_capacity=16,
                              spec=HardwareSpec(), seed=3),
        PyramidOram.create(_RECORDS, page_capacity=16,
                           spec=HardwareSpec(), seed=6),
        TrivialPir.create(_RECORDS, page_capacity=16,
                          spec=HardwareSpec(), seed=4),
    ]
    rows = []
    for scheme in schemes:
        ids = stream if scheme.name != "trivial" else stream[:10]
        series = measure_latencies(scheme, ids)
        summary = series.summary()
        rows.append([
            scheme.name, summary["mean"], summary["p50"], summary["p99"],
            summary["max"], summary["cv"],
        ])
    benchmark(lambda: db.query(0))
    report.line(f"executed latency profiles (n = {_N} pages, Table-2 timing)")
    report.table(["scheme", "mean (s)", "p50 (s)", "p99 (s)", "max (s)", "CV"],
                 rows)
    by_name = {row[0]: row for row in rows}
    assert by_name["c-approx"][5] < 1e-9          # constant
    assert by_name["wang2006"][5] > 0.3            # spiky
    assert by_name["sqrt-oram"][5] > 0.2           # spiky
    assert by_name["pyramid-oram"][5] > 0.15       # spiky
    # Work per query: trivial PIR moves the whole database, we move 2(k+1)
    # pages.  (At n = 256 with batched reads the trivial scan pays fewer
    # *seeks*, so the wall-clock comparison belongs to the full-scale table
    # below; the per-request byte volume is the scale-free claim.)
    k = db.params.block_size
    assert _N > 2 * (k + 1)


def test_full_scale_worst_case(report, benchmark):
    """Analytical worst-case response time at paper scale (1 KB pages, c=2)."""
    model = benchmark(AnalyticalCostModel)
    page = 1000
    rows = []
    for label, n, m in (("1GB", 10**6, 50_000), ("10GB", 10**7, 100_000),
                        ("1TB", 10**9, 500_000)):
        ours = model.point(n * page, page, m, 2.0).query_time
        # Wang et al.: normal query = 1 page read; worst case = reshuffle,
        # i.e. stream n pages in and out through the crypto engine.
        reshuffle = 2 * n * page * (
            1 / IBM_4764.disk.read_bandwidth
            + 1 / IBM_4764.link_bandwidth
            + 1 / IBM_4764.crypto_throughput
        )
        # sqrt-ORAM: per-access sqrt(n) shelter scan; same reshuffle spike.
        shelter = int(n**0.5)
        sqrt_access = 2 * IBM_4764.disk.seek_time + (shelter + 1) * page * (
            1 / IBM_4764.disk.read_bandwidth
            + 1 / IBM_4764.link_bandwidth
            + 1 / IBM_4764.crypto_throughput
        )
        trivial = n * page * (
            1 / IBM_4764.disk.read_bandwidth
            + 1 / IBM_4764.link_bandwidth
            + 1 / IBM_4764.crypto_throughput
        )
        rows.append([label, ours, ours, sqrt_access, reshuffle, trivial])
        assert ours < reshuffle and ours < trivial
    report.line("full-scale response times (s): typical and worst case")
    report.table(
        ["DB", "ours typical", "ours worst", "sqrt-ORAM typical",
         "Wang/ORAM reshuffle spike", "trivial scan"],
        rows,
    )
