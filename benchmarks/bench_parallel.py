"""Parallel shard dispatch + batched crypto pipeline benchmark.

Quantifies the two changes of the parallel-execution PR:

* **Shard-level parallelism** — the same pinned query stream is driven
  through a 4-shard partitioned deployment twice, with the
  :class:`~repro.core.sharded.ShardExecutor` in serial and in parallel
  mode.  Per-shard state is identical in both runs (each shard owns its
  clock/RNG), so the deterministic speedup is the ratio of the summed
  shard clocks (one unit doing everything in turn) to their max (parallel
  hardware) — the quantity the paper's §5 partitioning argument prices.
  The run *fails* if that ratio drops below 2x on 4 shards, which would
  mean cover traffic stopped equalising shard work.
* **Batched crypto** — a microbench of ``encrypt_pages``/``decrypt_pages``
  over block-sized batches, the call shape the engine now uses (two suite
  entries per request instead of ``2(k+1)``).

Besides the pytest checks, this file is a script::

    PYTHONPATH=src python benchmarks/bench_parallel.py --quick --out run.jsonl

emitting the perf-gate JSONL layout (meta line + phase rows) that
``benchmarks/compare_bench.py`` diffs against
``benchmarks/results/perf_baseline_parallel.jsonl``.  The count/bytes/
virtual-second columns are deterministic under the pinned seed; wall
times are calibration-normalised by the gate.  CI passes a looser
wall threshold for this lane than for the single-engine one because
thread scheduling adds jitter that the virtual columns are immune to.
"""

from __future__ import annotations

import argparse
import sys
import time
from os import path
from typing import List, Optional

try:
    import repro  # noqa: F401
except ImportError:  # script mode from a checkout without PYTHONPATH
    sys.path.insert(0, path.join(path.dirname(__file__), "..", "src"))

from repro.baselines import make_records
from repro.core.sharded import ShardedPirDatabase
from repro.crypto.rng import SecureRandom
from repro.crypto.suite import CipherSuite

#: Pinned workload shape — change it and the committed baseline together.
DEFAULT_SEED = 4321
DEFAULT_QUERIES = 240
QUICK_QUERIES = 80
_BENCH_RECORDS = 128
_BENCH_SHARDS = 4
_BENCH_PAGE_SIZE = 64
_CACHE_PER_SHARD = 4
_CRYPTO_BATCH_FRAMES = 9   # a k=8 block plus the extra frame
_CRYPTO_BATCH_ROUNDS = 60


def run_workload(parallel: bool, queries: int, seed: int):
    """Drive the pinned query stream; returns (payloads, db, wall_seconds)."""
    from repro.hardware.specs import IBM_4764

    db = ShardedPirDatabase.create(
        make_records(_BENCH_RECORDS, _BENCH_PAGE_SIZE),
        _BENCH_SHARDS,
        cache_capacity_per_shard=_CACHE_PER_SHARD,
        target_c=2.0,
        page_capacity=_BENCH_PAGE_SIZE,
        cover_traffic=True,
        spec=IBM_4764,
        seed=seed,
        parallel=parallel,
        cipher_backend="blake2",
        trace_enabled=False,
    )
    start = time.perf_counter()
    payloads = [db.query(index % _BENCH_RECORDS) for index in range(queries)]
    wall = time.perf_counter() - start
    db.close()
    return payloads, db, wall


def run_crypto_batch(seed: int):
    """Batched seal/unseal microbench; returns (frames, frame_bytes, wall)."""
    suite = CipherSuite(b"bench-batch", backend="blake2",
                        rng=SecureRandom(seed))
    plaintexts = [bytes([i]) * _BENCH_PAGE_SIZE
                  for i in range(_CRYPTO_BATCH_FRAMES)]
    start = time.perf_counter()
    frame_bytes = 0
    for _ in range(_CRYPTO_BATCH_ROUNDS):
        frames = suite.encrypt_pages(plaintexts)
        frame_bytes += sum(len(frame) for frame in frames)
        assert suite.decrypt_pages(frames) == plaintexts
    wall = time.perf_counter() - start
    return 2 * _CRYPTO_BATCH_ROUNDS * _CRYPTO_BATCH_FRAMES, frame_bytes * 2, wall


# ---------------------------------------------------------------------------
# Pytest checks (collected with the benchmark suite)
# ---------------------------------------------------------------------------


def test_parallel_matches_serial_and_speeds_up(report):
    """Byte-identical replies, equal shard clocks, >= 2x virtual speedup."""
    serial_payloads, serial_db, serial_wall = run_workload(
        False, QUICK_QUERIES, DEFAULT_SEED
    )
    parallel_payloads, parallel_db, parallel_wall = run_workload(
        True, QUICK_QUERIES, DEFAULT_SEED
    )
    assert parallel_payloads == serial_payloads
    assert [s.clock.now for s in parallel_db.shards] == [
        s.clock.now for s in serial_db.shards
    ]
    assert parallel_db.shard_request_counts() == \
        serial_db.shard_request_counts()
    parallel_db.consistency_check()

    speedup = parallel_db.elapsed_serial() / parallel_db.elapsed()
    assert speedup >= 2.0, (
        f"virtual speedup {speedup:.2f}x < 2x on {_BENCH_SHARDS} shards"
    )
    report.line(f"{_BENCH_SHARDS}-shard deployment, {QUICK_QUERIES} queries, "
                f"blake2 backend")
    report.table(
        ["mode", "wall (s)", "virtual (s)"],
        [
            ["serial", serial_wall, serial_db.elapsed_serial()],
            ["parallel", parallel_wall, parallel_db.elapsed()],
        ],
    )
    report.line(f"deterministic speedup (summed/max shard clocks): "
                f"{speedup:.2f}x")


def test_batch_crypto_roundtrip_counts():
    frames, nbytes, _wall = run_crypto_batch(DEFAULT_SEED)
    assert frames == 2 * _CRYPTO_BATCH_ROUNDS * _CRYPTO_BATCH_FRAMES
    assert nbytes > frames * _BENCH_PAGE_SIZE  # overhead included


# ---------------------------------------------------------------------------
# Script mode: structured JSONL for the CI perf gate
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    try:
        from bench_engine import calibration_seconds  # script mode
    except ImportError:
        from benchmarks.bench_engine import calibration_seconds
    from repro.obs import write_jsonl

    parser = argparse.ArgumentParser(
        description="parallel-dispatch benchmark (JSONL for the CI perf gate)"
    )
    parser.add_argument("--quick", action="store_true",
                        help=f"run {QUICK_QUERIES} queries instead of "
                             f"{DEFAULT_QUERIES}")
    parser.add_argument("--queries", type=int, default=0,
                        help="explicit query count (overrides --quick)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--out", default="",
                        help="JSONL output path (default stdout)")
    args = parser.parse_args(argv)

    queries = args.queries or (QUICK_QUERIES if args.quick else DEFAULT_QUERIES)
    calibration = calibration_seconds()
    serial_payloads, serial_db, serial_wall = run_workload(
        False, queries, args.seed
    )
    parallel_payloads, parallel_db, parallel_wall = run_workload(
        True, queries, args.seed
    )
    if parallel_payloads != serial_payloads:
        print("error: parallel run diverged from serial run", file=sys.stderr)
        return 2
    frames, crypto_bytes, crypto_wall = run_crypto_batch(args.seed)

    virtual_speedup = parallel_db.elapsed_serial() / parallel_db.elapsed()
    if virtual_speedup < 2.0:
        print(f"error: virtual speedup {virtual_speedup:.2f}x < 2x",
              file=sys.stderr)
        return 1

    rows = [{
        "kind": "meta",
        "queries": queries,
        "seed": args.seed,
        "pages": _BENCH_RECORDS,
        "block_size": serial_db.shards[0].params.block_size,
        "page_size": _BENCH_PAGE_SIZE,
        "shards": _BENCH_SHARDS,
        "calibration_s": calibration,
        # Informational (not gated): wall speedup is scheduler-dependent.
        "virtual_speedup": virtual_speedup,
        "wall_speedup": serial_wall / parallel_wall if parallel_wall else 0.0,
    }]
    total_ops = queries * _BENCH_SHARDS  # real op + covers per query
    rows.append({
        "kind": "phase", "name": "dispatch.serial",
        "count": total_ops, "bytes": 0,
        "virtual_s": serial_db.elapsed_serial(), "wall_s": serial_wall,
    })
    rows.append({
        "kind": "phase", "name": "dispatch.parallel",
        "count": total_ops, "bytes": 0,
        "virtual_s": parallel_db.elapsed(), "wall_s": parallel_wall,
    })
    rows.append({
        "kind": "phase", "name": "crypto.batch",
        "count": frames, "bytes": crypto_bytes,
        "virtual_s": 0.0, "wall_s": crypto_wall,
    })
    if args.out:
        written = write_jsonl(args.out, rows)
        print(f"wrote {written} rows ({queries} queries, "
              f"virtual speedup {virtual_speedup:.2f}x, "
              f"wall speedup {serial_wall / parallel_wall:.2f}x) "
              f"to {args.out}")
    else:
        import json

        for row in rows:
            print(json.dumps(row, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
