"""The data owner of the two-party model: the "secure hardware" is a server.

In the outsourcing setting (§3.1) the owner is the only client, so the
tamper-resistant coprocessor is unnecessary: the owner's own machine —
physically isolated from the provider — runs the cache, page map, keys and
the Figure-3 algorithm, while the encrypted pages live at the provider.

:class:`RemoteDisk` adapts the wire protocol to the engine's storage
interface, batching each request's accesses into exactly one READ and one
WRITE round trip (as the paper's prototype did), which is what makes the
network — not the RTT count — the bottleneck of Figure 7.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from . import messages
from .channel import SimulatedChannel
from ..core.engine import RetrievalEngine
from ..core.params import SystemParameters
from ..crypto.rng import SecureRandom
from ..errors import ConfigurationError, PageDeletedError, ProtocolError
from ..hardware.coprocessor import SecureCoprocessor
from ..hardware.specs import HardwareSpec
from ..shuffle.permutation import Permutation
from ..sim.clock import VirtualClock
from ..storage.merkle import AuthenticatedDisk
from ..storage.page import Page

__all__ = ["RemoteDisk", "DataOwner"]

_UPLOAD_BATCH = 512


class RemoteDisk:
    """Engine-facing storage adapter that speaks the wire protocol."""

    def __init__(self, channel: SimulatedChannel, num_locations: int, frame_size: int):
        self.channel = channel
        self.num_locations = num_locations
        self.frame_size = frame_size
        self.current_request = -1  # engine attribution hook; unused remotely

    def _call(self, message: messages.Message) -> messages.Message:
        response = self.channel.call(messages.encode(message, self.frame_size))
        reply = messages.decode(response, self.frame_size)
        if isinstance(reply, messages.ErrorReply):
            raise ProtocolError(f"provider error: {reply.message}")
        return reply

    def upload(self, start: int, frames: Sequence[bytes]) -> None:
        reply = self._call(messages.Upload(start, tuple(frames)))
        if not isinstance(reply, messages.UploadAck):
            raise ProtocolError(f"expected UploadAck, got {type(reply).__name__}")

    def read_request(
        self, block_start: int, count: int, extra_location: int
    ) -> Tuple[List[bytes], bytes]:
        reply = self._call(messages.ReadRequest(block_start, count, extra_location))
        if not isinstance(reply, messages.ReadResponse):
            raise ProtocolError(f"expected ReadResponse, got {type(reply).__name__}")
        if len(reply.frames) != count:
            raise ProtocolError(
                f"provider returned {len(reply.frames)} frames, expected {count}"
            )
        return list(reply.frames), reply.extra_frame

    def write_request(
        self,
        block_start: int,
        frames: Sequence[bytes],
        extra_location: int,
        extra_frame: bytes,
    ) -> None:
        reply = self._call(
            messages.WriteRequest(
                block_start, tuple(frames), extra_location, extra_frame
            )
        )
        if not isinstance(reply, messages.WriteAck):
            raise ProtocolError(f"expected WriteAck, got {type(reply).__name__}")


class DataOwner:
    """Owner-side state: keys, cache, page map, and the retrieval engine."""

    def __init__(
        self,
        params: SystemParameters,
        coprocessor: SecureCoprocessor,
        remote: RemoteDisk,
        engine: RetrievalEngine,
    ):
        self.params = params
        self.cop = coprocessor
        self.remote = remote
        self.engine = engine

    @classmethod
    def create(
        cls,
        records: Sequence[bytes],
        cache_capacity: int,
        channel_factory,
        target_c: float = 2.0,
        page_capacity: int = 1024,
        reserve_fraction: float = 0.0,
        block_size: Optional[int] = None,
        clock: Optional[VirtualClock] = None,
        seed: Optional[int] = None,
        cipher_backend: str = "blake2",
        master_key: bytes = b"owner-master-key",
        owner_spec: Optional[HardwareSpec] = None,
        rollback_protection: bool = False,
    ) -> "DataOwner":
        """Build owner state and upload the permuted encrypted database.

        ``channel_factory(clock, frame_size, num_locations)`` must return a
        connected :class:`SimulatedChannel`; the session module provides the
        standard wiring against a fresh :class:`ServiceProvider`.
        """
        if not records:
            raise ConfigurationError("records must be non-empty")
        if block_size is not None:
            params = SystemParameters.from_block_size(
                len(records), cache_capacity, block_size,
                page_capacity=page_capacity, reserve_fraction=reserve_fraction,
            )
        else:
            params = SystemParameters.solve(
                len(records), cache_capacity, target_c,
                page_capacity=page_capacity, reserve_fraction=reserve_fraction,
            )
        clock = clock if clock is not None else VirtualClock()
        rng = SecureRandom(seed)
        # The owner's machine replaces the coprocessor: no PCI link or slow
        # crypto ASIC in the loop (the network dominates instead), so the
        # owner spec defaults to a fast commodity server.
        spec = owner_spec if owner_spec is not None else HardwareSpec(
            secure_memory=2**62,
            link_bandwidth=float("inf"),
            crypto_throughput=100e6,
        )
        cop = SecureCoprocessor(
            num_pages=params.total_pages,
            cache_capacity=params.cache_capacity,
            block_size=params.block_size,
            page_capacity=params.page_capacity,
            master_key=master_key,
            spec=spec,
            clock=clock,
            rng=rng,
            cipher_backend=cipher_backend,
        )
        channel = channel_factory(clock, cop.frame_size, params.num_locations)
        remote = RemoteDisk(channel, params.num_locations, cop.frame_size)
        if rollback_protection:
            # The owner keeps a Merkle root over the provider's frames, so a
            # *malicious* provider replaying stale data is caught on read —
            # the natural hardening for the outsourcing model, where the
            # paper's honest-but-curious assumption is least comfortable.
            remote = AuthenticatedDisk(remote)

        # Setup: permute in trusted owner memory, encrypt, upload in batches.
        permutation = Permutation.random(params.num_locations, rng.spawn("setup"))
        layout = [0] * params.num_locations
        for page_id in range(params.num_locations):
            layout[permutation.apply(page_id)] = page_id

        def page_for(page_id: int) -> Page:
            if page_id < len(records):
                return Page(page_id, bytes(records[page_id]))
            return Page(page_id, b"", deleted=True)

        for start in range(0, params.num_locations, _UPLOAD_BATCH):
            stop = min(start + _UPLOAD_BATCH, params.num_locations)
            frames = [cop.seal(page_for(layout[pos])) for pos in range(start, stop)]
            remote.upload(start, frames)

        cache_pages = [
            Page(params.num_locations + slot, b"", deleted=True)
            for slot in range(params.cache_capacity)
        ]
        cop.cache.fill(cache_pages)
        for position, page_id in enumerate(layout):
            cop.page_map.set_disk(page_id, position)
            if page_id >= len(records):
                cop.page_map.mark_deleted(page_id)
        for slot, page in enumerate(cache_pages):
            cop.page_map.set_cached(page.page_id, slot)
            cop.page_map.mark_deleted(page.page_id)

        engine = RetrievalEngine(params, cop, remote)
        return cls(params, cop, remote, engine)

    # -- operations (same surface as PirDatabase) ---------------------------------

    @property
    def clock(self) -> VirtualClock:
        return self.cop.clock

    def query(self, page_id: int) -> bytes:
        page = self.engine.retrieve(page_id)
        if self.cop.page_map.is_deleted(page_id):
            raise PageDeletedError(f"page {page_id} is deleted")
        return page.payload

    def update(self, page_id: int, payload: bytes) -> None:
        self.engine.modify(page_id, payload)

    def insert(self, payload: bytes) -> int:
        return self.engine.insert(payload)

    def delete(self, page_id: int) -> None:
        self.engine.delete(page_id)

    def owner_storage_bytes(self) -> int:
        """RAM the owner dedicates to the scheme (Eq. 7 at the owner side)."""
        return self.cop.storage_report().total

    # -- suspend / resume -----------------------------------------------------
    #
    # The encrypted pages already live at the provider, so an owner restart
    # only needs its trusted state: parameters, position map, cached pages,
    # round-robin pointer.  seal_state() packs those into one blob encrypted
    # under the master key; resume() reconnects to the provider and unpacks.

    def seal_state(self) -> bytes:
        """Export the owner's trusted state as a sealed blob."""
        import json as _json

        from ..core.snapshot import _encode_trusted_state

        if self.cop.rotation_in_progress:
            raise ConfigurationError(
                "cannot seal owner state during a key rotation; finish it "
                "first (one scan period of requests)"
            )
        manifest = _json.dumps({
            "num_user_pages": self.params.num_user_pages,
            "reserve_pages": self.params.reserve_pages,
            "cache_capacity": self.params.cache_capacity,
            "block_size": self.params.block_size,
            "num_locations": self.params.num_locations,
            "page_capacity": self.params.page_capacity,
            "target_c": self.params.target_c,
            "cipher_backend": self.cop.suite.backend,
        }, sort_keys=True).encode("utf-8")
        sealed = self.cop.suite.encrypt_page(_encode_trusted_state(self))
        return (len(manifest).to_bytes(4, "big") + manifest + sealed)

    @classmethod
    def resume(
        cls,
        sealed_state: bytes,
        channel_factory,
        master_key: bytes = b"owner-master-key",
        clock: Optional[VirtualClock] = None,
        seed: Optional[int] = None,
        owner_spec: Optional[HardwareSpec] = None,
    ) -> "DataOwner":
        """Reconnect to the provider and restore a sealed owner state.

        ``channel_factory`` has the same contract as in :meth:`create`; the
        provider must still hold the frames the sealed state refers to.  A
        wrong master key fails authentication rather than corrupting state.
        """
        import json as _json

        from ..core.snapshot import _decode_trusted_state

        if len(sealed_state) < 4:
            raise ProtocolError("sealed owner state is truncated")
        manifest_length = int.from_bytes(sealed_state[:4], "big")
        manifest = _json.loads(sealed_state[4 : 4 + manifest_length])
        sealed = sealed_state[4 + manifest_length :]
        params = SystemParameters(
            num_user_pages=manifest["num_user_pages"],
            reserve_pages=manifest["reserve_pages"],
            cache_capacity=manifest["cache_capacity"],
            block_size=manifest["block_size"],
            num_locations=manifest["num_locations"],
            page_capacity=manifest["page_capacity"],
            target_c=manifest["target_c"],
        )
        clock = clock if clock is not None else VirtualClock()
        spec = owner_spec if owner_spec is not None else HardwareSpec(
            secure_memory=2**62,
            link_bandwidth=float("inf"),
            crypto_throughput=100e6,
        )
        cop = SecureCoprocessor(
            num_pages=params.total_pages,
            cache_capacity=params.cache_capacity,
            block_size=params.block_size,
            page_capacity=params.page_capacity,
            master_key=master_key,
            spec=spec,
            clock=clock,
            rng=SecureRandom(seed),
            cipher_backend=manifest["cipher_backend"],
        )
        trusted = cop.suite.decrypt_page(sealed)
        channel = channel_factory(clock, cop.frame_size, params.num_locations)
        remote = RemoteDisk(channel, params.num_locations, cop.frame_size)
        cop.cache.fill([Page.dummy() for _ in range(params.cache_capacity)])
        engine = RetrievalEngine(params, cop, remote)
        owner = cls(params, cop, remote, engine)
        _decode_trusted_state(trusted, owner)
        return owner
