"""Simulated network channel between owner and provider.

The paper's Figure-7 prototype ran over WiFi with a 50 ms RTT injected via
``sleep``; here the cost is charged to the shared virtual clock instead
(DESIGN.md §3), so experiments are fast and exactly reproducible:

    time(request) = rtt + (len(request) + len(response)) / bandwidth

Bandwidth is the effective end-to-end application throughput (the paper's
prototype moved ~2.3 MB/s over its WiFi link once protocol and copy costs
are folded in — see the Figure-7 calibration note in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from ..sim.clock import VirtualClock
from ..sim.metrics import CounterSet

__all__ = ["SimulatedChannel"]


class SimulatedChannel:
    """A synchronous request/response channel with RTT + bandwidth costs."""

    def __init__(
        self,
        clock: VirtualClock,
        handler: Callable[[bytes], bytes],
        rtt: float = 0.05,
        bandwidth: float = 2.33e6,
    ):
        if rtt < 0:
            raise ConfigurationError("rtt must be non-negative")
        if bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.clock = clock
        self.rtt = rtt
        self.bandwidth = bandwidth
        self._handler = handler
        self.counters = CounterSet()

    def call(self, request: bytes) -> bytes:
        """Send ``request``, run the remote handler, return its response.

        The handler executes against the same virtual clock (its disk costs
        land in the middle of the round trip, which is exactly when a real
        provider would pay them).
        """
        self.clock.advance(self.rtt / 2 + len(request) / self.bandwidth)
        response = self._handler(request)
        self.clock.advance(self.rtt / 2 + len(response) / self.bandwidth)
        self.counters.increment("round_trips")
        self.counters.increment("bytes_sent", len(request))
        self.counters.increment("bytes_received", len(response))
        return response

    @property
    def total_bytes(self) -> int:
        return self.counters.get("bytes_sent") + self.counters.get("bytes_received")
