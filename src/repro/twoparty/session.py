"""Convenience wiring of a complete two-party deployment.

Creates a :class:`ServiceProvider`, connects a :class:`SimulatedChannel`
with the Figure-7 network parameters (50 ms RTT by default), and builds the
:class:`DataOwner` over it — one call gives a working outsourced private
database whose clock, traces and byte counters are all inspectable.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .channel import SimulatedChannel
from .owner import DataOwner
from .provider import ServiceProvider
from ..hardware.specs import HardwareSpec
from ..sim.clock import VirtualClock
from ..sim.metrics import LatencySeries
from ..storage.timing import DiskTimingModel
from ..storage.trace import AccessTrace

__all__ = ["TwoPartySession"]


class TwoPartySession:
    """An owner + provider pair sharing one virtual clock."""

    def __init__(self, owner: DataOwner, provider: ServiceProvider,
                 channel: SimulatedChannel):
        self.owner = owner
        self.provider = provider
        self.channel = channel

    @classmethod
    def create(
        cls,
        records: Sequence[bytes],
        cache_capacity: int,
        target_c: float = 2.0,
        page_capacity: int = 1024,
        reserve_fraction: float = 0.0,
        block_size: Optional[int] = None,
        rtt: float = 0.05,
        bandwidth: float = 2.33e6,
        provider_disk: DiskTimingModel = DiskTimingModel(),
        seed: Optional[int] = None,
        cipher_backend: str = "blake2",
        owner_spec: Optional[HardwareSpec] = None,
        rollback_protection: bool = False,
    ) -> "TwoPartySession":
        clock = VirtualClock()
        holder: dict = {}

        def channel_factory(shared_clock: VirtualClock, frame_size: int,
                            num_locations: int) -> SimulatedChannel:
            provider = ServiceProvider(
                num_locations=num_locations,
                frame_size=frame_size,
                clock=shared_clock,
                timing=provider_disk,
            )
            channel = SimulatedChannel(
                shared_clock, provider.serve, rtt=rtt, bandwidth=bandwidth
            )
            holder["provider"] = provider
            holder["channel"] = channel
            return channel

        owner = DataOwner.create(
            records,
            cache_capacity,
            channel_factory,
            target_c=target_c,
            page_capacity=page_capacity,
            reserve_fraction=reserve_fraction,
            block_size=block_size,
            clock=clock,
            seed=seed,
            cipher_backend=cipher_backend,
            owner_spec=owner_spec,
            rollback_protection=rollback_protection,
        )
        return cls(owner, holder["provider"], holder["channel"])

    # -- passthrough operations ----------------------------------------------------

    def query(self, page_id: int) -> bytes:
        return self.owner.query(page_id)

    def update(self, page_id: int, payload: bytes) -> None:
        self.owner.update(page_id, payload)

    def insert(self, payload: bytes) -> int:
        return self.owner.insert(payload)

    def delete(self, page_id: int) -> None:
        self.owner.delete(page_id)

    # -- observability ---------------------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        return self.owner.clock

    @property
    def provider_trace(self) -> AccessTrace:
        """What the (adversarial) provider observed on its disk."""
        return self.provider.trace

    def measure_queries(self, page_ids: Sequence[int]) -> LatencySeries:
        """Per-query simulated latency over this session's channel."""
        series = LatencySeries()
        for page_id in page_ids:
            started = self.clock.now
            self.query(page_id)
            series.record(self.clock.now - started)
        return series
