"""The untrusted service provider of the two-party model (§3.1).

Holds the encrypted page array and answers the owner's wire-protocol
messages.  It sees exactly what the three-party server sees: opaque frames,
which locations are touched, and message timings — its :class:`DiskStore`
trace is the adversary's observation channel in this deployment too.
"""

from __future__ import annotations

from . import messages
from ..errors import ProtocolError, ReproError
from ..sim.clock import VirtualClock
from ..storage.disk import DiskStore
from ..storage.timing import DiskTimingModel
from ..storage.trace import AccessTrace

__all__ = ["ServiceProvider"]


class ServiceProvider:
    """Message-driven wrapper over the provider's disk."""

    def __init__(
        self,
        num_locations: int,
        frame_size: int,
        clock: VirtualClock,
        timing: DiskTimingModel = DiskTimingModel(),
        trace_enabled: bool = True,
    ):
        self.frame_size = frame_size
        self.disk = DiskStore(
            num_locations=num_locations,
            frame_size=frame_size,
            timing=timing,
            clock=clock,
            trace=AccessTrace(enabled=trace_enabled),
        )

    @property
    def trace(self) -> AccessTrace:
        return self.disk.trace

    def serve(self, request_bytes: bytes) -> bytes:
        """Handle one request; malformed input yields an ERROR reply."""
        try:
            request = messages.decode(request_bytes, self.frame_size)
            reply = self._dispatch(request)
        except ReproError as exc:
            reply = messages.ErrorReply(f"{type(exc).__name__}: {exc}")
        return messages.encode(reply, self.frame_size)

    def _dispatch(self, request: messages.Message) -> messages.Message:
        if isinstance(request, messages.Upload):
            self.disk.write_range(request.start, list(request.frames))
            return messages.UploadAck()
        if isinstance(request, messages.ReadRequest):
            frames, extra = self.disk.read_request(
                request.block_start, request.count, request.extra_location
            )
            return messages.ReadResponse(tuple(frames), extra)
        if isinstance(request, messages.WriteRequest):
            self.disk.write_request(
                request.block_start,
                list(request.frames),
                request.extra_location,
                request.extra_frame,
            )
            return messages.WriteAck()
        raise ProtocolError(
            f"provider cannot handle message type {type(request).__name__}"
        )
