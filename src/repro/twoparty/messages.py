"""Wire format for the two-party protocol (owner <-> service provider).

The paper's prototype used Boost.Asio over WiFi; we define an explicit,
byte-accurate framing so the simulated channel can charge the network for
exactly the bytes a real deployment would move:

======  ============  ==========================================
opcode  message       body
======  ============  ==========================================
0x01    UPLOAD        u64 start, u32 count, count frames
0x02    UPLOAD_ACK    (empty)
0x03    READ_REQ      u64 block_start, u32 count, u64 extra_loc
0x04    READ_RESP     u32 count, count frames, 1 extra frame
0x05    WRITE_REQ     u64 block_start, u32 count, count frames,
                      u64 extra_loc, 1 extra frame
0x06    WRITE_ACK     (empty)
0x7F    ERROR         u32 len, utf-8 message
======  ============  ==========================================

All frames have the fixed size negotiated at session setup, so counts fully
determine body lengths.  Integers are big-endian.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple, Union

from ..errors import ProtocolError

__all__ = [
    "Upload",
    "UploadAck",
    "ReadRequest",
    "ReadResponse",
    "WriteRequest",
    "WriteAck",
    "ErrorReply",
    "encode",
    "decode",
    "Message",
]

_OP_UPLOAD = 0x01
_OP_UPLOAD_ACK = 0x02
_OP_READ_REQ = 0x03
_OP_READ_RESP = 0x04
_OP_WRITE_REQ = 0x05
_OP_WRITE_ACK = 0x06
_OP_ERROR = 0x7F

_HEADER = struct.Struct(">B")
_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")


@dataclass(frozen=True)
class Upload:
    start: int
    frames: Tuple[bytes, ...]


@dataclass(frozen=True)
class UploadAck:
    pass


@dataclass(frozen=True)
class ReadRequest:
    block_start: int
    count: int
    extra_location: int


@dataclass(frozen=True)
class ReadResponse:
    frames: Tuple[bytes, ...]
    extra_frame: bytes


@dataclass(frozen=True)
class WriteRequest:
    block_start: int
    frames: Tuple[bytes, ...]
    extra_location: int
    extra_frame: bytes


@dataclass(frozen=True)
class WriteAck:
    pass


@dataclass(frozen=True)
class ErrorReply:
    message: str


Message = Union[
    Upload, UploadAck, ReadRequest, ReadResponse, WriteRequest, WriteAck, ErrorReply
]


def _check_frames(frames: Tuple[bytes, ...], frame_size: int) -> None:
    for frame in frames:
        if len(frame) != frame_size:
            raise ProtocolError(
                f"frame of {len(frame)} bytes violates negotiated size {frame_size}"
            )


def encode(message: Message, frame_size: int) -> bytes:
    """Serialise a message; ``frame_size`` is the session's fixed frame size."""
    if isinstance(message, Upload):
        _check_frames(message.frames, frame_size)
        return (
            _HEADER.pack(_OP_UPLOAD)
            + _U64.pack(message.start)
            + _U32.pack(len(message.frames))
            + b"".join(message.frames)
        )
    if isinstance(message, UploadAck):
        return _HEADER.pack(_OP_UPLOAD_ACK)
    if isinstance(message, ReadRequest):
        return (
            _HEADER.pack(_OP_READ_REQ)
            + _U64.pack(message.block_start)
            + _U32.pack(message.count)
            + _U64.pack(message.extra_location)
        )
    if isinstance(message, ReadResponse):
        _check_frames(message.frames, frame_size)
        _check_frames((message.extra_frame,), frame_size)
        return (
            _HEADER.pack(_OP_READ_RESP)
            + _U32.pack(len(message.frames))
            + b"".join(message.frames)
            + message.extra_frame
        )
    if isinstance(message, WriteRequest):
        _check_frames(message.frames, frame_size)
        _check_frames((message.extra_frame,), frame_size)
        return (
            _HEADER.pack(_OP_WRITE_REQ)
            + _U64.pack(message.block_start)
            + _U32.pack(len(message.frames))
            + b"".join(message.frames)
            + _U64.pack(message.extra_location)
            + message.extra_frame
        )
    if isinstance(message, WriteAck):
        return _HEADER.pack(_OP_WRITE_ACK)
    if isinstance(message, ErrorReply):
        body = message.message.encode("utf-8")
        return _HEADER.pack(_OP_ERROR) + _U32.pack(len(body)) + body
    raise ProtocolError(f"cannot encode message of type {type(message).__name__}")


def _take_frames(buffer: bytes, offset: int, count: int, frame_size: int
                 ) -> Tuple[Tuple[bytes, ...], int]:
    end = offset + count * frame_size
    if end > len(buffer):
        raise ProtocolError("message truncated while reading frames")
    frames = tuple(
        buffer[offset + i * frame_size : offset + (i + 1) * frame_size]
        for i in range(count)
    )
    return frames, end


def decode(buffer: bytes, frame_size: int) -> Message:
    """Parse one message; raises :class:`ProtocolError` on malformed input."""
    try:
        return _decode(buffer, frame_size)
    except struct.error as exc:
        # Truncated fixed-width fields surface here; normalise to the
        # protocol error the caller is contracted to handle.
        raise ProtocolError(f"truncated message: {exc}") from exc


def _decode(buffer: bytes, frame_size: int) -> Message:
    if not buffer:
        raise ProtocolError("empty message")
    opcode = buffer[0]
    body = buffer
    if opcode == _OP_UPLOAD:
        start = _U64.unpack_from(body, 1)[0]
        count = _U32.unpack_from(body, 9)[0]
        frames, end = _take_frames(body, 13, count, frame_size)
        _expect_end(body, end)
        return Upload(start, frames)
    if opcode == _OP_UPLOAD_ACK:
        _expect_end(body, 1)
        return UploadAck()
    if opcode == _OP_READ_REQ:
        if len(body) != 1 + 8 + 4 + 8:
            raise ProtocolError("bad READ_REQ length")
        block_start = _U64.unpack_from(body, 1)[0]
        count = _U32.unpack_from(body, 9)[0]
        extra = _U64.unpack_from(body, 13)[0]
        return ReadRequest(block_start, count, extra)
    if opcode == _OP_READ_RESP:
        count = _U32.unpack_from(body, 1)[0]
        frames, end = _take_frames(body, 5, count, frame_size)
        extra, end = _take_frames(body, end, 1, frame_size)
        _expect_end(body, end)
        return ReadResponse(frames, extra[0])
    if opcode == _OP_WRITE_REQ:
        block_start = _U64.unpack_from(body, 1)[0]
        count = _U32.unpack_from(body, 9)[0]
        frames, end = _take_frames(body, 13, count, frame_size)
        extra_location = _U64.unpack_from(body, end)[0]
        extra, end = _take_frames(body, end + 8, 1, frame_size)
        _expect_end(body, end)
        return WriteRequest(block_start, frames, extra_location, extra[0])
    if opcode == _OP_WRITE_ACK:
        _expect_end(body, 1)
        return WriteAck()
    if opcode == _OP_ERROR:
        length = _U32.unpack_from(body, 1)[0]
        if len(body) != 5 + length:
            raise ProtocolError("bad ERROR length")
        return ErrorReply(body[5 : 5 + length].decode("utf-8", errors="replace"))
    raise ProtocolError(f"unknown opcode 0x{opcode:02x}")


def _expect_end(buffer: bytes, end: int) -> None:
    if len(buffer) != end:
        raise ProtocolError(
            f"trailing garbage: message is {len(buffer)} bytes, parsed {end}"
        )
