"""Two-party outsourcing deployment (§3.1, §5 / Figure 7)."""

from .channel import SimulatedChannel
from .owner import DataOwner, RemoteDisk
from .provider import ServiceProvider
from .session import TwoPartySession

__all__ = [
    "SimulatedChannel",
    "DataOwner",
    "RemoteDisk",
    "ServiceProvider",
    "TwoPartySession",
]
