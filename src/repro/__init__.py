"""repro — c-approximate secure-hardware PIR.

A full reimplementation of Bakiras & Nikolopoulos, *Adjusting the Trade-Off
between Privacy Guarantees and Computational Cost in Secure Hardware PIR*
(SDM @ VLDB 2011): constant-time private page retrieval whose privacy level
``c`` is tunable against computational cost via the block size ``k`` (Eq. 6).

Quickstart::

    from repro import PirDatabase

    db = PirDatabase.create(records, cache_capacity=64, target_c=2.0)
    payload = db.query(42)          # private retrieval
    db.update(42, b"new bytes")     # trace-identical to a query
    new_id = db.insert(b"fresh")    # consumes a reserved free slot
    db.delete(7)

Sub-packages: :mod:`repro.core` (the scheme), :mod:`repro.analysis`
(privacy + cost models reproducing the paper's figures),
:mod:`repro.baselines` (trivial PIR, Wang et al., square-root ORAM),
:mod:`repro.twoparty` (the outsourcing deployment of §5/Figure 7),
:mod:`repro.index` (private B+-tree / spatial queries), plus the substrates
:mod:`repro.crypto`, :mod:`repro.storage`, :mod:`repro.hardware`,
:mod:`repro.shuffle`, :mod:`repro.workload`, :mod:`repro.sim`.
"""

from .core.database import PirDatabase
from .core.engine import RetrievalEngine
from .core.params import SystemParameters, achieved_privacy, required_block_size
from .errors import (
    AuthenticationError,
    CapacityError,
    ConfigurationError,
    CryptoError,
    DegradedServiceError,
    PageDeletedError,
    PageNotFoundError,
    ProtocolError,
    RecoveryError,
    ReproError,
    StorageError,
    TransientChannelError,
    TransientStorageError,
)
from .hardware.specs import IBM_4764, HardwareSpec

__version__ = "1.0.0"

__all__ = [
    "PirDatabase",
    "RetrievalEngine",
    "SystemParameters",
    "achieved_privacy",
    "required_block_size",
    "AuthenticationError",
    "CapacityError",
    "ConfigurationError",
    "CryptoError",
    "DegradedServiceError",
    "PageDeletedError",
    "PageNotFoundError",
    "ProtocolError",
    "RecoveryError",
    "ReproError",
    "StorageError",
    "TransientChannelError",
    "TransientStorageError",
    "IBM_4764",
    "HardwareSpec",
    "__version__",
]
