"""Workload generators: request streams and mixed operation streams."""

from .traces import load_trace, queries_as_operations, replay_trace, save_trace
from .generators import (
    WORKLOAD_PRESETS,
    Operation,
    ZipfSampler,
    preset_stream,
    hotspot_stream,
    markov_stream,
    operation_stream,
    sequential_stream,
    uniform_stream,
    zipf_stream,
)

__all__ = [
    "load_trace",
    "queries_as_operations",
    "replay_trace",
    "save_trace",
    "WORKLOAD_PRESETS",
    "Operation",
    "ZipfSampler",
    "preset_stream",
    "hotspot_stream",
    "markov_stream",
    "operation_stream",
    "sequential_stream",
    "uniform_stream",
    "zipf_stream",
]
