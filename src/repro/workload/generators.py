"""Request-stream generators for experiments.

The paper's evaluation is workload-agnostic (the scheme's cost is constant
per request), but the *privacy* argument matters most under skew: with
plain encryption, popularity leaks ("if the server has knowledge of the
access patterns of the database records ... it can extract some information",
§1).  These generators produce the uniform, skewed (Zipf), scanning, and
locality-heavy streams the benchmarks and adversary experiments use, plus
mixed read/write operation streams for the §4.3 update experiments.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..crypto.rng import SecureRandom
from ..errors import ConfigurationError

__all__ = [
    "uniform_stream",
    "ZipfSampler",
    "zipf_stream",
    "sequential_stream",
    "hotspot_stream",
    "markov_stream",
    "Operation",
    "operation_stream",
    "preset_stream",
    "WORKLOAD_PRESETS",
]


def _check(num_pages: int, count: int) -> None:
    if num_pages <= 0:
        raise ConfigurationError("num_pages must be positive")
    if count < 0:
        raise ConfigurationError("count must be non-negative")


def uniform_stream(num_pages: int, count: int, rng: SecureRandom) -> List[int]:
    """Independent uniform page ids."""
    _check(num_pages, count)
    return [rng.randrange(num_pages) for _ in range(count)]


class ZipfSampler:
    """Zipf(theta) over [0, num_pages) via inverse-CDF lookup.

    ``theta = 0`` degenerates to uniform; web-like skew is ~0.8-1.2.
    Rank 0 is the most popular id; callers wanting a scattered hot set can
    compose with a permutation.
    """

    def __init__(self, num_pages: int, theta: float):
        if num_pages <= 0:
            raise ConfigurationError("num_pages must be positive")
        if theta < 0:
            raise ConfigurationError("theta must be non-negative")
        self.num_pages = num_pages
        self.theta = theta
        cumulative: List[float] = []
        total = 0.0
        for rank in range(1, num_pages + 1):
            total += rank**-theta
            cumulative.append(total)
        self._cumulative = [value / total for value in cumulative]

    def sample(self, rng: SecureRandom) -> int:
        return bisect.bisect_left(self._cumulative, rng.random())

    def probability(self, page_id: int) -> float:
        if not 0 <= page_id < self.num_pages:
            raise ConfigurationError("page id out of range")
        previous = self._cumulative[page_id - 1] if page_id > 0 else 0.0
        return self._cumulative[page_id] - previous


def zipf_stream(
    num_pages: int, count: int, rng: SecureRandom, theta: float = 0.9
) -> List[int]:
    """Zipf-skewed ids (rank 0 hottest)."""
    _check(num_pages, count)
    sampler = ZipfSampler(num_pages, theta)
    return [sampler.sample(rng) for _ in range(count)]


def sequential_stream(num_pages: int, count: int, start: int = 0) -> List[int]:
    """A scan: start, start+1, ... wrapping around — the index-traversal shape."""
    _check(num_pages, count)
    return [(start + i) % num_pages for i in range(count)]


def hotspot_stream(
    num_pages: int,
    count: int,
    rng: SecureRandom,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.9,
) -> List[int]:
    """The classic h/p workload: ``hot_probability`` of requests hit the
    first ``hot_fraction`` of the id space."""
    _check(num_pages, count)
    if not 0 < hot_fraction <= 1 or not 0 <= hot_probability <= 1:
        raise ConfigurationError("hotspot parameters out of range")
    hot_pages = max(1, math.floor(num_pages * hot_fraction))
    stream: List[int] = []
    for _ in range(count):
        if rng.random() < hot_probability:
            stream.append(rng.randrange(hot_pages))
        else:
            stream.append(hot_pages + rng.randrange(max(1, num_pages - hot_pages)))
    return stream


def markov_stream(
    num_pages: int,
    count: int,
    rng: SecureRandom,
    locality: float = 0.7,
    window: int = 4,
) -> List[int]:
    """Temporally local stream: with prob ``locality`` the next request stays
    within ``window`` pages of the previous one (spatial-index behaviour)."""
    _check(num_pages, count)
    if not 0 <= locality <= 1 or window < 1:
        raise ConfigurationError("markov parameters out of range")
    stream: List[int] = []
    current = rng.randrange(num_pages)
    for _ in range(count):
        if stream and rng.random() < locality:
            step = rng.randint(-window, window)
            current = (current + step) % num_pages
        else:
            current = rng.randrange(num_pages)
        stream.append(current)
    return stream


# ---------------------------------------------------------------------------
# Mixed operation streams for the §4.3 update experiments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Operation:
    """One database operation in a mixed workload."""

    kind: str  # "query" | "update" | "insert" | "delete"
    page_id: Optional[int] = None
    payload: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.kind not in ("query", "update", "insert", "delete"):
            raise ConfigurationError(f"unknown operation kind {self.kind!r}")


#: YCSB-style preset mixes: (query, update, insert, delete) probabilities.
WORKLOAD_PRESETS = {
    "A": (0.5, 0.5, 0.0, 0.0),    # update-heavy
    "B": (0.95, 0.05, 0.0, 0.0),  # read-mostly
    "C": (1.0, 0.0, 0.0, 0.0),    # read-only
    "D": (0.9, 0.0, 0.1, 0.0),    # read-latest-ish (reads + inserts)
    "E": (0.7, 0.1, 0.1, 0.1),    # churny mixed
}


def preset_stream(
    name: str, num_pages: int, count: int, rng: SecureRandom,
    payload_size: int = 8,
) -> List["Operation"]:
    """An operation stream following a named YCSB-style preset mix."""
    if name not in WORKLOAD_PRESETS:
        raise ConfigurationError(
            f"unknown preset {name!r}; choose from {sorted(WORKLOAD_PRESETS)}"
        )
    return operation_stream(num_pages, count, rng,
                            mix=WORKLOAD_PRESETS[name],
                            payload_size=payload_size)


def operation_stream(
    num_pages: int,
    count: int,
    rng: SecureRandom,
    mix: Sequence[float] = (0.7, 0.2, 0.05, 0.05),
    payload_size: int = 8,
) -> List[Operation]:
    """A randomized stream of (query, update, insert, delete) operations.

    ``mix`` gives the probabilities for the four kinds in that order.
    Deletions target live ids (the caller's database may still reject a
    double delete — the generator tracks its own view to avoid most of them).
    """
    _check(num_pages, count)
    if len(mix) != 4 or abs(sum(mix) - 1.0) > 1e-9 or any(p < 0 for p in mix):
        raise ConfigurationError("mix must be four non-negative probs summing to 1")
    cumulative = [mix[0], mix[0] + mix[1], mix[0] + mix[1] + mix[2], 1.0]
    live = set(range(num_pages))
    operations: List[Operation] = []
    serial = 0
    for _ in range(count):
        roll = rng.random()
        kind = "query"
        for index, bound in enumerate(cumulative):
            if roll <= bound:
                kind = ("query", "update", "insert", "delete")[index]
                break
        if kind in ("query", "update", "delete") and not live:
            kind = "insert"
        if kind == "query":
            operations.append(Operation("query", rng.choice(sorted(live))))
        elif kind == "update":
            payload = serial.to_bytes(payload_size, "big")
            operations.append(Operation("update", rng.choice(sorted(live)), payload))
        elif kind == "insert":
            payload = serial.to_bytes(payload_size, "big")
            operations.append(Operation("insert", None, payload))
        else:
            victim = rng.choice(sorted(live))
            live.discard(victim)
            operations.append(Operation("delete", victim))
        serial += 1
    return operations
