"""Workload trace files: persist, load, and replay request streams.

Experiments gain reproducibility when the exact request sequence is an
artifact: generators write JSONL traces, benches replay them, and different
schemes can be compared on byte-identical workloads.  Format (one JSON
object per line)::

    {"op": "query",  "page": 17}
    {"op": "update", "page": 3, "payload": "<hex>"}
    {"op": "insert", "payload": "<hex>"}
    {"op": "delete", "page": 9}
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence

from .generators import Operation
from ..core.database import PirDatabase
from ..errors import (
    CapacityError,
    ConfigurationError,
    PageDeletedError,
    PageNotFoundError,
)
from ..sim.metrics import CounterSet

__all__ = ["save_trace", "load_trace", "replay_trace", "queries_as_operations"]


def queries_as_operations(page_ids: Sequence[int]) -> List[Operation]:
    """Wrap a plain request stream as query operations."""
    return [Operation("query", page_id) for page_id in page_ids]


def save_trace(path: str, operations: Iterable[Operation]) -> int:
    """Write operations as JSONL; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for op in operations:
            record = {"op": op.kind}
            if op.page_id is not None:
                record["page"] = op.page_id
            if op.payload is not None:
                record["payload"] = op.payload.hex()
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def load_trace(path: str) -> List[Operation]:
    """Parse a JSONL trace; malformed lines raise :class:`ConfigurationError`."""
    operations: List[Operation] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict) or "op" not in record:
                raise ConfigurationError(
                    f"{path}:{line_number}: each line needs an 'op' field"
                )
            payload = record.get("payload")
            try:
                operations.append(
                    Operation(
                        record["op"],
                        record.get("page"),
                        bytes.fromhex(payload) if payload is not None else None,
                    )
                )
            except (ConfigurationError, ValueError) as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: {exc}"
                ) from exc
    return operations


def replay_trace(db: PirDatabase, operations: Sequence[Operation]) -> CounterSet:
    """Apply a trace to a database; returns per-outcome counters.

    Individual operation failures that a live workload would also hit
    (querying a deleted page, exhausting the insert reserve, double
    deletes) are counted rather than raised, so traces recorded against one
    database state replay cleanly against another.
    """
    counters = CounterSet()
    for op in operations:
        try:
            if op.kind == "query":
                db.query(op.page_id)
            elif op.kind == "update":
                db.update(op.page_id, op.payload or b"")
            elif op.kind == "insert":
                db.insert(op.payload or b"")
            elif op.kind == "delete":
                db.delete(op.page_id)
            counters.increment(op.kind)
        except (PageDeletedError, PageNotFoundError, CapacityError):
            counters.increment(f"{op.kind}_failed")
    return counters
