"""The paper's primary contribution: the c-approximate PIR scheme."""

from .database import PirDatabase
from .engine import RequestOutcome, RetrievalEngine
from .sharded import ShardedPirDatabase
from .snapshot import load_snapshot, save_snapshot
from .params import (
    SystemParameters,
    achieved_privacy,
    eviction_probability,
    landing_probability,
    required_block_size,
    scan_period_for_privacy,
)

__all__ = [
    "PirDatabase",
    "RequestOutcome",
    "RetrievalEngine",
    "ShardedPirDatabase",
    "load_snapshot",
    "save_snapshot",
    "SystemParameters",
    "achieved_privacy",
    "eviction_probability",
    "landing_probability",
    "required_block_size",
    "scan_period_for_privacy",
]
