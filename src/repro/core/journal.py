"""Write-ahead intent journal for crash-consistent write-back.

Figure 3's write-back rewrites k+1 disk frames *and* relocates three pages
in the trusted ``pageMap``/``pageCache``.  A crash between any two of those
steps leaves the untrusted disk inconsistent with the coprocessor's trusted
state, silently destroying correctness (the map points at frames that were
never written) and the privacy invariant (a repaired request would produce
a trace no other request produces).

The fix is the classical one: before mutating anything, the engine seals a
single *intent record* — the complete post-state of the request (all k+1
freshly encrypted frames with their locations, the pageMap delta, the cache
delta, the advanced round-robin pointer) — into a journal slot.  The record
is encrypted and MACd under the coprocessor's keys, so the host learns
nothing from it (it already sees the same k+1 ciphertexts on the bus) and
cannot forge or tear it undetectably.  Recovery is then a pure function of
(journal, trusted state):

* no record / unauthentic record → the write-back never began; the request
  rolls back to "never happened" (the round-robin pointer did not advance,
  so the client may simply resend);
* valid record for the in-flight request → roll forward: re-apply every
  delta and rewrite every frame (all idempotent), then clear the journal;
* valid record for an already-committed request → stale; clear it.

The journal slot conceptually lives in the coprocessor's battery-backed
NVRAM or on host storage next to the page array; either way it is one
bounded, constant-size write per request whose size depends only on public
parameters (k, B) — it leaks nothing the disk trace does not already leak.

:class:`MemoryJournal` models NVRAM for simulations; :class:`FileJournal`
stores the record in a host file with atomic replace semantics for
deployments and crash tests against real I/O.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, StorageError
from ..sim.clock import VirtualClock
from ..storage.page import Page
from ..storage.timing import DiskTimingModel

__all__ = [
    "RecordCursor",
    "WriteIntent",
    "MemoryJournal",
    "FileJournal",
    "MAP_CACHED",
    "MAP_DISK",
    "FLAG_LIVE",
    "FLAG_DELETED",
]

_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")

_MAGIC = b"RJN1"
# Fused-window records (several extra frames committed with one block
# write-back) use a second magic so single-extra records stay byte-identical
# to the RJN1 layout — the journal blob's size is charged to the virtual
# clock, so growing the single-extra encoding would shift every committed
# perf baseline.
_MAGIC_V2 = b"RJN2"

MAP_CACHED = 0
MAP_DISK = 1
FLAG_LIVE = 1
FLAG_DELETED = 2


class RecordCursor:
    """Bounds-checked sequential reader over one sealed record blob.

    The RJN1/RJN2 intent codec here and the RPL1 replication-record codec
    (:mod:`repro.cluster.replication`) share this reader, so every
    fixed-width field, flag byte, and length-prefixed payload decodes with
    identical truncation behaviour: any read past the end of the blob
    raises :class:`~repro.errors.StorageError` instead of a bare
    ``struct.error``/``IndexError``.
    """

    def __init__(self, blob: bytes, offset: int = 0):
        self.blob = blob
        self.offset = offset

    def take(self, fmt: struct.Struct) -> int:
        try:
            value = fmt.unpack_from(self.blob, self.offset)[0]
        except struct.error as exc:
            raise StorageError(f"record is truncated: {exc}") from exc
        self.offset += fmt.size
        return value

    def take_byte(self) -> int:
        if self.offset >= len(self.blob):
            raise StorageError("record is truncated")
        value = self.blob[self.offset]
        self.offset += 1
        return value

    def take_bytes(self, length: int) -> bytes:
        if length < 0 or self.offset + length > len(self.blob):
            raise StorageError("record is truncated")
        value = self.blob[self.offset:self.offset + length]
        self.offset += length
        return value

    def expect_end(self, what: str) -> None:
        if self.offset != len(self.blob):
            raise StorageError(f"trailing bytes in {what}")


@dataclass
class WriteIntent:
    """Complete redo record for one request's commit phase.

    Everything needed to replay the request idempotently: absolute values
    only (post-state pointers, full frame contents), never increments.
    """

    request_index: int
    next_block: int
    rotation_left: int  # -1 when no key rotation is in progress
    block_start: int
    extra_location: int
    cache_puts: List[Tuple[int, Page]] = field(default_factory=list)
    flag_ops: List[Tuple[int, int]] = field(default_factory=list)
    map_ops: List[Tuple[int, int, int]] = field(default_factory=list)
    frames: List[bytes] = field(default_factory=list)
    # A fused batch window commits one extra frame per executed operation;
    # ``None`` means the classic single-extra request (``extra_location``).
    extra_locations: Optional[List[int]] = None

    def __post_init__(self) -> None:
        # Normalise: a one-entry list IS the classic single-extra record,
        # so both spellings encode (and compare) identically.
        if self.extra_locations is not None:
            if not self.extra_locations:
                raise ConfigurationError("intent needs at least one extra")
            self.extra_location = self.extra_locations[0]
            if len(self.extra_locations) == 1:
                self.extra_locations = None

    def extras(self) -> List[int]:
        """Extra-frame locations, always as a list (len 1 for serial ops)."""
        if self.extra_locations is None:
            return [self.extra_location]
        return list(self.extra_locations)

    @property
    def request_span(self) -> int:
        """How many logical requests this record commits (1 per extra)."""
        return 1 if self.extra_locations is None else len(self.extra_locations)

    # -- codec ---------------------------------------------------------------

    def encode(self) -> bytes:
        if self.extra_locations is None:
            extra_parts = [_U64.pack(self.extra_location)]
            magic = _MAGIC
        else:
            extra_parts = [_U32.pack(len(self.extra_locations))]
            extra_parts += [_U64.pack(loc) for loc in self.extra_locations]
            magic = _MAGIC_V2
        parts: List[bytes] = [
            magic,
            _U64.pack(self.request_index),
            _U64.pack(self.next_block),
            _I64.pack(self.rotation_left),
            _U64.pack(self.block_start),
        ] + extra_parts
        parts.append(_U32.pack(len(self.cache_puts)))
        for slot, page in self.cache_puts:
            parts.append(_U64.pack(slot))
            parts.append(_U64.pack(page.page_id))
            parts.append(bytes([2 if page.deleted else 0]))
            parts.append(_U32.pack(len(page.payload)))
            parts.append(page.payload)
        parts.append(_U32.pack(len(self.flag_ops)))
        for page_id, op in self.flag_ops:
            parts.append(_U64.pack(page_id))
            parts.append(bytes([op]))
        parts.append(_U32.pack(len(self.map_ops)))
        for page_id, kind, position in self.map_ops:
            parts.append(_U64.pack(page_id))
            parts.append(bytes([kind]))
            parts.append(_U64.pack(position))
        parts.append(_U32.pack(len(self.frames)))
        for frame in self.frames:
            parts.append(_U32.pack(len(frame)))
            parts.append(frame)
        return b"".join(parts)

    @classmethod
    def decode(cls, blob: bytes) -> "WriteIntent":
        magic = bytes(blob[:4])
        if magic not in (_MAGIC, _MAGIC_V2):
            raise StorageError("intent record has a bad magic number")
        cursor = RecordCursor(blob, offset=4)

        request_index = cursor.take(_U64)
        next_block = cursor.take(_U64)
        rotation_left = cursor.take(_I64)
        block_start = cursor.take(_U64)
        if magic == _MAGIC:
            extra_location = cursor.take(_U64)
            extra_locations = None
        else:
            extra_locations = [
                cursor.take(_U64) for _ in range(cursor.take(_U32))
            ]
            if not extra_locations:
                raise StorageError("intent record carries no extras")
            extra_location = extra_locations[0]
        intent = cls(
            request_index=request_index,
            next_block=next_block,
            rotation_left=rotation_left,
            block_start=block_start,
            extra_location=extra_location,
            extra_locations=extra_locations,
        )
        for _ in range(cursor.take(_U32)):
            slot = cursor.take(_U64)
            page_id = cursor.take(_U64)
            flags = cursor.take_byte()
            payload = cursor.take_bytes(cursor.take(_U32))
            intent.cache_puts.append(
                (slot, Page(page_id, payload, deleted=bool(flags & 2)))
            )
        for _ in range(cursor.take(_U32)):
            page_id = cursor.take(_U64)
            intent.flag_ops.append((page_id, cursor.take_byte()))
        for _ in range(cursor.take(_U32)):
            page_id = cursor.take(_U64)
            kind = cursor.take_byte()
            intent.map_ops.append((page_id, kind, cursor.take(_U64)))
        for _ in range(cursor.take(_U32)):
            intent.frames.append(cursor.take_bytes(cursor.take(_U32)))
        cursor.expect_end("intent record")
        return intent


class MemoryJournal:
    """Single-slot intent journal modelling coprocessor NVRAM.

    An optional clock/timing pair charges each journal write like one
    contiguous disk write of the record's size, so cost experiments see the
    real overhead of journaling instead of free durability.
    """

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        timing: Optional[DiskTimingModel] = None,
    ):
        self._blob: Optional[bytes] = None
        self.clock = clock
        self.timing = timing
        self.writes = 0

    def _charge(self, num_bytes: int) -> None:
        if self.clock is not None and self.timing is not None:
            self.clock.advance(self.timing.write_time(num_bytes))

    def write(self, blob: bytes) -> None:
        self._charge(len(blob))
        self._blob = bytes(blob)
        self.writes += 1

    def read(self) -> Optional[bytes]:
        return self._blob

    def clear(self) -> None:
        # Clearing is a small constant-size marker write, not a re-write of
        # the record; charge one seek.
        self._charge(0)
        self._blob = None


class FileJournal:
    """Intent journal in a host file, replaced atomically on every write.

    The write path is the standard crash-safe sequence: write a temp file,
    flush, fsync (per the durability policy), rename over the slot.  A
    record observed by :meth:`read` is therefore either absent, complete,
    or — if the platform tore the rename, which POSIX forbids but tests
    simulate — detectably unauthentic to the sealed-record MAC.
    """

    def __init__(
        self,
        path: str,
        clock: Optional[VirtualClock] = None,
        timing: Optional[DiskTimingModel] = None,
        fsync: bool = True,
    ):
        if not path:
            raise ConfigurationError("journal path must be non-empty")
        self.path = path
        self.clock = clock
        self.timing = timing
        self.fsync = fsync
        self.writes = 0

    def _charge(self, num_bytes: int) -> None:
        if self.clock is not None and self.timing is not None:
            self.clock.advance(self.timing.write_time(num_bytes))

    def _sync_directory(self) -> None:
        """Make the rename/unlink itself durable.

        fsyncing the temp file only persists its *contents*; the directory
        entry created by ``os.replace`` (or removed by ``os.remove``) lives
        in the parent directory's data and survives power loss only after
        the directory is fsynced too.  Without this a "sealed" intent can
        vanish on power loss while a torn write-back partially landed —
        the exact silent inconsistency the journal exists to prevent.
        """
        parent = os.path.dirname(os.path.abspath(self.path))
        flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
        try:
            fd = os.open(parent, flags)
        except OSError:
            return  # platform cannot open directories (e.g. Windows)
        try:
            os.fsync(fd)
        except OSError:
            # Some filesystems reject directory fsync; nothing more we
            # can do — matches the behaviour of other WAL implementations.
            pass
        finally:
            os.close(fd)

    def write(self, blob: bytes) -> None:
        self._charge(len(blob))
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(blob)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        if self.fsync:
            self._sync_directory()
        self.writes += 1

    def read(self) -> Optional[bytes]:
        if not os.path.exists(self.path):
            return None
        with open(self.path, "rb") as handle:
            return handle.read()

    def clear(self) -> None:
        self._charge(0)
        try:
            os.remove(self.path)
        except FileNotFoundError:
            return
        if self.fsync:
            self._sync_directory()
