"""Sharded deployment across multiple secure coprocessors.

§5 observes that larger databases need more secure memory than one IBM 4764
provides and suggests deploying several units.  Two architectures follow:

* **pooled** — one logical engine whose cache/pageMap span all units'
  memory; that is what the analytical model's ``units_required`` prices,
  and it needs no new code (the parameters just use the bigger m).
* **partitioned** (this module) — each unit runs an *independent*
  c-approximate PIR instance over a contiguous slice of the database.
  Partitioning multiplies throughput (shards operate in parallel) and
  shrinks each instance's n, but the request's *shard id* becomes visible
  to the server, leaking coarse popularity at shard granularity.

:class:`ShardedPirDatabase` therefore issues **cover traffic** by default:
every operation drives one real request on the owning shard and a dummy
request (``touch``) on every other shard, restoring indistinguishability at
the cost of the parallel-hardware latency max instead of a single shard's.
Setting ``cover_traffic=False`` exposes the trade-off for the ablation
benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .database import PirDatabase
from ..errors import ConfigurationError, PageNotFoundError
from ..hardware.coprocessor import SecureStorageReport
from ..hardware.specs import HardwareSpec

__all__ = ["ShardedPirDatabase"]


class ShardedPirDatabase:
    """A database partitioned over independent coprocessor instances."""

    def __init__(self, shards: List[PirDatabase], records_per_shard: int,
                 num_records: int, cover_traffic: bool):
        self.shards = shards
        self._per_shard = records_per_shard
        self.num_records = num_records
        self.cover_traffic = cover_traffic
        # Inserted pages get fresh global ids above the record space; the
        # routing table lives with the rest of the trusted metadata.
        self._inserted: Dict[int, Tuple[int, int]] = {}
        self._next_inserted_id = num_records

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        records: Sequence[bytes],
        num_shards: int,
        cache_capacity_per_shard: int,
        target_c: float = 2.0,
        page_capacity: int = 1024,
        reserve_fraction: float = 0.0,
        cover_traffic: bool = True,
        spec: Optional[HardwareSpec] = None,
        seed: Optional[int] = None,
        **database_options,
    ) -> "ShardedPirDatabase":
        """Partition ``records`` into contiguous shards, one engine each."""
        if num_shards <= 0:
            raise ConfigurationError("need at least one shard")
        if len(records) < num_shards:
            raise ConfigurationError("fewer records than shards")
        per_shard = (len(records) + num_shards - 1) // num_shards
        shards: List[PirDatabase] = []
        for index in range(num_shards):
            slice_ = records[index * per_shard : (index + 1) * per_shard]
            if not slice_:
                raise ConfigurationError(
                    "empty shard; lower num_shards for this record count"
                )
            shards.append(
                PirDatabase.create(
                    slice_,
                    cache_capacity=cache_capacity_per_shard,
                    target_c=target_c,
                    page_capacity=page_capacity,
                    reserve_fraction=reserve_fraction,
                    spec=spec,
                    seed=None if seed is None else seed * 1000 + index,
                    **database_options,
                )
            )
        return cls(shards, per_shard, len(records), cover_traffic)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def _route(self, global_id: int) -> Tuple[int, int]:
        """Global id -> (shard index, local page id)."""
        if 0 <= global_id < self.num_records:
            return global_id // self._per_shard, global_id % self._per_shard
        if global_id in self._inserted:
            return self._inserted[global_id]
        raise PageNotFoundError(f"unknown global page id {global_id}")

    def _with_cover(self, shard_index: int, operation):
        result = operation(self.shards[shard_index])
        if self.cover_traffic:
            for other, shard in enumerate(self.shards):
                if other != shard_index:
                    shard.touch()
        return result

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def query(self, global_id: int) -> bytes:
        shard_index, local = self._route(global_id)
        return self._with_cover(shard_index, lambda db: db.query(local))

    def update(self, global_id: int, payload: bytes) -> None:
        shard_index, local = self._route(global_id)
        self._with_cover(shard_index, lambda db: db.update(local, payload))

    def delete(self, global_id: int) -> None:
        shard_index, local = self._route(global_id)
        self._with_cover(shard_index, lambda db: db.delete(local))

    def insert(self, payload: bytes) -> int:
        """Insert into the emptiest shard; returns a fresh global id."""
        best = max(
            range(self.num_shards),
            key=lambda index: self.shards[index].cop.page_map.free_count,
        )
        local = self._with_cover(best, lambda db: db.insert(payload))
        global_id = self._next_inserted_id
        self._next_inserted_id += 1
        self._inserted[global_id] = (best, local)
        return global_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def achieved_c(self) -> float:
        """Worst (largest) per-shard privacy level."""
        return max(shard.achieved_c for shard in self.shards)

    def elapsed(self) -> float:
        """Simulated time so far, assuming shards run on parallel hardware."""
        return max(shard.clock.now for shard in self.shards)

    def total_requests(self) -> int:
        return sum(shard.engine.request_count for shard in self.shards)

    def storage_report(self) -> SecureStorageReport:
        """Aggregate secure-memory footprint across all units."""
        reports = [shard.storage_report() for shard in self.shards]
        return SecureStorageReport(
            page_map=sum(r.page_map for r in reports),
            page_cache=sum(r.page_cache for r in reports),
            server_block=sum(r.server_block for r in reports),
        )

    def shard_request_counts(self) -> List[int]:
        """Per-shard request totals — equal under cover traffic."""
        return [shard.engine.request_count for shard in self.shards]

    def consistency_check(self) -> None:
        for shard in self.shards:
            shard.consistency_check()
