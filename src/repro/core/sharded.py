"""Sharded deployment across multiple secure coprocessors.

§5 observes that larger databases need more secure memory than one IBM 4764
provides and suggests deploying several units.  Two architectures follow:

* **pooled** — one logical engine whose cache/pageMap span all units'
  memory; that is what the analytical model's ``units_required`` prices,
  and it needs no new code (the parameters just use the bigger m).
* **partitioned** (this module) — each unit runs an *independent*
  c-approximate PIR instance over a contiguous slice of the database.
  Partitioning multiplies throughput (shards operate in parallel) and
  shrinks each instance's n, but the request's *shard id* becomes visible
  to the server, leaking coarse popularity at shard granularity.

:class:`ShardedPirDatabase` therefore issues **cover traffic** by default:
every operation drives one real request on the owning shard and a dummy
request (``touch``) on every other shard, restoring indistinguishability at
the cost of the parallel-hardware latency max instead of a single shard's.
Setting ``cover_traffic=False`` exposes the trade-off for the ablation
benchmark.

Two properties of the cover traffic matter for privacy and performance:

* **Order independence.**  The per-shard operations of one logical request
  are always issued in canonical shard-index order, never "real shard
  first" — an observer of the cross-shard access *sequence* must learn
  nothing about which shard served the real operation (the old
  target-first ordering leaked it exactly).
* **Parallel dispatch.**  With ``parallel=True`` (the default) the real
  operation and all covers run concurrently on a :class:`ShardExecutor` —
  a thread pool with one worker and one lock per shard, so a shard's
  engine is never entered by two threads at once.  That makes
  :meth:`ShardedPirDatabase.elapsed`'s max-over-shards model honest in
  wall-clock terms too.  Each shard owns its clock, RNG and engine, so the
  per-shard request streams (and therefore all frames, traces and virtual
  clocks) are byte-identical between parallel and serial execution.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor, wait
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .database import PirDatabase
from .engine import BatchOp
from ..errors import (
    ConfigurationError,
    PageDeletedError,
    PageNotFoundError,
    ReproError,
)
from ..hardware.coprocessor import SecureStorageReport
from ..hardware.specs import HardwareSpec
from ..sim.metrics import CounterSet

__all__ = ["ShardedPirDatabase", "ShardExecutor"]


def _globalise_error(exc: Exception, local_id, global_id: int) -> Exception:
    """Rewrite a shard-level error so its message names the global id.

    Shards speak local page ids; the substitution keeps batch error slots
    consistent with what the serial per-op methods report.  Errors whose
    message does not mention the local id pass through unchanged.
    """
    if local_id is None:
        return exc
    text = str(exc)
    marker = f"page {local_id}"
    if marker not in text:
        return exc
    return type(exc)(text.replace(marker, f"page {global_id}", 1))


class ShardExecutor:
    """Dispatches per-shard operations, optionally on parallel workers.

    One worker thread and one lock per shard: operations for *different*
    shards run concurrently, while a shard's engine (single-threaded by
    design — its RNG, cipher suite and tracer are stateful) is entered by
    at most one thread at a time.  In serial mode (``parallel=False``)
    operations run inline in submission order; both modes drive each
    shard through the same per-shard operation sequence, so results are
    identical and only wall-clock time differs.
    """

    def __init__(self, num_shards: int, parallel: bool = True,
                 counters: Optional[CounterSet] = None):
        if num_shards <= 0:
            raise ConfigurationError("executor needs at least one shard")
        self.parallel = parallel and num_shards > 1
        self._locks = [threading.Lock() for _ in range(num_shards)]
        self._pool: Optional[ThreadPoolExecutor] = None
        self._counters = counters if counters is not None else CounterSet()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=len(self._locks), thread_name_prefix="shard"
            )
        return self._pool

    def _run_one(self, shard_index: int, operation: Callable[[], object]):
        with self._locks[shard_index]:
            return operation()

    def run(self, operations: Sequence[Tuple[int, Callable[[], object]]]) -> list:
        """Execute ``(shard_index, thunk)`` pairs; returns results in order.

        All operations are driven to completion even when one raises, so a
        failing real operation cannot leave cover traffic half-issued (the
        per-shard state always advances uniformly); the first exception in
        submission order is then re-raised.
        """
        self._counters.increment("dispatches")
        self._counters.increment("operations", len(operations))
        if not self.parallel:
            # Serial fallback still drives every shard before re-raising.
            results: list = []
            first_error: Optional[BaseException] = None
            for shard_index, operation in operations:
                try:
                    results.append(self._run_one(shard_index, operation))
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    results.append(None)
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error
            return results
        pool = self._ensure_pool()
        self._counters.increment("parallel_dispatches")
        futures = [
            pool.submit(self._run_one, shard_index, operation)
            for shard_index, operation in operations
        ]
        wait(futures)
        first_error = None
        results = []
        for future in futures:
            error = future.exception()
            if error is not None:
                results.append(None)
                if first_error is None:
                    first_error = error
            else:
                results.append(future.result())
        if first_error is not None:
            raise first_error
        return results

    def close(self) -> None:
        """Shut down the worker pool (idempotent; serial mode is a no-op)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ShardedPirDatabase:
    """A database partitioned over independent coprocessor instances."""

    def __init__(self, shards: List[PirDatabase], records_per_shard: int,
                 num_records: int, cover_traffic: bool,
                 parallel: bool = True, metrics=None):
        self.shards = shards
        self._per_shard = records_per_shard
        self.num_records = num_records
        self.cover_traffic = cover_traffic
        self.counters = CounterSet(registry=metrics, prefix="shardpool.")
        self.executor = ShardExecutor(
            len(shards), parallel=parallel, counters=self.counters
        )
        # Inserted pages get fresh global ids above the record space; the
        # routing table lives with the rest of the trusted metadata.  The
        # lock guards it (and the tombstone set) against concurrent client
        # threads — the per-shard engines have their own executor locks.
        self._routing_lock = threading.Lock()
        self._inserted: Dict[int, Tuple[int, int]] = {}
        self._next_inserted_id = num_records
        # Deleted *base-range* ids stay dead forever: their disk slot may
        # be recycled by a later insert under a fresh global id, and
        # without the tombstone the stale id would silently alias the new
        # record (same bug class as stale ``_inserted`` entries).
        self._deleted_base: set = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        records: Sequence[bytes],
        num_shards: int,
        cache_capacity_per_shard: int,
        target_c: float = 2.0,
        page_capacity: int = 1024,
        reserve_fraction: float = 0.0,
        cover_traffic: bool = True,
        spec: Optional[HardwareSpec] = None,
        seed: Optional[int] = None,
        parallel: bool = True,
        metrics=None,
        **database_options,
    ) -> "ShardedPirDatabase":
        """Partition ``records`` into contiguous shards, one engine each.

        ``parallel`` selects concurrent dispatch of the real operation and
        its covers (see :class:`ShardExecutor`); a shared ``tracer`` in
        ``database_options`` forces serial dispatch, because a
        :class:`~repro.obs.tracer.Tracer` is single-threaded by design
        and would interleave spans from different shards.  ``metrics``
        (a thread-safe :class:`~repro.obs.registry.MetricsRegistry`) is
        shared by all shards and the dispatch counters (``shardpool.*``).
        """
        if num_shards <= 0:
            raise ConfigurationError("need at least one shard")
        if len(records) < num_shards:
            raise ConfigurationError("fewer records than shards")
        if database_options.get("tracer") is not None:
            parallel = False
        per_shard = (len(records) + num_shards - 1) // num_shards
        shards: List[PirDatabase] = []
        for index in range(num_shards):
            slice_ = records[index * per_shard : (index + 1) * per_shard]
            if not slice_:
                raise ConfigurationError(
                    "empty shard; lower num_shards for this record count"
                )
            shards.append(
                PirDatabase.create(
                    slice_,
                    cache_capacity=cache_capacity_per_shard,
                    target_c=target_c,
                    page_capacity=page_capacity,
                    reserve_fraction=reserve_fraction,
                    spec=spec,
                    seed=None if seed is None else seed * 1000 + index,
                    metrics=metrics,
                    **database_options,
                )
            )
        return cls(shards, per_shard, len(records), cover_traffic,
                   parallel=parallel, metrics=metrics)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the executor's worker threads and each shard's
        background workers — keystream prefetch and online reshuffle —
        when present (idempotent)."""
        self.executor.close()
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedPirDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def _route(self, global_id: int) -> Tuple[int, int]:
        """Global id -> (shard index, local page id)."""
        with self._routing_lock:
            return self._route_locked(global_id)

    def _with_cover(self, shard_index: int, operation):
        """Run ``operation`` on its shard plus covers on all the others.

        The per-shard operations are always issued in canonical
        shard-index order — independent of which shard carries the real
        operation — so the cross-shard access sequence leaks nothing about
        the target (see the module docstring); the executor then runs them
        serially or concurrently without changing any per-shard stream.
        """
        if not self.cover_traffic:
            results = self.executor.run(
                [(shard_index, partial(operation, self.shards[shard_index]))]
            )
            return results[0]
        self.counters.increment("covers", self.num_shards - 1)
        operations: List[Tuple[int, Callable[[], object]]] = []
        for index, shard in enumerate(self.shards):
            if index == shard_index:
                operations.append((index, partial(operation, shard)))
            else:
                operations.append((index, shard.touch))
        results = self.executor.run(operations)
        return results[shard_index]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def query(self, global_id: int) -> bytes:
        shard_index, local = self._route(global_id)
        return self._with_cover(shard_index, lambda db: db.query(local))

    def update(self, global_id: int, payload: bytes) -> None:
        shard_index, local = self._route(global_id)
        self._with_cover(shard_index, lambda db: db.update(local, payload))

    def delete(self, global_id: int) -> None:
        shard_index, local = self._route(global_id)
        self._with_cover(shard_index, lambda db: db.delete(local))
        # Drop the routing entry only after the shard-level delete
        # succeeded: the shard may recycle the local slot for a future
        # insert, and a stale mapping would alias the old global id onto
        # the new record.
        with self._routing_lock:
            if global_id < self.num_records:
                self._deleted_base.add(global_id)
            else:
                self._inserted.pop(global_id, None)

    def touch(self) -> None:
        """Dummy request to keep the shards' reshuffles mixing.

        With cover traffic every shard advances one request (matching the
        uniform streams real operations produce); without it, shard 0
        hosts the single dummy — the same placement the fused batch path
        uses for touch ops.
        """
        if self.cover_traffic:
            self.executor.run([
                (index, shard.touch)
                for index, shard in enumerate(self.shards)
            ])
        else:
            self.executor.run([(0, self.shards[0].touch)])

    def insert(self, payload: bytes) -> int:
        """Insert into the emptiest shard; returns a fresh global id."""
        best = max(
            range(self.num_shards),
            key=lambda index: self.shards[index].cop.page_map.free_count,
        )
        local = self._with_cover(best, lambda db: db.insert(payload))
        with self._routing_lock:
            global_id = self._next_inserted_id
            self._next_inserted_id += 1
            self._inserted[global_id] = (best, local)
        return global_id

    def run_batch(self, ops: Sequence[BatchOp]) -> List[object]:
        """Fused batch across shards: one windowed disk pass per shard.

        A routing prescan resolves every op's owning shard (recording
        routing failures in their slots without consuming requests), then
        each shard receives *one* :meth:`PirDatabase.run_batch` call
        carrying its real ops plus one ``touch`` cover per foreign real op
        — per-shard streams stay equal-length in canonical order, so the
        cross-shard sequence leaks nothing about targets, and each shard
        fuses its whole stream into round-robin windows.  Inserts are
        routed to the emptiest shard by *simulated* free counts (the
        prescan replays the batch's deletes/inserts against the starting
        counts; which shard hosts a page is placement, not content, so
        replies match the serial methods byte for byte).  Global ids for
        successful inserts are allocated in batch order; successful
        deletes tombstone their global id only after the shard commits.
        """
        results: List[object] = [None] * len(ops)
        with self._routing_lock:
            free = [shard.cop.page_map.free_count for shard in self.shards]
            # The prescan replays the batch's routing-table mutations: a
            # delete must tombstone its global id *for the rest of the
            # batch*, or a later op could silently alias onto an insert
            # that recycles the freed local slot — the exact stale-alias
            # bug the tombstone set prevents across batches.
            sim_deleted_base: set = set()
            sim_removed_inserted: set = set()

            def sim_route(global_id: int) -> Tuple[int, int]:
                if global_id in sim_deleted_base:
                    raise PageDeletedError(f"page {global_id} is deleted")
                if global_id in sim_removed_inserted:
                    raise PageNotFoundError(
                        f"unknown global page id {global_id}"
                    )
                return self._route_locked(global_id)

            routed: List[Tuple[int, Optional[int], int, BatchOp]] = []
            for slot, op in enumerate(ops):
                try:
                    if op.kind == "touch":
                        routed.append((slot, None, -1, op))
                    elif op.kind == "insert":
                        best = max(range(self.num_shards),
                                   key=lambda index: free[index])
                        free[best] -= 1
                        routed.append(
                            (slot, best, -1, BatchOp("insert",
                                                     payload=op.payload))
                        )
                    else:
                        shard_index, local = sim_route(op.page_id)
                        if op.kind == "delete":
                            free[shard_index] += 1
                            if op.page_id < self.num_records:
                                sim_deleted_base.add(op.page_id)
                            else:
                                sim_removed_inserted.add(op.page_id)
                        routed.append(
                            (slot, shard_index, op.page_id,
                             BatchOp(op.kind, page_id=local,
                                     payload=op.payload))
                        )
                except ReproError as exc:
                    results[slot] = exc

        if not routed:
            return results
        self.counters.increment("batch.requests")
        self.counters.increment("batch.ops", len(routed))

        # Per-shard streams: the owning shard gets the real op, every other
        # shard a touch cover, all in canonical shard order per logical op.
        per_shard: List[List[Tuple[Optional[int], BatchOp]]] = [
            [] for _ in self.shards
        ]
        cover = BatchOp("touch")
        covers_issued = 0
        for slot, owner, _, local_op in routed:
            for index in range(self.num_shards):
                if index == owner:
                    per_shard[index].append((slot, local_op))
                elif owner is None and index == 0:
                    # A batch touch with covers disabled still needs one
                    # real dummy request somewhere; shard 0 hosts it.
                    per_shard[index].append((slot, local_op))
                elif self.cover_traffic:
                    per_shard[index].append((None, cover))
                    covers_issued += 1
        if covers_issued:
            self.counters.increment("covers", covers_issued)

        def shard_thunk(db: PirDatabase,
                        stream: List[Tuple[Optional[int], BatchOp]]):
            return db.run_batch([op for _, op in stream])

        operations = [
            (index, partial(shard_thunk, self.shards[index], per_shard[index]))
            for index in range(self.num_shards)
            if per_shard[index]
        ]
        shard_results = self.executor.run(operations)

        # Merge positionally from each owning shard; shard-level errors
        # name local ids, so rewrite them in terms of the global id.
        owner_of = {slot: (0 if owner is None else owner)
                    for slot, owner, _, _ in routed}
        for (index, _), replies in zip(operations, shard_results):
            for (slot, _), reply in zip(per_shard[index], replies):
                if slot is not None and owner_of[slot] == index:
                    results[slot] = reply

        with self._routing_lock:
            for slot, owner, global_id, local_op in routed:
                reply = results[slot]
                if local_op.kind == "insert" and not isinstance(
                        reply, Exception):
                    new_id = self._next_inserted_id
                    self._next_inserted_id += 1
                    self._inserted[new_id] = (owner, reply)
                    results[slot] = new_id
                elif local_op.kind == "delete" and not isinstance(
                        reply, Exception):
                    if global_id < self.num_records:
                        self._deleted_base.add(global_id)
                    else:
                        self._inserted.pop(global_id, None)
                elif isinstance(reply, Exception) and global_id >= 0:
                    results[slot] = _globalise_error(
                        reply, local_op.page_id, global_id
                    )
        return results

    def _route_locked(self, global_id: int) -> Tuple[int, int]:
        """:meth:`_route` body for callers already holding the lock."""
        if 0 <= global_id < self.num_records:
            if global_id in self._deleted_base:
                raise PageDeletedError(f"page {global_id} is deleted")
            return global_id // self._per_shard, global_id % self._per_shard
        if global_id in self._inserted:
            return self._inserted[global_id]
        raise PageNotFoundError(f"unknown global page id {global_id}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def achieved_c(self) -> float:
        """Worst (largest) per-shard privacy level."""
        return max(shard.achieved_c for shard in self.shards)

    def elapsed(self) -> float:
        """Simulated time so far, assuming shards run on parallel hardware."""
        return max(shard.clock.now for shard in self.shards)

    def elapsed_serial(self) -> float:
        """Simulated time if every shard operation ran on one unit in turn.

        The sum of the per-shard clocks: what the same request stream
        would cost without parallel hardware.  ``elapsed_serial() /
        elapsed()`` is the deterministic speedup the partitioned
        deployment buys (``bench_parallel.py`` gates on it).
        """
        return sum(shard.clock.now for shard in self.shards)

    def total_requests(self) -> int:
        return sum(shard.engine.request_count for shard in self.shards)

    def storage_report(self) -> SecureStorageReport:
        """Aggregate secure-memory footprint across all units."""
        reports = [shard.storage_report() for shard in self.shards]
        return SecureStorageReport(
            page_map=sum(r.page_map for r in reports),
            page_cache=sum(r.page_cache for r in reports),
            server_block=sum(r.server_block for r in reports),
        )

    def shard_request_counts(self) -> List[int]:
        """Per-shard request totals — equal under cover traffic."""
        return [shard.engine.request_count for shard in self.shards]

    def consistency_check(self) -> None:
        for shard in self.shards:
            shard.consistency_check()
