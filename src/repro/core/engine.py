"""The private page retrieval algorithm (Figure 3) and §4.3 updates.

Every client operation — query, modification, deletion, insertion — executes
the *identical* observable sequence:

1. read the next round-robin block of ``k`` consecutive frames,
2. read one extra frame (the target page, or a random / free page),
3. decrypt all ``k + 1`` pages inside the tamper boundary,
4. swap the target into a uniformly random block slot ``r`` (line 18),
5. swap it with a cache slot ``s`` (line 20) — the evicted cache page
   lands in block slot ``r``, i.e. uniformly over the block's k locations,
   which is precisely what Eq. 2 analyses,
6. re-encrypt everything with fresh nonces and write the ``k + 1`` frames
   back (one contiguous block write + one extra write).

Four random disk accesses, ``2(k+1)`` frames over the link and through the
crypto engine per request (Eq. 8), with *zero* dependence of the trace shape
on the operation type or on cache hits — the property §4.3 sells for update
privacy and the tests verify byte-for-byte on the trace.

Crash consistency
-----------------

The request is internally structured as *compute → intend → apply*: all
random choices, content edits and re-encryptions are computed first without
touching any durable or trusted state; the complete post-state (frames,
pageMap/cache delta, advanced pointers) is then optionally sealed into a
write-ahead :mod:`intent journal <repro.core.journal>`; only then is it
applied — trusted deltas, the k+1 frame write-back, pointer advance, journal
clear, in that order.  Every apply step is idempotent and absolute, so
:meth:`RetrievalEngine.recover` can roll a torn write-back forward (valid
intent record) or declare the request never-happened (no/unauthentic
record) after a crash at *any* individual step.

When the write-back fails *without* killing the process (a transient I/O
error), the engine keeps the intent in memory and rolls it forward
automatically at the start of the next request, so a retried request never
computes against a pageMap pointing at never-written frames and never
overwrites a journal record that is still needed for repair.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .journal import (
    FLAG_DELETED,
    FLAG_LIVE,
    MAP_CACHED,
    MAP_DISK,
    WriteIntent,
)
from .params import SystemParameters
from ..errors import (
    AuthenticationError,
    CapacityError,
    ConfigurationError,
    CryptoError,
    PageDeletedError,
    PageNotFoundError,
    RecoveryError,
    ReproError,
    StorageError,
    TransientStorageError,
)
from ..faults.retry import RetryPolicy, retry_call
from ..hardware.coprocessor import SecureCoprocessor
from ..obs.tracer import NULL_TRACER, Tracer
from ..sim.metrics import CounterSet
from ..storage.disk import DiskStore
from ..storage.page import Page

__all__ = ["RetrievalEngine", "RequestOutcome", "RecoveryReport", "BatchOp"]

_MAX_REJECTION_ROUNDS = 10_000_000

BATCH_KINDS = ("query", "update", "insert", "delete", "touch")


@dataclass(frozen=True)
class BatchOp:
    """One logical operation inside a fused batch.

    ``kind`` is one of :data:`BATCH_KINDS`; ``page_id`` is required for
    query/update/delete and ``payload`` for update/insert.  The engine
    validates per slot, so a malformed op refuses its own slot without
    sinking the batch.
    """

    kind: str
    page_id: Optional[int] = None
    payload: Optional[bytes] = None


@dataclass
class RequestOutcome:
    """What one request did, for metrics and tests (never leaves the TCB)."""

    request_index: int
    block_start: int
    extra_location: int
    cache_hit: bool
    victim_slot: int
    block_slot: int
    elapsed: float


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`RetrievalEngine.recover` found and did.

    ``action`` is one of:

    ``"clean"``
        No journal, or an empty journal slot — nothing was in flight.
    ``"rolled_back"``
        The journal held a torn/unauthentic record: the crash hit before
        the intent became durable, so the request never happened.
    ``"replayed"``
        A valid record for the in-flight request was rolled forward.
    ``"discarded_stale"``
        The record described an already-committed request (the crash hit
        between the write-back completing and the journal being cleared).
    """

    action: str
    request_index: Optional[int] = None


class RetrievalEngine:
    """Executes Figure 3 over a prepared coprocessor + disk pair.

    The engine assumes setup already happened (cache full, every disk
    location holds a frame, page map consistent) —
    :class:`repro.core.database.PirDatabase` is the friendly constructor
    that performs that setup.

    ``journal`` (any object with ``write``/``read``/``clear``, see
    :mod:`repro.core.journal`) enables crash-consistent write-back;
    ``read_retry`` (a :class:`~repro.faults.retry.RetryPolicy`) retries
    the block fetch on :class:`~repro.errors.TransientStorageError` and
    performs bounded re-reads on :class:`~repro.errors.AuthenticationError`,
    with backoff charged to the virtual clock and jitter drawn from a
    spawned (seeded) RNG so faulty runs stay exactly reproducible.
    """

    def __init__(
        self,
        params: SystemParameters,
        coprocessor: SecureCoprocessor,
        disk: DiskStore,
        journal=None,
        read_retry: Optional[RetryPolicy] = None,
        tracer: Optional[Tracer] = None,
        metrics=None,
    ):
        if disk.num_locations != params.num_locations:
            raise ConfigurationError("disk size does not match parameters")
        if coprocessor.cache.capacity != params.cache_capacity:
            raise ConfigurationError("cache capacity does not match parameters")
        if coprocessor.page_map.num_pages != params.total_pages:
            raise ConfigurationError("page map size does not match parameters")
        self.params = params
        self.cop = coprocessor
        self.disk = disk
        self.journal = journal
        self.read_retry = read_retry
        self._retry_rng = coprocessor.rng.spawn("engine-retry")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.counters = CounterSet(registry=metrics, prefix="engine.")
        # Per-request virtual latency distribution — the Eq. 8 constant-cost
        # claim shows up here as a degenerate (zero-variance) histogram.
        self._query_hist = (
            metrics.histogram("engine.query_seconds")
            if metrics is not None else None
        )
        # Serialises trusted-state mutation between the request path and
        # background workers (the online reshuffler takes it per comparator
        # batch).  Re-entrant so request helpers may call back into public
        # operations while already holding it.
        self.op_lock = threading.RLock()
        # Background workers (the online reshuffler) register their own
        # roll-forward hooks here so a request never computes against a
        # half-applied *background* write-back either; see _heal_pending.
        self._background_healers: List = []
        self._next_block = 0
        self._request_count = 0
        self._rotation_requests_left: Optional[int] = None
        self._pending_intent: Optional[WriteIntent] = None
        self.last_outcome: Optional[RequestOutcome] = None

    # -- public operations -------------------------------------------------------

    @property
    def request_count(self) -> int:
        return self._request_count

    @property
    def next_block_index(self) -> int:
        """Round-robin position (0..num_blocks-1) of the next request's block."""
        return self._next_block

    def retrieve(self, page_id: int) -> Page:
        """Q(i): privately fetch page ``page_id`` (Figure 3's Retrieve)."""
        self._check_user_id(page_id)
        return self._execute(target_id=page_id)

    def modify(self, page_id: int, payload: bytes) -> None:
        """Replace a page's payload; trace-identical to a query (§4.3)."""
        self._check_user_id(page_id)
        self._check_payload(payload)
        self._execute(target_id=page_id, new_payload=payload, revive=True)

    def delete(self, page_id: int) -> None:
        """Mark a page deleted; its slot joins the insertion free pool (§4.3)."""
        self._check_user_id(page_id)
        if self.cop.page_map.is_deleted(page_id):
            raise PageNotFoundError(f"page {page_id} is already deleted")
        self._execute(target_id=page_id, deleting=True)

    def insert(self, payload: bytes) -> int:
        """Store a new page in a reclaimed free slot; returns its page id (§4.3)."""
        self._check_payload(payload)
        target = self._pick_free_disk_page()
        self._execute(target_id=target, new_payload=payload, revive=True)
        return target

    def touch(self) -> None:
        """One dummy request (random page), e.g. to keep the reshuffle mixing
        during idle periods.  Observable trace identical to any query."""
        self._execute(target_id=None)

    def begin_key_rotation(self, new_master_key: bytes) -> None:
        """Rotate the database encryption key online, for free.

        Sealing switches to the new key immediately; the legacy key stays
        available for reads.  Because every request rewrites its whole
        round-robin block (plus one extra page), all n locations carry
        new-key frames after exactly one scan period of further requests,
        at which point the legacy key is dropped automatically.  The server
        observes nothing: write-backs are always freshly re-encrypted.
        """
        self.cop.begin_key_rotation(new_master_key)
        self._rotation_requests_left = self.params.num_blocks

    @property
    def rotation_requests_remaining(self) -> Optional[int]:
        """Requests until the legacy key can be dropped (None if no rotation)."""
        return self._rotation_requests_left

    # -- crash recovery ----------------------------------------------------------

    @property
    def journal_pending(self) -> bool:
        """True when the journal holds an intent record (recover() needed)."""
        return self.journal is not None and self.journal.read() is not None

    @property
    def write_back_pending(self) -> bool:
        """True when a failed write-back awaits roll-forward.

        Set when the disk raised mid-apply *without* crashing the process;
        the next request (or :meth:`recover`) re-applies the retained
        intent before doing anything else, so callers normally never need
        to check this — it exists for tests and diagnostics.
        """
        return self._pending_intent is not None

    def recover(self) -> RecoveryReport:
        """Repair a torn write-back after a crash; idempotent.

        Call on restart (or after catching a simulated crash) before
        serving requests.  Outcome semantics are documented on
        :class:`RecoveryReport`.  Raises
        :class:`~repro.errors.RecoveryError` when the journal describes a
        request *later* than the trusted state expects — the trusted state
        is older than the journal (e.g. restored from a stale snapshot)
        and roll-forward would corrupt the database.
        """
        with self.op_lock:
            return self._recover_locked()

    def _recover_locked(self) -> RecoveryReport:
        if self.journal is None:
            if self._pending_intent is not None:
                # Journal-less engines can still roll a failed write-back
                # forward from the in-memory intent (see _heal_pending).
                self._heal_pending()
                return RecoveryReport("replayed", self._request_count - 1)
            return RecoveryReport("clean")
        blob = self.journal.read()
        if blob is None:
            self._pending_intent = None
            self.counters.increment("recovery.clean")
            return RecoveryReport("clean")
        try:
            intent = WriteIntent.decode(self.cop.unseal_blob(blob))
        except (CryptoError, StorageError):
            # Torn or unauthentic record: the crash hit while the intent
            # itself was being written, so no write-back ever started and
            # no trusted state was mutated.  The request never happened.
            self.journal.clear()
            self._pending_intent = None
            self.counters.increment("recovery.rolled_back")
            return RecoveryReport("rolled_back")
        if intent.request_index < self._request_count:
            # Write-back committed; only the journal clear was lost.
            self.journal.clear()
            self._pending_intent = None
            self.counters.increment("recovery.discarded_stale")
            return RecoveryReport("discarded_stale", intent.request_index)
        if intent.request_index > self._request_count:
            raise RecoveryError(
                f"journal describes request {intent.request_index} but the "
                f"trusted state expects request {self._request_count}; the "
                "restored state is older than the journal and cannot be "
                "rolled forward"
            )
        expected_frames = self.params.block_size + intent.request_span
        if len(intent.frames) != expected_frames:
            raise RecoveryError(
                f"intent record carries {len(intent.frames)} frames, "
                f"expected {expected_frames}"
            )
        self.disk.current_request = intent.request_index
        self._apply_intent(intent)
        self.journal.clear()
        self.disk.current_request = -1
        self.counters.increment("recovery.replayed")
        return RecoveryReport("replayed", intent.request_index)

    # -- the unified request ---------------------------------------------------------

    def _execute(
        self,
        target_id: Optional[int],
        new_payload: Optional[bytes] = None,
        deleting: bool = False,
        revive: bool = False,
    ) -> Page:
        # The op lock spans the whole request so a background comparator
        # batch can never observe (or mutate) a half-applied trusted state;
        # with no background worker attached it is uncontended and free.
        with self.op_lock:
            # A previous request whose write-back failed mid-apply left the
            # trusted deltas in place with the frames unwritten; finish it
            # before computing anything against that state (_heal_pending).
            self._heal_pending()

            # The "request" span is the root of each query's trace:
            # everything the request does (disk, link, crypto, journal,
            # write-back) nests under it, and its virtual duration is what
            # CostModelCheck compares against the full Eq. 8 prediction.
            with self.tracer.span("request"):
                result = self._execute_request(
                    target_id, new_payload, deleting, revive
                )
            self.counters.increment("requests")
            if self._query_hist is not None and self.last_outcome is not None:
                self._query_hist.observe(self.last_outcome.elapsed)
            # Idle-time keystream prefetch for the *next* request's block —
            # a sibling of the "request" span, so it never inflates the
            # request's own wall/virtual totals (and it charges no virtual
            # time at all).
            self.prefetch_next()
            return result

    def prefetch_next(self) -> int:
        """Precompute decrypt keystreams for the next round-robin block.

        The scan order is deterministic, so the k locations the next
        request will read are known now; their nonces were recorded when
        the frames were written (or seeded at setup).  The extra (k+1)-th
        page depends on the next request's target and cannot be
        prefetched — it accounts for the one expected miss per request.
        A no-op without an attached pipeline.  Returns the number of
        keystream bytes scheduled.
        """
        if self.cop.pipeline is None:
            return 0
        k = self.params.block_size
        start = self._next_block * k
        with self.tracer.span("pipeline.prefetch"):
            return self.cop.prefetch_keystreams(range(start, start + k))

    # -- fused batch execution ---------------------------------------------------

    def run_batch(
        self,
        ops: Sequence[BatchOp],
        window: Optional[int] = None,
    ) -> List[object]:
        """Execute a batch with **one physical disk pass per window**.

        Ops are grouped into round-robin windows of up to ``window``
        (default k) operations.  Each window reads the k-frame block
        *once*, decrypts it with a single fused keystream call, serves
        every op in the group from the shared in-memory frames (zero-copy
        memoryview pages), and commits one journaled write-back — the
        serial loop's ~B·(k+1) frame transfers collapse to ~(k+B) per
        shared window while replies stay byte-identical (content is a
        pure function of the logical op sequence; see DESIGN.md §14 for
        the privacy argument).

        Returns a positional result list: a :class:`Page` for ``query``,
        the new page id (int) for ``insert``, ``None`` for
        update/delete/touch.  A slot whose op failed holds the exception
        instance instead — validation failures never consume a request,
        and a window-level storage fault fails only that window's slots
        (matching the serial loop's per-op failure isolation at window
        granularity).  Non-PIR exceptions (e.g. a simulated crash)
        propagate, leaving the journal positioned for :meth:`recover`.
        """
        capacity = self.params.block_size if window is None else window
        if capacity <= 0:
            raise ConfigurationError("batch window must be positive")
        results: List[object] = [None] * len(ops)
        for start in range(0, len(ops), capacity):
            # Locked per window, not per batch: a background comparator
            # batch may interleave between windows (each window commits
            # atomically) but never inside one.
            with self.op_lock:
                # A previous window (or request) whose write-back failed
                # mid-apply left trusted deltas in place with the frames
                # unwritten; roll it forward before planning against that
                # state — exactly the serial loop's per-request heal.
                self._heal_pending()
                indices = list(range(start, min(start + capacity, len(ops))))
                plan = self._plan_window([ops[i] for i in indices], results,
                                         indices)
                live = [(i, entry) for i, entry in zip(indices, plan)
                        if entry is not None]
                if not live:
                    continue
                try:
                    # The "engine.batch" span is the window's trace root,
                    # the batched counterpart of the serial "request" span.
                    with self.tracer.span("engine.batch"):
                        self._run_window(live, results)
                except ReproError as exc:
                    # Compute-phase abort: nothing trusted or durable
                    # changed, the window simply never happened.
                    # Apply-phase failure: the intent is retained and the
                    # next window's heal rolls it forward (the ops then
                    # *have* committed — clients that retry on the reported
                    # transient error stay idempotent, as with a serial
                    # request).  Either way every executable slot reports
                    # the error (validation failures recorded by the
                    # planner stand) and later windows proceed.
                    for i, _ in live:
                        results[i] = exc
                    self.disk.current_request = -1
                    continue
                self.prefetch_next()
        return results

    def _plan_window(
        self,
        ops: Sequence[BatchOp],
        results: List[object],
        indices: Sequence[int],
    ) -> List[Optional[Tuple]]:
        """Validate a window's ops against a simulated flag/free overlay.

        Validation outcomes depend only on the logical op sequence (page
        flags and the free pool), never on relocation randomness, so the
        planner can decide *before* touching the disk which ops execute —
        a window whose every op fails validation performs no I/O at all,
        and insert targets are pinned here exactly as the serial loop
        would pick them (lowest free id at that op's turn).
        """
        pm = self.cop.page_map
        sim_flags: Dict[int, int] = {}
        sim_free: Optional[set] = None

        def sim_deleted(page_id: int) -> bool:
            flag = sim_flags.get(page_id)
            if flag is not None:
                return flag == FLAG_DELETED
            return pm.is_deleted(page_id)

        def materialised_free() -> set:
            nonlocal sim_free
            if sim_free is None:
                sim_free = set(pm.free_ids())
                for page_id, flag in sim_flags.items():
                    if flag == FLAG_DELETED:
                        sim_free.add(page_id)
                    else:
                        sim_free.discard(page_id)
            return sim_free

        plan: List[Optional[Tuple]] = []
        for slot, op in zip(indices, ops):
            try:
                if op.kind == "touch":
                    entry = ("touch", None, None, False, False)
                elif op.kind == "query":
                    self._check_user_id(op.page_id)
                    entry = ("query", op.page_id, None, False, False)
                elif op.kind == "update":
                    self._check_user_id(op.page_id)
                    self._check_payload(op.payload)
                    sim_flags[op.page_id] = FLAG_LIVE
                    if sim_free is not None:
                        sim_free.discard(op.page_id)
                    entry = ("update", op.page_id, op.payload, False, True)
                elif op.kind == "delete":
                    self._check_user_id(op.page_id)
                    if sim_deleted(op.page_id):
                        raise PageNotFoundError(
                            f"page {op.page_id} is already deleted"
                        )
                    sim_flags[op.page_id] = FLAG_DELETED
                    if sim_free is not None:
                        sim_free.add(op.page_id)
                    entry = ("delete", op.page_id, None, True, False)
                elif op.kind == "insert":
                    self._check_payload(op.payload)
                    free = materialised_free()
                    if not free:
                        raise CapacityError(
                            "no free page available for insertion; delete "
                            "pages or provision a reserve_fraction at setup"
                        )
                    target = min(free)
                    free.discard(target)
                    sim_flags[target] = FLAG_LIVE
                    entry = ("insert", target, op.payload, False, True)
                else:
                    raise ConfigurationError(
                        f"unknown batch op kind {op.kind!r}"
                    )
            except ReproError as exc:
                results[slot] = exc
                plan.append(None)
            else:
                plan.append(entry)
        return plan

    def _run_window(
        self,
        live: List[Tuple[int, Tuple]],
        results: List[object],
    ) -> None:
        """One fused disk pass serving every planned op of one window.

        Compute → intend → apply, exactly like a serial request: all
        per-op relocations happen against in-memory containers (the
        shared block plus per-op extra frames) and a *pending overlay* of
        the trusted state; nothing lands in the real pageMap/pageCache —
        and nothing durable moves — until the single commit point, so a
        mid-window read fault aborts the whole window cleanly.
        """
        pm = self.cop.page_map
        cache = self.cop.cache
        rng = self.cop.rng
        k = self.params.block_size
        base_index = self._request_count
        self.disk.current_request = base_index
        block_start = self._next_block * k

        # One physical scan of the round-robin block; a single fused
        # keystream call decrypts all k frames into zero-copy page views.
        block = self._fetch_window_block(block_start, k)
        extras: List[Page] = []
        extra_locs: List[int] = []

        # Window-wide pending overlay of the trusted state.
        ov_cache: Dict[int, Page] = {}
        ov_pos: Dict[int, Tuple[int, int]] = {}
        ov_flags: Dict[int, int] = {}
        cache_puts: List[Tuple[int, Page]] = []
        flag_ops: List[Tuple[int, int]] = []
        map_ops: List[Tuple[int, int, int]] = []

        def ov_lookup(page_id: int) -> Tuple[bool, int]:
            entry = ov_pos.get(page_id)
            if entry is not None:
                return entry[0] == MAP_CACHED, entry[1]
            location = pm.lookup(page_id)
            return location.in_cache, location.position

        def ov_is_deleted(page_id: int) -> bool:
            flag = ov_flags.get(page_id)
            if flag is not None:
                return flag == FLAG_DELETED
            return pm.is_deleted(page_id)

        def ov_cache_get(slot: int) -> Page:
            page = ov_cache.get(slot)
            return page if page is not None else cache.get(slot)

        def container_get(position: int) -> Page:
            if block_start <= position < block_start + k:
                return block[position - block_start]
            return extras[extra_locs.index(position)]

        def container_set(position: int, page: Page) -> None:
            if block_start <= position < block_start + k:
                block[position - block_start] = page
            else:
                extras[extra_locs.index(position)] = page

        executed = 0
        for slot, entry in live:
            kind, target_id, new_payload, deleting, revive = entry

            # Lines 2-9 against the overlay: decide the per-op extra page.
            cache_hit = False
            result: Optional[Page] = None
            if target_id is None:
                extra_id = self._window_random_candidate(
                    block_start, ov_pos, extra_locs
                )
            else:
                in_cache, position = ov_lookup(target_id)
                if in_cache:
                    cache_hit = True
                    result = ov_cache_get(position)
                    extra_id = self._window_random_candidate(
                        block_start, ov_pos, extra_locs
                    )
                elif deleting:
                    extra_id = self._window_random_candidate(
                        block_start, ov_pos, extra_locs
                    )
                elif (block_start <= position < block_start + k
                        or position in extra_locs):
                    # Already inside the window's containers — served from
                    # memory; fetch a random extra to keep the shape.
                    extra_id = self._window_random_candidate(
                        block_start, ov_pos, extra_locs
                    )
                else:
                    extra_id = target_id
            _, extra_location = ov_lookup(extra_id)

            # The one per-op physical read (the serial path's (k+1)-th
            # frame); the k-frame block itself is never re-read.
            extras.append(self._fetch_window_extra(extra_location))
            extra_locs.append(extra_location)

            wants_fetched_target = (
                target_id is not None and not cache_hit and not deleting
            )
            if wants_fetched_target:
                _, q_pos = ov_lookup(target_id)
                result = container_get(q_pos)
                if result.page_id != target_id:
                    raise PageNotFoundError(
                        f"page {target_id} not found at mapped position "
                        f"{q_pos}; page map and disk are inconsistent"
                    )
            else:
                q_pos = extra_location

            # §4.3 content edits, recorded as overlay + intent deltas.
            if target_id is not None:
                if new_payload is not None:
                    fresh = Page(target_id, new_payload, deleted=False)
                    if cache_hit:
                        _, cache_slot = ov_lookup(target_id)
                        cache_puts.append((cache_slot, fresh))
                        ov_cache[cache_slot] = fresh
                        result = fresh
                    else:
                        container_set(q_pos, fresh)
                    if revive:
                        flag_ops.append((target_id, FLAG_LIVE))
                        ov_flags[target_id] = FLAG_LIVE
                if deleting:
                    if cache_hit:
                        _, cache_slot = ov_lookup(target_id)
                        carcass = Page(target_id, b"", deleted=True)
                        cache_puts.append((cache_slot, carcass))
                        ov_cache[cache_slot] = carcass
                    else:
                        _, carcass_pos = ov_lookup(target_id)
                        if (block_start <= carcass_pos < block_start + k
                                or carcass_pos in extra_locs):
                            container_set(
                                carcass_pos,
                                container_get(carcass_pos).mark_deleted(),
                            )
                    flag_ops.append((target_id, FLAG_DELETED))
                    ov_flags[target_id] = FLAG_DELETED

            # Lines 17-20: relocate through a uniform block slot and a
            # cache victim, all inside the shared containers.
            r = rng.randrange(k)
            r_pos = block_start + r
            page_r = container_get(r_pos)
            page_q = container_get(q_pos)
            container_set(r_pos, page_q)
            container_set(q_pos, page_r)

            if deleting and target_id is not None and cache_hit:
                _, s = ov_lookup(target_id)
            else:
                s = cache.victim_slot()
            evicted = ov_cache_get(s)
            entering = container_get(r_pos)
            cache_puts.append((s, entering))
            ov_cache[s] = entering
            container_set(r_pos, evicted)

            page_at_r = container_get(r_pos)
            page_at_q = container_get(q_pos)
            map_ops.append((entering.page_id, MAP_CACHED, s))
            map_ops.append((page_at_r.page_id, MAP_DISK, r_pos))
            map_ops.append((page_at_q.page_id, MAP_DISK, q_pos))
            ov_pos[entering.page_id] = (MAP_CACHED, s)
            ov_pos[page_at_r.page_id] = (MAP_DISK, r_pos)
            ov_pos[page_at_q.page_id] = (MAP_DISK, q_pos)

            if kind == "query":
                # Executed in full first (the trace must not depend on
                # page state), then the slot refuses — the serial path's
                # PirDatabase.query contract, at the op's in-window turn.
                if ov_is_deleted(target_id):
                    results[slot] = PageDeletedError(
                        f"page {target_id} is deleted"
                    )
                else:
                    results[slot] = result
            elif kind == "insert":
                results[slot] = target_id
            else:
                results[slot] = None
            executed += 1

        # ---- single commit point for the whole window ----------------------
        n_extra = len(extras)
        self.cop.charge_egress(k + n_extra)
        with self.tracer.span("reencrypt",
                              nbytes=(k + n_extra) * self.cop.frame_size):
            sealed = self.cop.seal_pages(block + extras)
        self.counters.increment("crypto.batched_frames", k + n_extra)
        rotation_left = self._rotation_requests_left
        intent = WriteIntent(
            request_index=base_index,
            next_block=(self._next_block + 1) % self.params.num_blocks,
            rotation_left=-1 if rotation_left is None else rotation_left - 1,
            block_start=block_start,
            extra_location=extra_locs[0],
            extra_locations=list(extra_locs),
            cache_puts=cache_puts,
            flag_ops=flag_ops,
            map_ops=map_ops,
            frames=sealed,
        )
        if self.journal is not None:
            with self.tracer.span("journal.seal"):
                self.journal.write(self.cop.seal_blob(intent.encode()))
        self._apply_intent(intent)
        if self.journal is not None:
            self.journal.clear()
        self.disk.current_request = -1

        self.counters.increment("requests", executed)
        self.counters.increment("batch.fused.windows")
        self.counters.increment("batch.fused.ops", executed)
        self.counters.increment("batch.fused.block_reads")
        self.counters.increment("batch.fused.extra_reads", n_extra)
        self.counters.increment(
            "batch.fused.reads_saved", executed * (k + 1) - (k + n_extra)
        )
        if self.cop.pipeline is not None:
            self.cop.pipeline.note_batch_window(k, n_extra)

    def _fetch_window_block(self, block_start: int, k: int) -> List[Page]:
        """One contiguous read + fused decrypt of the round-robin block."""

        def attempt() -> List[Page]:
            frames = self.disk.read_range(block_start, k)
            self.cop.charge_ingest(k)
            with self.tracer.span("decrypt",
                                  nbytes=k * self.cop.frame_size):
                block = self.cop.unseal_frames(list(frames), views=True)
            self.counters.increment("crypto.batched_frames", k)
            return block

        if self.read_retry is None:
            return attempt()
        return retry_call(
            attempt,
            self.read_retry,
            self.cop.clock,
            self._retry_rng,
            retry_on=(TransientStorageError, AuthenticationError),
            counters=self.counters,
            counter="retries.read",
        )

    def _fetch_window_extra(self, location: int) -> Page:
        """Read + decrypt one per-op extra frame inside a fused window."""

        def attempt() -> Page:
            frame = self.disk.read(location)
            self.cop.charge_ingest(1)
            with self.tracer.span("decrypt", nbytes=self.cop.frame_size):
                return self.cop.unseal_frames([frame], views=True)[0]

        if self.read_retry is None:
            return attempt()
        return retry_call(
            attempt,
            self.read_retry,
            self.cop.clock,
            self._retry_rng,
            retry_on=(TransientStorageError, AuthenticationError),
            counters=self.counters,
            counter="retries.read",
        )

    def _window_random_candidate(
        self,
        block_start: int,
        ov_pos: Dict[int, Tuple[int, int]],
        extra_locs: List[int],
    ) -> int:
        """Overlay-aware :meth:`_random_free_candidate` for fused windows.

        Additionally rejects candidates whose (overlay) position is one of
        the window's already-fetched extra locations: the disk frame there
        is stale — the live page sits in the window's containers — so
        re-reading it would serve garbage.
        """
        pm = self.cop.page_map
        k = self.params.block_size
        total = self.params.total_pages
        for _ in range(_MAX_REJECTION_ROUNDS):
            candidate = self.cop.rng.randrange(total)
            entry = ov_pos.get(candidate)
            if entry is not None:
                in_cache, position = entry[0] == MAP_CACHED, entry[1]
            else:
                location = pm.lookup(candidate)
                in_cache, position = location.in_cache, location.position
            if in_cache:
                continue
            if block_start <= position < block_start + k:
                continue
            if position in extra_locs:
                continue
            return candidate
        raise CapacityError(
            "rejection sampling failed to find an eligible random page; the "
            "configuration violates num_locations >= block_size + 2"
        )

    def _execute_request(
        self,
        target_id: Optional[int],
        new_payload: Optional[bytes],
        deleting: bool,
        revive: bool,
    ) -> Page:
        pm = self.cop.page_map
        cache = self.cop.cache
        rng = self.cop.rng
        k = self.params.block_size
        started = self.cop.clock.now

        # ---- compute phase: no durable or trusted state is touched ----------

        request_index = self._request_count
        self.disk.current_request = request_index

        # The next block of k contiguous pages, round-robin (line 1).  The
        # pointer itself only advances at commit, so an aborted or crashed
        # request leaves it untouched and a resend hits the same block.
        block_start = self._next_block * k

        # Lines 2-9: decide the (k+1)-th page and capture a cached result.
        # Both depend only on the page map and cache, never on block
        # contents, so the decision is made before any disk access — which
        # lets remote transports issue the block and the extra page as one
        # batched read (the paper's two-party prototype does the same).
        result: Optional[Page] = None
        cache_hit = False
        with self.tracer.span("pagemap.lookup"):
            if target_id is None:
                extra_id = self._random_free_candidate(block_start)
            else:
                location = pm.lookup(target_id)
                if location.in_cache:
                    cache_hit = True
                    result = cache.get(location.position)
                    extra_id = self._random_free_candidate(block_start)
                elif deleting:
                    # Deletions are handled as cache hits (§4.3): random
                    # extra page.
                    extra_id = self._random_free_candidate(block_start)
                elif block_start <= location.position < block_start + k:
                    extra_id = self._random_free_candidate(block_start)
                else:
                    extra_id = target_id  # line 9: p <- i
            extra_location = pm.disk_location(extra_id)

        # Lines 1, 10-11: read the block and page p, decrypt inside the
        # boundary (with bounded retries when a policy is configured).
        block = self._fetch_block(block_start, k, extra_location)

        # Lines 12-16: locate the relocation target q within serverBlock.
        wants_fetched_target = (
            target_id is not None and not cache_hit and not deleting
        )
        if wants_fetched_target:
            q = self._index_of(block, target_id, block_start, extra_location)
            result = block[q]
        else:
            q = k

        # §4.3 content edits, computed as pending deltas (applied at commit).
        cache_puts: List[Tuple[int, Page]] = []
        flag_ops: List[Tuple[int, int]] = []
        if target_id is not None:
            if new_payload is not None:
                if cache_hit:
                    slot = pm.lookup(target_id).position
                    cache_puts.append(
                        (slot, Page(target_id, new_payload, deleted=False))
                    )
                else:
                    block[q] = Page(target_id, new_payload, deleted=False)
                if revive:
                    flag_ops.append((target_id, FLAG_LIVE))
            if deleting:
                if cache_hit:
                    slot = pm.lookup(target_id).position
                    cache_puts.append((slot, Page(target_id, b"", deleted=True)))
                else:
                    # The carcass stays encrypted wherever it is; only
                    # metadata changes.
                    for index, page in enumerate(block):
                        if page.page_id == target_id:
                            block[index] = page.mark_deleted()
                flag_ops.append((target_id, FLAG_DELETED))

        with self.tracer.span("cache.op"):
            # Lines 17-18: move the target to a uniform slot within the block.
            r = rng.randrange(k)
            block[r], block[q] = block[q], block[r]

            # Lines 19-20: swap with a cache slot.  A deletion of a cached
            # page always selects that page as the victim (§4.3); otherwise
            # the victim is the policy's choice (uniform under the paper's
            # policy).
            with self.tracer.span("evict"):
                if deleting and target_id is not None and cache_hit:
                    s = pm.lookup(target_id).position
                else:
                    s = cache.victim_slot()
                evicted = self._pending_cache_view(cache_puts, s)
                if evicted is None:
                    evicted = cache.get(s)
            entering = block[r]
            cache_puts.append((s, entering))
            block[r] = evicted

        # Lines 21-22: re-encrypt everything with fresh nonces.  The link
        # egress charge keeps its own span (link.ingest/link.egress carry
        # the Eq. 8 link-term bytes) so the reencrypt span's bytes feed the
        # crypto term alone.
        self.cop.charge_egress(k + 1)
        with self.tracer.span("reencrypt",
                              nbytes=(k + 1) * self.cop.frame_size):
            # Batched seal: one suite entry for all k+1 frames (nonces are
            # drawn in page order, so the frames match per-page sealing
            # byte for byte).
            sealed = self.cop.seal_pages(block)
        self.counters.increment("crypto.batched_frames", k + 1)

        # Lines 23-25 as a pending delta for the three relocated pages.
        map_ops = [
            (entering.page_id, MAP_CACHED, s),
            (block[r].page_id, MAP_DISK, block_start + r),
            (block[q].page_id, MAP_DISK,
             block_start + q if q < k else extra_location),
        ]
        rotation_left = self._rotation_requests_left
        intent = WriteIntent(
            request_index=request_index,
            next_block=(self._next_block + 1) % self.params.num_blocks,
            rotation_left=-1 if rotation_left is None else rotation_left - 1,
            block_start=block_start,
            extra_location=extra_location,
            cache_puts=cache_puts,
            flag_ops=flag_ops,
            map_ops=map_ops,
            frames=sealed,
        )

        # ---- intend phase: make the post-state durable before applying it --

        if self.journal is not None:
            with self.tracer.span("journal.seal"):
                self.journal.write(self.cop.seal_blob(intent.encode()))

        # ---- apply phase: idempotent, replayable from the intent record ----

        self._apply_intent(intent)
        if self.journal is not None:
            self.journal.clear()

        self.disk.current_request = -1
        self.last_outcome = RequestOutcome(
            request_index=request_index,
            block_start=block_start,
            extra_location=extra_location,
            cache_hit=cache_hit,
            victim_slot=s,
            block_slot=r,
            elapsed=self.cop.clock.now - started,
        )

        # Line 26: return the page (queries only reach here with result set).
        if target_id is None or deleting:
            return Page.dummy()
        assert result is not None
        if new_payload is not None:
            return result.with_payload(new_payload)
        return result

    def _apply_intent(self, intent: WriteIntent) -> None:
        """Commit an intent record; every step is idempotent.

        Trusted deltas land first (they cannot fail), then the k+1-frame
        write-back (the only crashable step), then the pointer advance that
        marks the request committed.  ``recover()`` re-runs this whole
        method safely: cache puts and map/flag ops write absolute values,
        frames are rewritten verbatim, pointers are assigned not bumped.
        """
        pm = self.cop.page_map
        cache = self.cop.cache
        for slot, page in intent.cache_puts:
            cache.put(slot, page)
        for page_id, op in intent.flag_ops:
            if op == FLAG_LIVE:
                pm.mark_live(page_id)
            else:
                pm.mark_deleted(page_id)
        for page_id, kind, position in intent.map_ops:
            if kind == MAP_CACHED:
                pm.set_cached(page_id, position)
            else:
                pm.set_disk(page_id, position)

        k = self.params.block_size
        extras = intent.extras()
        try:
            with self.tracer.span(
                "write_back",
                nbytes=(k + len(extras)) * self.disk.frame_size,
            ):
                if len(extras) == 1:
                    self.disk.write_request(
                        intent.block_start,
                        intent.frames[:k],
                        intent.extra_location,
                        intent.frames[k],
                    )
                else:
                    # Fused window: one contiguous block write plus one
                    # write per per-op extra frame — the mirror image of
                    # the read side's single block scan.
                    self.disk.write_range(intent.block_start,
                                          intent.frames[:k])
                    for location, frame in zip(extras, intent.frames[k:]):
                        self.disk.write(location, frame)
        except Exception:
            # The trusted deltas above are already applied, so the pageMap
            # now points at frames that were never written.  Retain the
            # intent so the next request (or recover()) rolls the
            # write-back forward before computing against that state —
            # without this, a retried request would overwrite the only
            # record able to repair the store.
            self._pending_intent = intent
            raise
        # The write-back succeeded: tell the prefetcher which nonces now
        # live at these locations (reads the frame headers we just wrote;
        # draws no randomness, advances no clock).
        self.cop.note_frames_written(
            list(range(intent.block_start, intent.block_start + k)) + extras,
            intent.frames,
        )

        self._next_block = intent.next_block
        self._request_count = intent.request_index + intent.request_span
        if intent.rotation_left < 0:
            self._rotation_requests_left = None
        elif intent.rotation_left == 0:
            self.cop.finish_key_rotation()
            self._rotation_requests_left = None
        else:
            self._rotation_requests_left = intent.rotation_left
        self._pending_intent = None

    def _heal_pending(self) -> None:
        """Roll forward a request whose write-back failed mid-apply.

        A *non-crash* write failure (e.g. a transient I/O error) inside
        :meth:`_apply_intent` propagates to the caller after the trusted
        deltas landed but before the frames did.  That failure is
        classified as retryable, so the client is invited to resend — and
        serving the resend against the inconsistent state would both read
        garbage and replace the pending journal record.  Instead the
        failed apply retains its intent (in memory, and in the journal
        when one is configured) and every later request re-applies it
        here first.  Re-application is idempotent; if the write fails
        again the error propagates and the request stays pending.
        """
        intent = self._pending_intent
        if intent is not None:
            self.disk.current_request = intent.request_index
            self._apply_intent(intent)
            if self.journal is not None:
                self.journal.clear()
            self.disk.current_request = -1
            self.counters.increment("recovery.rolled_forward")
        # Background workers heal after the engine: their write-backs may
        # relocate pages a replayed request's map ops already positioned,
        # and each healer is itself idempotent.
        for healer in self._background_healers:
            healer()

    def _fetch_block(
        self, block_start: int, k: int, extra_location: int
    ) -> List[Page]:
        """Read + ingest + decrypt the k+1 frames, with optional retries.

        A retry repeats the whole fetch (re-read, re-charge, re-decrypt) —
        exactly what real hardware would do — and consumes only the
        spawned retry RNG and the virtual clock, so seeded runs stay
        byte-identical.
        """

        def attempt() -> List[Page]:
            frames, extra_frame = self.disk.read_request(
                block_start, k, extra_location
            )
            self.cop.charge_ingest(k + 1)
            with self.tracer.span("decrypt",
                                  nbytes=(k + 1) * self.cop.frame_size):
                # Batched unseal: MACs for the whole block are verified and
                # the keystream applied in one suite entry.
                block = self.cop.unseal_frames(list(frames) + [extra_frame])
            self.counters.increment("crypto.batched_frames", k + 1)
            return block

        if self.read_retry is None:
            return attempt()
        return retry_call(
            attempt,
            self.read_retry,
            self.cop.clock,
            self._retry_rng,
            retry_on=(TransientStorageError, AuthenticationError),
            counters=self.counters,
            counter="retries.read",
        )

    @staticmethod
    def _pending_cache_view(
        cache_puts: List[Tuple[int, Page]], slot: int
    ) -> Optional[Page]:
        """The page slot ``slot`` will hold once pending puts are applied."""
        for pending_slot, page in reversed(cache_puts):
            if pending_slot == slot:
                return page
        return None

    # -- helpers -------------------------------------------------------------------

    def _check_payload(self, payload: bytes) -> None:
        """Reject oversized payloads at the API boundary — never let one sit
        in the cache waiting to fail at eviction time."""
        if len(payload) > self.params.page_capacity:
            raise ConfigurationError(
                f"payload of {len(payload)} bytes exceeds page capacity "
                f"{self.params.page_capacity}"
            )

    def _check_user_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.params.total_pages:
            raise PageNotFoundError(
                f"page id {page_id} out of range [0, {self.params.total_pages})"
            )

    def _index_of(
        self, block: List[Page], target_id: int, block_start: int, extra_location: int
    ) -> int:
        """Line 13: index of the target page within serverBlock."""
        for index, page in enumerate(block):
            if page.page_id == target_id:
                return index
        raise PageNotFoundError(
            f"page {target_id} not found in serverBlock (map expected it at "
            f"block {block_start} or extra location {extra_location}); "
            "page map and disk are inconsistent"
        )

    def _random_free_candidate(self, block_start: int) -> int:
        """Lines 3-5: a uniform page id that is neither cached nor in the block."""
        pm = self.cop.page_map
        k = self.params.block_size
        total = self.params.total_pages
        for _ in range(_MAX_REJECTION_ROUNDS):
            candidate = self.cop.rng.randrange(total)
            if pm.is_cached(candidate):
                continue
            position = pm.lookup(candidate).position
            if block_start <= position < block_start + k:
                continue
            return candidate
        raise CapacityError(
            "rejection sampling failed to find an eligible random page; the "
            "configuration violates num_locations >= block_size + 2"
        )

    def _pick_free_disk_page(self) -> int:
        """The lowest-numbered free page id, for insertion.

        Deterministic (min over the free set, which is a pure function of
        the logical operation sequence) so the serial loop and the fused
        batch planner agree on which page an insert lands on — the
        byte-identical-replies guarantee between the two paths depends on
        it.  A cached free page is fine: the insert then takes the
        cache-hit path, exactly like an update of a cached page.
        """
        free = self.cop.page_map.free_ids()
        if not free:
            raise CapacityError(
                "no free page available for insertion; delete pages "
                "or provision a reserve_fraction at setup"
            )
        return min(free)
