"""The private page retrieval algorithm (Figure 3) and §4.3 updates.

Every client operation — query, modification, deletion, insertion — executes
the *identical* observable sequence:

1. read the next round-robin block of ``k`` consecutive frames,
2. read one extra frame (the target page, or a random / free page),
3. decrypt all ``k + 1`` pages inside the tamper boundary,
4. swap the target into a uniformly random block slot ``r`` (line 18),
5. swap it with a cache slot ``s`` (line 20) — the evicted cache page
   lands in block slot ``r``, i.e. uniformly over the block's k locations,
   which is precisely what Eq. 2 analyses,
6. re-encrypt everything with fresh nonces and write the ``k + 1`` frames
   back (one contiguous block write + one extra write).

Four random disk accesses, ``2(k+1)`` frames over the link and through the
crypto engine per request (Eq. 8), with *zero* dependence of the trace shape
on the operation type or on cache hits — the property §4.3 sells for update
privacy and the tests verify byte-for-byte on the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .params import SystemParameters
from ..errors import CapacityError, ConfigurationError, PageNotFoundError
from ..hardware.coprocessor import SecureCoprocessor
from ..storage.disk import DiskStore
from ..storage.page import Page

__all__ = ["RetrievalEngine", "RequestOutcome"]

_MAX_REJECTION_ROUNDS = 10_000_000


@dataclass
class RequestOutcome:
    """What one request did, for metrics and tests (never leaves the TCB)."""

    request_index: int
    block_start: int
    extra_location: int
    cache_hit: bool
    victim_slot: int
    block_slot: int
    elapsed: float


class RetrievalEngine:
    """Executes Figure 3 over a prepared coprocessor + disk pair.

    The engine assumes setup already happened (cache full, every disk
    location holds a frame, page map consistent) —
    :class:`repro.core.database.PirDatabase` is the friendly constructor
    that performs that setup.
    """

    def __init__(
        self,
        params: SystemParameters,
        coprocessor: SecureCoprocessor,
        disk: DiskStore,
    ):
        if disk.num_locations != params.num_locations:
            raise ConfigurationError("disk size does not match parameters")
        if coprocessor.cache.capacity != params.cache_capacity:
            raise ConfigurationError("cache capacity does not match parameters")
        if coprocessor.page_map.num_pages != params.total_pages:
            raise ConfigurationError("page map size does not match parameters")
        self.params = params
        self.cop = coprocessor
        self.disk = disk
        self._next_block = 0
        self._request_count = 0
        self._rotation_requests_left: Optional[int] = None
        self.last_outcome: Optional[RequestOutcome] = None

    # -- public operations -------------------------------------------------------

    @property
    def request_count(self) -> int:
        return self._request_count

    @property
    def next_block_index(self) -> int:
        """Round-robin position (0..num_blocks-1) of the next request's block."""
        return self._next_block

    def retrieve(self, page_id: int) -> Page:
        """Q(i): privately fetch page ``page_id`` (Figure 3's Retrieve)."""
        self._check_user_id(page_id)
        return self._execute(target_id=page_id)

    def modify(self, page_id: int, payload: bytes) -> None:
        """Replace a page's payload; trace-identical to a query (§4.3)."""
        self._check_user_id(page_id)
        self._check_payload(payload)
        self._execute(target_id=page_id, new_payload=payload, revive=True)

    def delete(self, page_id: int) -> None:
        """Mark a page deleted; its slot joins the insertion free pool (§4.3)."""
        self._check_user_id(page_id)
        if self.cop.page_map.is_deleted(page_id):
            raise PageNotFoundError(f"page {page_id} is already deleted")
        self._execute(target_id=page_id, deleting=True)

    def insert(self, payload: bytes) -> int:
        """Store a new page in a reclaimed free slot; returns its page id (§4.3)."""
        self._check_payload(payload)
        target = self._pick_free_disk_page()
        self._execute(target_id=target, new_payload=payload, revive=True)
        return target

    def touch(self) -> None:
        """One dummy request (random page), e.g. to keep the reshuffle mixing
        during idle periods.  Observable trace identical to any query."""
        self._execute(target_id=None)

    def begin_key_rotation(self, new_master_key: bytes) -> None:
        """Rotate the database encryption key online, for free.

        Sealing switches to the new key immediately; the legacy key stays
        available for reads.  Because every request rewrites its whole
        round-robin block (plus one extra page), all n locations carry
        new-key frames after exactly one scan period of further requests,
        at which point the legacy key is dropped automatically.  The server
        observes nothing: write-backs are always freshly re-encrypted.
        """
        self.cop.begin_key_rotation(new_master_key)
        self._rotation_requests_left = self.params.num_blocks

    @property
    def rotation_requests_remaining(self) -> Optional[int]:
        """Requests until the legacy key can be dropped (None if no rotation)."""
        return self._rotation_requests_left

    # -- the unified request ---------------------------------------------------------

    def _execute(
        self,
        target_id: Optional[int],
        new_payload: Optional[bytes] = None,
        deleting: bool = False,
        revive: bool = False,
    ) -> Page:
        pm = self.cop.page_map
        cache = self.cop.cache
        rng = self.cop.rng
        k = self.params.block_size
        started = self.cop.clock.now

        request_index = self._request_count
        self._request_count += 1
        self.disk.current_request = request_index

        # The next block of k contiguous pages, round-robin (line 1).
        block_start = self._next_block * k
        self._next_block = (self._next_block + 1) % self.params.num_blocks

        # Lines 2-9: decide the (k+1)-th page and capture a cached result.
        # Both depend only on the page map and cache, never on block
        # contents, so the decision is made before any disk access — which
        # lets remote transports issue the block and the extra page as one
        # batched read (the paper's two-party prototype does the same).
        result: Optional[Page] = None
        cache_hit = False
        if target_id is None:
            extra_id = self._random_free_candidate(block_start)
        else:
            location = pm.lookup(target_id)
            if location.in_cache:
                cache_hit = True
                result = cache.get(location.position)
                extra_id = self._random_free_candidate(block_start)
            elif deleting:
                # Deletions are handled as cache hits (§4.3): random extra page.
                extra_id = self._random_free_candidate(block_start)
            elif block_start <= location.position < block_start + k:
                extra_id = self._random_free_candidate(block_start)
            else:
                extra_id = target_id  # line 9: p <- i

        # Lines 1 and 10: read the block and page p from the disk.
        extra_location = pm.disk_location(extra_id)
        frames, extra_frame = self.disk.read_request(block_start, k, extra_location)

        # Line 11: move k+1 frames across the link and decrypt them.
        self.cop.charge_ingest(k + 1)
        block: List[Page] = [self.cop.unseal(f) for f in frames]
        block.append(self.cop.unseal(extra_frame))

        # Lines 12-16: locate the relocation target q within serverBlock.
        wants_fetched_target = (
            target_id is not None and not cache_hit and not deleting
        )
        if wants_fetched_target:
            q = self._index_of(block, target_id, block_start, extra_location)
            result = block[q]
        else:
            q = k

        # Apply §4.3 content edits to the target page wherever it lives.
        if target_id is not None:
            if new_payload is not None:
                self._rewrite_target(target_id, new_payload, revive,
                                     cache_hit, block, q)
            if deleting:
                self._wipe_target(target_id, cache_hit, block)

        # Lines 17-18: move the target to a uniform slot within the block.
        r = rng.randrange(k)
        block[r], block[q] = block[q], block[r]

        # Lines 19-20: swap with a cache slot.  A deletion of a cached page
        # always selects that page as the victim (§4.3); otherwise the
        # victim is the policy's choice (uniform under the paper's policy).
        if deleting and target_id is not None and cache_hit:
            s = pm.lookup(target_id).position
        else:
            s = cache.victim_slot()
        evicted = cache.put(s, block[r])
        entering = block[r]
        block[r] = evicted

        # Lines 21-22: re-encrypt with fresh nonces, write k+1 frames back.
        self.cop.charge_egress(k + 1)
        self.disk.write_request(
            block_start,
            [self.cop.seal(p) for p in block[:k]],
            extra_location,
            self.cop.seal(block[k]),
        )

        # Lines 23-25: update the page map for the three relocated pages.
        pm.set_cached(entering.page_id, s)
        pm.set_disk(block[r].page_id, block_start + r)
        if q < k:
            pm.set_disk(block[q].page_id, block_start + q)
        else:
            pm.set_disk(block[q].page_id, extra_location)

        if self._rotation_requests_left is not None:
            self._rotation_requests_left -= 1
            if self._rotation_requests_left <= 0:
                self.cop.finish_key_rotation()
                self._rotation_requests_left = None

        self.disk.current_request = -1
        self.last_outcome = RequestOutcome(
            request_index=request_index,
            block_start=block_start,
            extra_location=extra_location,
            cache_hit=cache_hit,
            victim_slot=s,
            block_slot=r,
            elapsed=self.cop.clock.now - started,
        )

        # Line 26: return the page (queries only reach here with result set).
        if target_id is None or deleting:
            return Page.dummy()
        assert result is not None
        if new_payload is not None:
            return result.with_payload(new_payload)
        return result

    # -- helpers -------------------------------------------------------------------

    def _check_payload(self, payload: bytes) -> None:
        """Reject oversized payloads at the API boundary — never let one sit
        in the cache waiting to fail at eviction time."""
        if len(payload) > self.params.page_capacity:
            raise ConfigurationError(
                f"payload of {len(payload)} bytes exceeds page capacity "
                f"{self.params.page_capacity}"
            )

    def _check_user_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.params.total_pages:
            raise PageNotFoundError(
                f"page id {page_id} out of range [0, {self.params.total_pages})"
            )

    def _index_of(
        self, block: List[Page], target_id: int, block_start: int, extra_location: int
    ) -> int:
        """Line 13: index of the target page within serverBlock."""
        for index, page in enumerate(block):
            if page.page_id == target_id:
                return index
        raise PageNotFoundError(
            f"page {target_id} not found in serverBlock (map expected it at "
            f"block {block_start} or extra location {extra_location}); "
            "page map and disk are inconsistent"
        )

    def _random_free_candidate(self, block_start: int) -> int:
        """Lines 3-5: a uniform page id that is neither cached nor in the block."""
        pm = self.cop.page_map
        k = self.params.block_size
        total = self.params.total_pages
        for _ in range(_MAX_REJECTION_ROUNDS):
            candidate = self.cop.rng.randrange(total)
            if pm.is_cached(candidate):
                continue
            position = pm.lookup(candidate).position
            if block_start <= position < block_start + k:
                continue
            return candidate
        raise CapacityError(
            "rejection sampling failed to find an eligible random page; the "
            "configuration violates num_locations >= block_size + 2"
        )

    def _pick_free_disk_page(self) -> int:
        """A deleted/dummy page currently resident on disk, for insertion."""
        pm = self.cop.page_map
        for candidate in pm.free_ids():
            if not pm.is_cached(candidate):
                return candidate
        raise CapacityError(
            "no disk-resident free page available for insertion; delete pages "
            "or provision a reserve_fraction at setup"
        )

    def _rewrite_target(
        self,
        target_id: int,
        payload: bytes,
        revive: bool,
        cache_hit: bool,
        block: List[Page],
        q: int,
    ) -> None:
        pm = self.cop.page_map
        if cache_hit:
            slot = pm.lookup(target_id).position
            self.cop.cache.put(slot, Page(target_id, payload, deleted=False))
        else:
            block[q] = Page(target_id, payload, deleted=False)
        if revive:
            pm.mark_live(target_id)

    def _wipe_target(self, target_id: int, cache_hit: bool, block: List[Page]) -> None:
        pm = self.cop.page_map
        if cache_hit:
            slot = pm.lookup(target_id).position
            self.cop.cache.put(slot, Page(target_id, b"", deleted=True))
        else:
            # The carcass stays encrypted wherever it is; only metadata changes.
            for index, page in enumerate(block):
                if page.page_id == target_id:
                    block[index] = page.mark_deleted()
        pm.mark_deleted(target_id)
