"""Snapshot and restore a running private database.

A production deployment must survive restarts: the encrypted pages live on
the untrusted disk anyway, but the trusted state — position map, cached
plaintext pages, round-robin pointer — exists only inside the tamper
boundary.  The coprocessor therefore exports it as a single *sealed blob*
(encrypted and authenticated under a key derived from the master key), the
same way real secure hardware seals state to host storage.

Snapshot layout on the host filesystem::

    <directory>/
      manifest.json    # public parameters (nothing secret: n, k, m, B, ...)
      frames.bin       # the untrusted page array, verbatim
      sealed.bin       # encrypted trusted state (pageMap, cache, pointer)

Restoring requires the same master key; a wrong key fails authentication
rather than yielding garbage.  The restored instance draws fresh randomness
(relocation randomness is memoryless, so privacy is unaffected by not
persisting the RNG position).
"""

from __future__ import annotations

import json
import os
import struct
from typing import Optional

from .database import PirDatabase
from .engine import RetrievalEngine
from .params import SystemParameters
from ..crypto.rng import SecureRandom
from ..crypto.suite import CipherSuite
from ..errors import ConfigurationError, StorageError
from ..hardware.coprocessor import SecureCoprocessor
from ..hardware.specs import HardwareSpec
from ..sim.clock import VirtualClock
from ..storage.disk import DiskStore
from ..storage.merkle import AuthenticatedDisk
from ..storage.page import Page
from ..storage.trace import AccessTrace

__all__ = [
    "save_snapshot",
    "load_snapshot",
    "bootstrap_replica",
    "save_sealed_sidecar",
    "load_sealed_sidecar",
]

_MANIFEST = "manifest.json"
_FRAMES = "frames.bin"
_SEALED = "sealed.bin"
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")


# ---------------------------------------------------------------------------
# Trusted-state codec (runs inside the boundary; output is then sealed)
# ---------------------------------------------------------------------------


def _encode_trusted_state(db: PirDatabase) -> bytes:
    pm = db.cop.page_map
    parts = [_U64.pack(db.engine.next_block_index),
             _U64.pack(db.engine.request_count)]
    # Page map: per id -> (flags, position).
    parts.append(_U64.pack(pm.num_pages))
    for page_id in range(pm.num_pages):
        entry = pm.lookup(page_id)
        flags = (1 if entry.in_cache else 0) | (2 if entry.deleted else 0)
        parts.append(bytes([flags]))
        parts.append(_U64.pack(entry.position))
    # Cache: slot order matters (positions in the map point at slots).
    parts.append(_U64.pack(db.cop.cache.capacity))
    for slot in range(db.cop.cache.capacity):
        page = db.cop.cache.get(slot)
        flags = 2 if page.deleted else 0
        parts.append(_U64.pack(page.page_id))
        parts.append(bytes([flags]))
        parts.append(_U32.pack(len(page.payload)))
        parts.append(page.payload)
    return b"".join(parts)


def _decode_trusted_state(blob: bytes, db: PirDatabase) -> None:
    offset = 0

    def take_u64() -> int:
        nonlocal offset
        value = _U64.unpack_from(blob, offset)[0]
        offset += 8
        return value

    def take_u32() -> int:
        nonlocal offset
        value = _U32.unpack_from(blob, offset)[0]
        offset += 4
        return value

    def take_byte() -> int:
        nonlocal offset
        value = blob[offset]
        offset += 1
        return value

    db.engine._next_block = take_u64() % db.params.num_blocks
    db.engine._request_count = take_u64()

    num_pages = take_u64()
    if num_pages != db.params.total_pages:
        raise StorageError("snapshot page count does not match parameters")
    pm = db.cop.page_map
    for page_id in range(num_pages):
        flags = take_byte()
        position = take_u64()
        if flags & 1:
            pm.set_cached(page_id, position)
        else:
            pm.set_disk(page_id, position)
        if flags & 2:
            pm.mark_deleted(page_id)

    capacity = take_u64()
    if capacity != db.cop.cache.capacity:
        raise StorageError("snapshot cache capacity does not match parameters")
    pages = []
    for _slot in range(capacity):
        page_id = take_u64()
        flags = take_byte()
        length = take_u32()
        payload = blob[offset : offset + length]
        offset += length
        pages.append(Page(page_id, payload, deleted=bool(flags & 2)))
    db.cop.cache.fill(pages)
    if offset != len(blob):
        raise StorageError("trailing bytes in trusted-state blob")


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def save_snapshot(db: PirDatabase, directory: str) -> None:
    """Persist the database (untrusted frames + sealed trusted state).

    Refuses to snapshot during a key rotation: frames would be split across
    two keys while the sealed state can only name one.  Finish the rotation
    (one scan period of requests) first.  Likewise refuses while the intent
    journal holds a pending record: a snapshot taken mid-recovery would be
    *older* than the journal, and restoring it next to that journal is
    exactly the state :meth:`~repro.core.engine.RetrievalEngine.recover`
    must reject.  Run ``db.recover()`` first.
    """
    if db.cop.rotation_in_progress:
        raise ConfigurationError(
            "cannot snapshot during a key rotation; drive "
            f"{db.engine.rotation_requests_remaining} more requests to finish "
            "it first"
        )
    if db.engine.journal_pending:
        raise ConfigurationError(
            "cannot snapshot with a pending intent-journal record; call "
            "recover() first"
        )
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "format": 1,
        "num_user_pages": db.params.num_user_pages,
        "reserve_pages": db.params.reserve_pages,
        "cache_capacity": db.params.cache_capacity,
        "block_size": db.params.block_size,
        "num_locations": db.params.num_locations,
        "page_capacity": db.params.page_capacity,
        "target_c": db.params.target_c,
        "frame_size": db.cop.frame_size,
        "cipher_backend": db.cop.suite.backend,
    }
    with open(os.path.join(directory, _MANIFEST), "w", encoding="utf-8") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)

    with open(os.path.join(directory, _FRAMES), "wb") as f:
        for location in range(db.disk.num_locations):
            frame = db.disk.peek(location)
            if frame is None:
                raise StorageError(f"cannot snapshot uninitialised location {location}")
            f.write(frame)

    sealing = CipherSuite(
        b"snapshot-sealing:" + db.cop.suite.backend.encode(),
        backend="blake2",
        rng=db.cop.rng,
    )
    # Seal under a key derived from the *database's* master key so only the
    # rightful owner can restore: reuse the page suite for the inner layer.
    inner = db.cop.suite.encrypt_page(_encode_trusted_state(db))
    sealed = sealing.encrypt_page(inner)
    with open(os.path.join(directory, _SEALED), "wb") as f:
        f.write(sealed)


def load_snapshot(
    directory: str,
    master_key: bytes = b"repro-master-key",
    spec: Optional[HardwareSpec] = None,
    seed: Optional[int] = None,
    trace_enabled: bool = True,
    rollback_protection: bool = False,
    journal=None,
    read_retry=None,
) -> PirDatabase:
    """Reconstruct a database saved by :func:`save_snapshot`.

    The master key must match the one the database was created with; an
    incorrect key raises :class:`~repro.errors.AuthenticationError`.
    ``journal``/``read_retry`` re-arm crash consistency and read retries on
    the restored instance (journals are not part of the snapshot: a clean
    snapshot implies an empty journal slot).
    """
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise ConfigurationError(f"no snapshot manifest in {directory!r}")
    with open(manifest_path, encoding="utf-8") as f:
        manifest = json.load(f)
    if manifest.get("format") != 1:
        raise ConfigurationError("unsupported snapshot format")

    params = SystemParameters(
        num_user_pages=manifest["num_user_pages"],
        reserve_pages=manifest["reserve_pages"],
        cache_capacity=manifest["cache_capacity"],
        block_size=manifest["block_size"],
        num_locations=manifest["num_locations"],
        page_capacity=manifest["page_capacity"],
        target_c=manifest["target_c"],
    )
    rng = SecureRandom(seed)
    clock = VirtualClock()
    cop = SecureCoprocessor(
        num_pages=params.total_pages,
        cache_capacity=params.cache_capacity,
        block_size=params.block_size,
        page_capacity=params.page_capacity,
        master_key=master_key,
        spec=spec,
        clock=clock,
        rng=rng,
        cipher_backend=manifest["cipher_backend"],
    )
    if cop.frame_size != manifest["frame_size"]:
        raise ConfigurationError("snapshot frame size does not match suite")

    disk = DiskStore(
        num_locations=params.num_locations,
        frame_size=cop.frame_size,
        timing=cop.spec.disk,
        clock=clock,
        trace=AccessTrace(enabled=trace_enabled),
    )
    if rollback_protection:
        # Wrap before replaying the frames so the fresh Merkle tree is
        # seeded by the writes below.
        disk = AuthenticatedDisk(disk)
    frames_path = os.path.join(directory, _FRAMES)
    expected_bytes = params.num_locations * cop.frame_size
    with open(frames_path, "rb") as f:
        data = f.read()
    if len(data) != expected_bytes:
        raise StorageError(
            f"frames file is {len(data)} bytes, expected {expected_bytes}"
        )
    batch = 4096
    for start in range(0, params.num_locations, batch):
        stop = min(start + batch, params.num_locations)
        disk.write_range(
            start,
            [
                data[pos * cop.frame_size : (pos + 1) * cop.frame_size]
                for pos in range(start, stop)
            ],
        )

    with open(os.path.join(directory, _SEALED), "rb") as f:
        sealed = f.read()
    sealing = CipherSuite(
        b"snapshot-sealing:" + manifest["cipher_backend"].encode(),
        backend="blake2",
        rng=rng,
    )
    inner = sealing.decrypt_page(sealed)
    trusted = cop.suite.decrypt_page(inner)

    # Cache must be filled before the engine's invariant checks; fill with
    # placeholders, then let the decoder install the real pages.
    cop.cache.fill([Page.dummy() for _ in range(params.cache_capacity)])
    engine = RetrievalEngine(
        params, cop, disk, journal=journal, read_retry=read_retry
    )
    db = PirDatabase(params, cop, disk, engine)
    _decode_trusted_state(trusted, db)
    return db


def save_sealed_sidecar(db: PirDatabase, directory: str, name: str,
                        data: bytes) -> None:
    """Seal an auxiliary trusted blob next to a snapshot.

    The replication tier checkpoints its applied-sequence vector this way
    (``<name>.sealed`` beside ``sealed.bin``), so a backend rebuilt from
    the snapshot knows where each peer's backlog replay must resume — the
    "``load_snapshot`` + journal roll-forward + replication backlog"
    catch-up sequence.  Sealed under the coprocessor's master-key suite:
    the host stores it but cannot read or undetectably alter it.
    """
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, name + ".sealed"), "wb") as handle:
        handle.write(db.cop.seal_blob(bytes(data)))


def load_sealed_sidecar(db: PirDatabase, directory: str,
                        name: str) -> Optional[bytes]:
    """Unseal a sidecar written by :func:`save_sealed_sidecar`.

    Returns None when the sidecar does not exist (e.g. a snapshot from
    before replication was enabled); raises
    :class:`~repro.errors.AuthenticationError` on tampering or a wrong
    master key.
    """
    path = os.path.join(directory, name + ".sealed")
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        return db.cop.unseal_blob(handle.read())


def bootstrap_replica(
    db: PirDatabase,
    directory: str,
    master_key: bytes = b"repro-master-key",
    **load_kw,
) -> PirDatabase:
    """Clone ``db`` into an independent read replica via a snapshot.

    The cluster failover path (DESIGN.md §13): snapshot the primary into
    ``directory``, restore a fresh instance from it, and serve clients
    from the copy when the primary dies.  From the moment of the split
    each instance is its own serving lineage — relocation randomness is
    memoryless, so the replica answering a session's queries is
    indistinguishable (to the host and to the client) from the primary
    having answered them, and no RNG state needs to transfer.

    ``load_kw`` forwards to :func:`load_snapshot` (``seed``, ``journal``,
    ``read_retry``, ...).  The snapshot directory stays on disk — a later
    member can re-bootstrap from it, though a *fresher* snapshot should
    be preferred once the replica has served mutations.
    """
    save_snapshot(db, directory)
    return load_snapshot(directory, master_key=master_key, **load_kw)
